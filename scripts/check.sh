#!/usr/bin/env bash
# Tier-1 verification plus lints: the exact gate a change must pass.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo build --release"
cargo build --release

echo "=== cargo test -q"
cargo test -q

echo "=== cargo test --doc -q"
cargo test --doc -q

echo "=== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "=== explain smoke: event export round-trips through serde"
mkdir -p target/tmp
events="target/tmp/check-events.jsonl"
live_metrics="target/tmp/check-metrics-live.json"
sim_metrics="target/tmp/check-metrics-sim.json"
baseline="target/tmp/check-baseline.json"
regret_metrics="target/tmp/check-metrics-regret.json"
win_metrics="target/tmp/check-metrics-windows.json"
serve_metrics="target/tmp/check-metrics-serve.json"
serve_log="target/tmp/check-serve.log"
serve_events_log="target/tmp/check-serve-events.jsonl"
serve_pid=""
adaptive_events="target/tmp/check-adaptive-events.jsonl"
fleet_events="target/tmp/check-fleet-events.jsonl"
fleet_second="target/tmp/check-fleet-second.jsonl"
fleet_sim="target/tmp/check-metrics-fleet-sim.json"
fleet_served="target/tmp/check-metrics-fleet-served.json"
shard1_log="target/tmp/check-shard1.log"
shard2_log="target/tmp/check-shard2.log"
router_log="target/tmp/check-router.log"
shard1_pid=""
shard2_pid=""
router_pid=""
cleanup() {
  for pid in "$serve_pid" "$shard1_pid" "$shard2_pid" "$router_pid"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
  done
  rm -f "$events" "$live_metrics" "$sim_metrics" "$baseline" "$regret_metrics" \
    "$win_metrics" "$adaptive_events" \
    "$serve_metrics" "$serve_log" "$serve_events_log" \
    "$fleet_events" "$fleet_second" "$fleet_sim" "$fleet_served" \
    "$shard1_log" "$shard2_log" "$router_log"
}
trap cleanup EXIT

# Waits for a daemon to print its listen line and echoes the address.
await_addr() { # $1=log $2=pid $3=sed-pattern
  local addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n "$3" "$1")"
    [ -n "$addr" ] && break
    kill -0 "$2" 2>/dev/null || { cat "$1" >&2; return 1; }
    sleep 0.1
  done
  [ -n "$addr" ] || return 1
  echo "$addr"
}
./target/release/explain --bench word --scale 64 \
  --events-out "$events" --metrics-out "$live_metrics" > /dev/null
./target/release/explain --parse-events "$events"

echo "=== delta smoke: stream diff reports a non-empty phase table"
delta_out="$(./target/release/delta "$events" --phases 6)"
echo "$delta_out" | grep -q "Equation 3 overhead ratio" \
  || { echo "delta printed no suite overhead ratio"; exit 1; }
rows="$(echo "$delta_out" | grep -cE '^[0-9]+ ')"
[ "$rows" -ge 1 ] \
  || { echo "delta phase table is empty"; exit 1; }

echo "=== simulate smoke: stream replay reproduces the live metrics doc"
./target/release/simulate --events "$events" \
  --metrics-out "$sim_metrics" --baseline-out "$baseline" > /dev/null
cmp "$live_metrics" "$sim_metrics" \
  || { echo "simulated metrics doc differs from the live export"; exit 1; }
./target/release/simulate --events "$events" --watch "$baseline" > /dev/null \
  || { echo "simulate --watch failed against a fresh baseline"; exit 1; }

echo "=== windows smoke: drift-annotated window series rides the metrics doc"
./target/release/simulate --events "$events" --windows \
  --metrics-out "$win_metrics" > /dev/null
grep -q '"windows":{"window_accesses":' "$win_metrics" \
  || { echo "windowed metrics doc has no windows section"; exit 1; }
grep -q '"annotations":\[' "$win_metrics" \
  || { echo "windows section has no annotations field"; exit 1; }
# The plain doc must not grow a windows section (byte stability).
grep -q '"windows":' "$sim_metrics" \
  && { echo "plain simulate doc unexpectedly carries windows"; exit 1; }

echo "=== regret smoke: oracle regret attribution is populated end to end"
./target/release/simulate --events "$events" --grid --oracle \
  --metrics-out "$regret_metrics" > /dev/null
grep -q '"regret":{"accesses":' "$regret_metrics" \
  || { echo "grid+oracle metrics doc has no regret section"; exit 1; }
grep -q '"contributors":\[{' "$regret_metrics" \
  || { echo "regret section names no contributor traces"; exit 1; }
# The un-oracled doc must not grow a regret section (byte stability).
grep -q '"regret":' "$sim_metrics" \
  && { echo "plain simulate doc unexpectedly carries regret"; exit 1; }
regret_out="$(./target/release/explain --bench word --scale 64 --oracle)"
echo "$regret_out" | grep -q "Oracle regret:" \
  || { echo "explain --oracle printed no regret summary"; exit 1; }
echo "$regret_out" | grep -q "Worst decisions:" \
  || { echo "explain --oracle printed no worst-decision narratives"; exit 1; }

echo "=== adaptive smoke: controller beats the worst static grid row and narrates its switches"
./target/release/explain --bench phaseflip --scale 16 \
  --events-out "$adaptive_events" > /dev/null
adaptive_out="$(./target/release/simulate --events "$adaptive_events" \
  --grid --oracle --spec adaptive)"
echo "$adaptive_out" | grep -q '=== adaptive vs static regret: phaseflip ===' \
  || { echo "simulate printed no adaptive-vs-static regret table"; exit 1; }
echo "$adaptive_out" | grep -qE 'verdict\[adaptive\]: adaptive beats' \
  || { echo "adaptive regret is not strictly below the worst static grid row"; \
       echo "$adaptive_out" | tail -8; exit 1; }
switch_out="$(./target/release/explain --bench phaseflip --scale 16 \
  --oracle --spec adaptive)"
echo "$switch_out" | grep -q "Adaptive controller" \
  || { echo "explain --spec adaptive printed no controller summary"; exit 1; }
echo "$switch_out" | grep -qE '^  epoch +[0-9]+ @ +[0-9]+µs: (probe|commit) ' \
  || { echo "explain --spec adaptive narrated no probe/commit switches"; exit 1; }

echo "=== serve smoke: daemon reply is byte-identical to offline simulate"
./target/release/gencache-serve --addr 127.0.0.1:0 \
  --log "$serve_events_log" --log-level info > "$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^gencache-serve listening on //p' "$serve_log")"
  [ -n "$addr" ] && break
  kill -0 "$serve_pid" 2>/dev/null || { cat "$serve_log"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "daemon never reported its address"; exit 1; }
./target/release/gencache-client submit --addr "$addr" --events "$events" \
  --metrics-out "$serve_metrics" --no-table 2> /dev/null
cmp "$sim_metrics" "$serve_metrics" \
  || { echo "served metrics doc differs from offline simulate"; exit 1; }
./target/release/gencache-client stats --addr "$addr" \
  | grep -q '"jobs_completed":1' \
  || { echo "stats did not report the completed job"; exit 1; }
grep -q '"event":"job_admitted"' "$serve_events_log" \
  || { echo "structured log has no job_admitted record"; cat "$serve_events_log"; exit 1; }
./target/release/gencache-client watch --addr "$addr" --count 1 --plain \
  | grep -q "snapshot #0: 1 node(s)" \
  || { echo "watch returned no snapshot frame"; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" \
  || { echo "daemon exited nonzero after SIGTERM"; exit 1; }
serve_pid=""
grep -q "drained, exiting" "$serve_log" \
  || { echo "daemon did not drain cleanly"; cat "$serve_log"; exit 1; }

echo "=== fleet smoke: router merge is byte-identical to offline simulate"
# A two-benchmark export so the router has something to split: reuse the
# word export and append a solitaire recording minus its header line.
./target/release/explain --bench solitaire --scale 64 \
  --events-out "$fleet_second" > /dev/null
cat "$events" > "$fleet_events"
tail -n +2 "$fleet_second" >> "$fleet_events"
./target/release/simulate --events "$fleet_events" --spec unified --grid \
  --metrics-out "$fleet_sim" > /dev/null

./target/release/gencache-serve --addr 127.0.0.1:0 > "$shard1_log" 2>&1 &
shard1_pid=$!
./target/release/gencache-serve --addr 127.0.0.1:0 > "$shard2_log" 2>&1 &
shard2_pid=$!
serve_pat='s/^gencache-serve listening on //p'
shard1_addr="$(await_addr "$shard1_log" "$shard1_pid" "$serve_pat")" \
  || { echo "shard 1 never reported its address"; exit 1; }
shard2_addr="$(await_addr "$shard2_log" "$shard2_pid" "$serve_pat")" \
  || { echo "shard 2 never reported its address"; exit 1; }
./target/release/gencache-shard --addr 127.0.0.1:0 \
  --backend "$shard1_addr" --backend "$shard2_addr" > "$router_log" 2>&1 &
router_pid=$!
router_addr="$(await_addr "$router_log" "$router_pid" \
  's/^gencache-shard listening on \([^ ]*\).*/\1/p')" \
  || { echo "router never reported its address"; exit 1; }

./target/release/gencache-client submit --addr "$router_addr" \
  --events "$fleet_events" --spec unified --grid \
  --metrics-out "$fleet_served" --no-table 2> /dev/null
cmp "$fleet_sim" "$fleet_served" \
  || { echo "fleet metrics doc differs from offline simulate"; exit 1; }
fleet_stats="$(./target/release/gencache-client stats --addr "$router_addr")"
echo "$fleet_stats" | grep -q '"fleet_jobs":1' \
  || { echo "router stats did not report the fleet job: $fleet_stats"; exit 1; }
echo "$fleet_stats" | grep -q '"shards_up":2' \
  || { echo "router stats did not see both shards: $fleet_stats"; exit 1; }
./target/release/gencache-client shards --addr "$router_addr" \
  | grep -q '"up":true' \
  || { echo "shard table reports no healthy shard"; exit 1; }
router_metrics="$(./target/release/gencache-client metrics --addr "$router_addr")"
[ -n "$router_metrics" ] \
  || { echo "router metrics frame came back empty"; exit 1; }
echo "$router_metrics" | grep -q '^gencache_' \
  || { echo "router metrics expose no gencache_ series: $router_metrics"; exit 1; }

kill -TERM "$router_pid"
wait "$router_pid" \
  || { echo "router exited nonzero after SIGTERM"; exit 1; }
router_pid=""
grep -q "drained, exiting" "$router_log" \
  || { echo "router did not drain cleanly"; cat "$router_log"; exit 1; }
for pid in "$shard1_pid" "$shard2_pid"; do
  kill -TERM "$pid"
  wait "$pid" || { echo "shard exited nonzero after SIGTERM"; exit 1; }
done
shard1_pid=""
shard2_pid=""
grep -q "drained, exiting" "$shard1_log" && grep -q "drained, exiting" "$shard2_log" \
  || { echo "a shard did not drain cleanly"; exit 1; }

echo "all checks passed"
