#!/usr/bin/env bash
# Tier-1 verification plus lints: the exact gate a change must pass.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo build --release"
cargo build --release

echo "=== cargo test -q"
cargo test -q

echo "=== cargo test --doc -q"
cargo test --doc -q

echo "=== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "=== explain smoke: event export round-trips through serde"
mkdir -p target/tmp
events="target/tmp/check-events.jsonl"
live_metrics="target/tmp/check-metrics-live.json"
sim_metrics="target/tmp/check-metrics-sim.json"
baseline="target/tmp/check-baseline.json"
serve_metrics="target/tmp/check-metrics-serve.json"
serve_log="target/tmp/check-serve.log"
serve_pid=""
cleanup() {
  [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null
  rm -f "$events" "$live_metrics" "$sim_metrics" "$baseline" \
    "$serve_metrics" "$serve_log"
}
trap cleanup EXIT
./target/release/explain --bench word --scale 64 \
  --events-out "$events" --metrics-out "$live_metrics" > /dev/null
./target/release/explain --parse-events "$events"

echo "=== delta smoke: stream diff reports a non-empty phase table"
delta_out="$(./target/release/delta "$events" --phases 6)"
echo "$delta_out" | grep -q "Equation 3 overhead ratio" \
  || { echo "delta printed no suite overhead ratio"; exit 1; }
rows="$(echo "$delta_out" | grep -cE '^[0-9]+ ')"
[ "$rows" -ge 1 ] \
  || { echo "delta phase table is empty"; exit 1; }

echo "=== simulate smoke: stream replay reproduces the live metrics doc"
./target/release/simulate --events "$events" \
  --metrics-out "$sim_metrics" --baseline-out "$baseline" > /dev/null
cmp "$live_metrics" "$sim_metrics" \
  || { echo "simulated metrics doc differs from the live export"; exit 1; }
./target/release/simulate --events "$events" --watch "$baseline" > /dev/null \
  || { echo "simulate --watch failed against a fresh baseline"; exit 1; }

echo "=== serve smoke: daemon reply is byte-identical to offline simulate"
./target/release/gencache-serve --addr 127.0.0.1:0 > "$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^gencache-serve listening on //p' "$serve_log")"
  [ -n "$addr" ] && break
  kill -0 "$serve_pid" 2>/dev/null || { cat "$serve_log"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "daemon never reported its address"; exit 1; }
./target/release/gencache-client submit --addr "$addr" --events "$events" \
  --metrics-out "$serve_metrics" --no-table 2> /dev/null
cmp "$sim_metrics" "$serve_metrics" \
  || { echo "served metrics doc differs from offline simulate"; exit 1; }
./target/release/gencache-client stats --addr "$addr" \
  | grep -q '"jobs_completed":1' \
  || { echo "stats did not report the completed job"; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" \
  || { echo "daemon exited nonzero after SIGTERM"; exit 1; }
serve_pid=""
grep -q "drained, exiting" "$serve_log" \
  || { echo "daemon did not drain cleanly"; cat "$serve_log"; exit 1; }

echo "all checks passed"
