#!/usr/bin/env bash
# Tier-1 verification plus lints: the exact gate a change must pass.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo build --release"
cargo build --release

echo "=== cargo test -q"
cargo test -q

echo "=== cargo test --doc -q"
cargo test --doc -q

echo "=== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "=== explain smoke: event export round-trips through serde"
events="$(mktemp /tmp/gencache-events.XXXXXX.jsonl)"
trap 'rm -f "$events"' EXIT
./target/release/explain --bench word --scale 64 --events-out "$events" > /dev/null
./target/release/explain --parse-events "$events"

echo "all checks passed"
