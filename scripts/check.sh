#!/usr/bin/env bash
# Tier-1 verification plus lints: the exact gate a change must pass.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo build --release"
cargo build --release

echo "=== cargo test -q"
cargo test -q

echo "=== cargo test --doc -q"
cargo test --doc -q

echo "=== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "=== explain smoke: event export round-trips through serde"
mkdir -p target/tmp
events="target/tmp/check-events.jsonl"
live_metrics="target/tmp/check-metrics-live.json"
sim_metrics="target/tmp/check-metrics-sim.json"
baseline="target/tmp/check-baseline.json"
trap 'rm -f "$events" "$live_metrics" "$sim_metrics" "$baseline"' EXIT
./target/release/explain --bench word --scale 64 \
  --events-out "$events" --metrics-out "$live_metrics" > /dev/null
./target/release/explain --parse-events "$events"

echo "=== delta smoke: stream diff reports a non-empty phase table"
delta_out="$(./target/release/delta "$events" --phases 6)"
echo "$delta_out" | grep -q "Equation 3 overhead ratio" \
  || { echo "delta printed no suite overhead ratio"; exit 1; }
rows="$(echo "$delta_out" | grep -cE '^[0-9]+ ')"
[ "$rows" -ge 1 ] \
  || { echo "delta phase table is empty"; exit 1; }

echo "=== simulate smoke: stream replay reproduces the live metrics doc"
./target/release/simulate --events "$events" \
  --metrics-out "$sim_metrics" --baseline-out "$baseline" > /dev/null
cmp "$live_metrics" "$sim_metrics" \
  || { echo "simulated metrics doc differs from the live export"; exit 1; }
./target/release/simulate --events "$events" --watch "$baseline" > /dev/null \
  || { echo "simulate --watch failed against a fresh baseline"; exit 1; }

echo "all checks passed"
