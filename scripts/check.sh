#!/usr/bin/env bash
# Tier-1 verification plus lints: the exact gate a change must pass.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo build --release"
cargo build --release

echo "=== cargo test -q"
cargo test -q

echo "=== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "all checks passed"
