#!/usr/bin/env bash
# Serve-path throughput trajectory: measures jobs/sec, ingest lines/sec
# and span-derived p50/p99 job latency against a local gencache-serve
# daemon — plus the offline replay path (simulate --grid --oracle
# cells/sec and peak RSS via getrusage) — then appends the entry to
# results/BENCH_serve.json with regression watch (--watch refuses to
# append on a throughput drop beyond the tolerance, on either path).
# Method notes live in EXPERIMENTS.md.
#
# Usage: scripts/bench_serve.sh [--jobs N] [--note TEXT]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=20
note="$(git rev-parse --short HEAD 2>/dev/null || echo untracked)"
while [ $# -gt 0 ]; do
  case "$1" in
    --jobs) jobs="$2"; shift 2 ;;
    --note) note="$2"; shift 2 ;;
    *) echo "usage: scripts/bench_serve.sh [--jobs N] [--note TEXT]"; exit 2 ;;
  esac
done

echo "=== cargo build --release"
cargo build --release

mkdir -p target/tmp results
events="target/tmp/bench-serve-events.jsonl"
replay_stats="target/tmp/bench-serve-replay.json"
serve_log="target/tmp/bench-serve.log"
serve_pid=""
cleanup() {
  [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null
  rm -f "$events" "$replay_stats" "$serve_log"
}
trap cleanup EXIT

echo "=== recording the benchmark export (word @ scale 64)"
./target/release/explain --bench word --scale 64 \
  --events-out "$events" > /dev/null

echo "=== offline replay (simulate --grid --oracle)"
./target/release/simulate --events "$events" --grid --oracle \
  --stats-out "$replay_stats" > /dev/null

echo "=== starting gencache-serve"
./target/release/gencache-serve --addr 127.0.0.1:0 > "$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^gencache-serve listening on //p' "$serve_log")"
  [ -n "$addr" ] && break
  kill -0 "$serve_pid" 2>/dev/null || { cat "$serve_log"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "daemon never reported its address"; exit 1; }

echo "=== bench: $jobs jobs against $addr"
./target/release/gencache-client bench --addr "$addr" \
  --events "$events" --jobs "$jobs" --note "$note" \
  --replay-stats "$replay_stats" \
  --out results/BENCH_serve.json --watch --tolerance 0.5

kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "daemon exited nonzero after SIGTERM"; exit 1; }
serve_pid=""
echo "trajectory updated: results/BENCH_serve.json"
