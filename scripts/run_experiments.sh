#!/usr/bin/env bash
# Regenerates every paper artifact into results/, at full scale.
# Usage: scripts/run_experiments.sh [extra args, e.g. --scale 8 --jobs 4]
# Workers default to all cores (override with --jobs N or GENCACHE_JOBS);
# output is bit-identical for any job count.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
BINS=(
  table1_benchmarks table2_costs
  fig1_max_cache_size fig2_code_expansion fig3_insertion_rate
  fig4_unmapped fig6_lifetimes fig9_miss_rates fig10_misses_eliminated
  fig11_overhead sweep_proportions sweep_trace_threshold
  ablate_local_policy ablate_probation ablate_defrag ablate_exceptions
  ablate_linking threaded_caches best_configs analyze_reuse
  thread_duplication
)
for bin in "${BINS[@]}"; do
  echo "=== $bin"
  cargo run --release -q -p gencache-bench --bin "$bin" -- "$@" \
    > "results/$bin.txt" 2>/dev/null
done
echo "all artifacts written to results/"
