//! A synthetic instruction model.
//!
//! The cache-management study never interprets real machine semantics; what
//! matters is the *control-flow shape* (branches, their directions and
//! targets) and the *byte size* of code, because the code cache is managed
//! in bytes. Instructions therefore carry a size and a kind, nothing more.

use serde::{Deserialize, Serialize};

use crate::addr::Addr;

/// The kind of a synthetic instruction.
///
/// Only control transfers carry meaning for trace selection; straight-line
/// kinds exist so that blocks have realistic instruction mixes and byte
/// sizes, and so the relocation logic has both position-dependent and
/// position-independent instructions to fix up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstKind {
    /// Register-to-register arithmetic or logic. Position independent.
    Compute,
    /// A memory load. Position independent.
    Load,
    /// A memory store. Position independent.
    Store,
    /// A conditional branch to `target` with fall-through.
    /// Encoded PC-relative, so it needs fix-up when the code is relocated.
    CondBranch {
        /// The taken-path destination.
        target: Addr,
    },
    /// An unconditional direct jump to `target`. PC-relative.
    Jump {
        /// The jump destination.
        target: Addr,
    },
    /// A direct call to `target`. PC-relative.
    Call {
        /// The callee entry point.
        target: Addr,
    },
    /// A return to the caller. The destination is dynamic.
    Return,
    /// An indirect jump through a register or memory operand.
    /// The destination is dynamic.
    IndirectJump,
}

impl InstKind {
    /// Returns `true` if the instruction can transfer control away from the
    /// next sequential instruction.
    pub fn is_control_transfer(&self) -> bool {
        matches!(
            self,
            InstKind::CondBranch { .. }
                | InstKind::Jump { .. }
                | InstKind::Call { .. }
                | InstKind::Return
                | InstKind::IndirectJump
        )
    }

    /// Returns the static target of a direct control transfer, if any.
    pub fn direct_target(&self) -> Option<Addr> {
        match self {
            InstKind::CondBranch { target }
            | InstKind::Jump { target }
            | InstKind::Call { target } => Some(*target),
            _ => None,
        }
    }

    /// Returns `true` if the encoded instruction references its own address
    /// (PC-relative) and therefore requires fix-up when copied to a new
    /// location — the *code relocation* requirement of Section 5.4.
    pub fn is_pc_relative(&self) -> bool {
        matches!(
            self,
            InstKind::CondBranch { .. } | InstKind::Jump { .. } | InstKind::Call { .. }
        )
    }
}

/// A single synthetic instruction: a kind plus an encoded byte size.
///
/// # Examples
///
/// ```
/// use gencache_program::{Addr, Inst, InstKind};
///
/// let add = Inst::new(InstKind::Compute, 3);
/// let jcc = Inst::new(InstKind::CondBranch { target: Addr::new(0x1000) }, 6);
/// assert_eq!(add.size() + jcc.size(), 9);
/// assert!(jcc.kind().is_control_transfer());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Inst {
    kind: InstKind,
    size: u8,
}

impl Inst {
    /// Creates an instruction of the given kind occupying `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero: every encodable instruction occupies at
    /// least one byte.
    pub fn new(kind: InstKind, size: u8) -> Self {
        assert!(size > 0, "instruction size must be nonzero");
        Inst { kind, size }
    }

    /// The instruction kind.
    pub fn kind(&self) -> &InstKind {
        &self.kind
    }

    /// The encoded size in bytes.
    pub fn size(&self) -> u32 {
        u32::from(self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_transfer_classification() {
        assert!(!InstKind::Compute.is_control_transfer());
        assert!(!InstKind::Load.is_control_transfer());
        assert!(!InstKind::Store.is_control_transfer());
        assert!(InstKind::Return.is_control_transfer());
        assert!(InstKind::IndirectJump.is_control_transfer());
        assert!(InstKind::Jump {
            target: Addr::new(4)
        }
        .is_control_transfer());
    }

    #[test]
    fn direct_targets() {
        let t = Addr::new(0x2000);
        assert_eq!(InstKind::CondBranch { target: t }.direct_target(), Some(t));
        assert_eq!(InstKind::Jump { target: t }.direct_target(), Some(t));
        assert_eq!(InstKind::Call { target: t }.direct_target(), Some(t));
        assert_eq!(InstKind::Return.direct_target(), None);
        assert_eq!(InstKind::IndirectJump.direct_target(), None);
        assert_eq!(InstKind::Compute.direct_target(), None);
    }

    #[test]
    fn pc_relative_instructions_need_fixup() {
        let t = Addr::new(0x2000);
        assert!(InstKind::Jump { target: t }.is_pc_relative());
        assert!(InstKind::CondBranch { target: t }.is_pc_relative());
        assert!(InstKind::Call { target: t }.is_pc_relative());
        assert!(!InstKind::Return.is_pc_relative());
        assert!(!InstKind::IndirectJump.is_pc_relative());
        assert!(!InstKind::Load.is_pc_relative());
    }

    #[test]
    fn inst_size_reported() {
        let i = Inst::new(InstKind::Compute, 5);
        assert_eq!(i.size(), 5);
        assert_eq!(*i.kind(), InstKind::Compute);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_size_inst_rejected() {
        let _ = Inst::new(InstKind::Compute, 0);
    }
}
