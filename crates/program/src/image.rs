//! The program image: every module the process maps, with load/unload
//! tracking and cross-module address lookup.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::{Addr, AddrRange};
use crate::block::BasicBlock;
use crate::module::{Module, ModuleId, ModuleKind};

/// The full memory image of a running process: the executable plus all
/// shared libraries, some of which may currently be unmapped.
///
/// A dynamic optimizer consults the image on every new basic block (to copy
/// its bytes) and must be notified of unmaps so stale traces can be purged
/// from the code cache.
///
/// # Examples
///
/// ```
/// use gencache_program::{Addr, Module, ModuleId, ModuleKind, ProgramImage};
///
/// let mut image = ProgramImage::new();
/// let exe = Module::new(ModuleId::new(0), "app.exe", ModuleKind::Executable,
///                       Addr::new(0x40_0000), 0x1_0000);
/// image.map(exe)?;
/// assert!(image.module_containing(Addr::new(0x40_0100)).is_some());
/// # Ok::<(), gencache_program::ImageError>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProgramImage {
    modules: BTreeMap<ModuleId, MappedModule>,
    /// Index of currently loaded mappings: base address → module id.
    loaded_index: BTreeMap<Addr, ModuleId>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct MappedModule {
    module: Module,
    loaded: bool,
}

/// Errors raised by [`ProgramImage`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// A module with the same id was already registered.
    DuplicateModule(ModuleId),
    /// The mapping overlaps a currently loaded module.
    OverlappingMapping {
        /// The range that could not be mapped.
        requested: AddrRange,
        /// The loaded module it collides with.
        conflicting: ModuleId,
    },
    /// The module id is unknown.
    UnknownModule(ModuleId),
    /// The module is not currently loaded.
    NotLoaded(ModuleId),
    /// The module is already loaded.
    AlreadyLoaded(ModuleId),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::DuplicateModule(id) => write!(f, "module {id} already registered"),
            ImageError::OverlappingMapping {
                requested,
                conflicting,
            } => write!(
                f,
                "mapping {requested} overlaps loaded module {conflicting}"
            ),
            ImageError::UnknownModule(id) => write!(f, "unknown module {id}"),
            ImageError::NotLoaded(id) => write!(f, "module {id} is not loaded"),
            ImageError::AlreadyLoaded(id) => write!(f, "module {id} is already loaded"),
        }
    }
}

impl std::error::Error for ImageError {}

impl ProgramImage {
    /// Creates an image with no modules.
    pub fn new() -> Self {
        ProgramImage::default()
    }

    /// Registers `module` and maps it into the address space.
    ///
    /// # Errors
    ///
    /// Fails if the id is already registered or the mapping overlaps a
    /// currently loaded module.
    pub fn map(&mut self, module: Module) -> Result<(), ImageError> {
        if self.modules.contains_key(&module.id()) {
            return Err(ImageError::DuplicateModule(module.id()));
        }
        self.check_mapping_free(module.range())?;
        self.loaded_index
            .insert(module.range().start(), module.id());
        self.modules.insert(
            module.id(),
            MappedModule {
                module,
                loaded: true,
            },
        );
        Ok(())
    }

    fn check_mapping_free(&self, range: AddrRange) -> Result<(), ImageError> {
        for (_, id) in self.loaded_index.iter() {
            let m = &self.modules[id].module;
            if m.range().overlaps(&range) {
                return Err(ImageError::OverlappingMapping {
                    requested: range,
                    conflicting: *id,
                });
            }
        }
        Ok(())
    }

    /// Unmaps a loaded module, returning its address range so the caller
    /// can purge stale code-cache entries covering that range.
    ///
    /// # Errors
    ///
    /// Fails if the id is unknown, not loaded, or names the executable
    /// (the main image is never unmapped before exit).
    pub fn unmap(&mut self, id: ModuleId) -> Result<AddrRange, ImageError> {
        let entry = self
            .modules
            .get_mut(&id)
            .ok_or(ImageError::UnknownModule(id))?;
        if !entry.loaded {
            return Err(ImageError::NotLoaded(id));
        }
        entry.loaded = false;
        let range = entry.module.range();
        self.loaded_index.remove(&range.start());
        Ok(range)
    }

    /// Re-maps a previously unmapped module at its original base, modeling
    /// a DLL that the program loads again later.
    ///
    /// # Errors
    ///
    /// Fails if the id is unknown, already loaded, or the original range is
    /// now occupied by another module.
    pub fn remap(&mut self, id: ModuleId) -> Result<(), ImageError> {
        let range = {
            let entry = self.modules.get(&id).ok_or(ImageError::UnknownModule(id))?;
            if entry.loaded {
                return Err(ImageError::AlreadyLoaded(id));
            }
            entry.module.range()
        };
        self.check_mapping_free(range)?;
        self.loaded_index.insert(range.start(), id);
        self.modules.get_mut(&id).expect("checked above").loaded = true;
        Ok(())
    }

    /// The module with the given id, loaded or not.
    pub fn module(&self, id: ModuleId) -> Option<&Module> {
        self.modules.get(&id).map(|m| &m.module)
    }

    /// Returns `true` if the module is currently mapped.
    pub fn is_loaded(&self, id: ModuleId) -> bool {
        self.modules.get(&id).is_some_and(|m| m.loaded)
    }

    /// The *loaded* module whose mapping contains `addr`.
    pub fn module_containing(&self, addr: Addr) -> Option<&Module> {
        let (_, id) = self.loaded_index.range(..=addr).next_back()?;
        let entry = &self.modules[id];
        entry.module.range().contains(addr).then_some(&entry.module)
    }

    /// The basic block starting exactly at `addr` in a loaded module.
    pub fn block_at(&self, addr: Addr) -> Option<&BasicBlock> {
        self.module_containing(addr)?.cfg().block_at(addr)
    }

    /// Iterates over all registered modules (loaded and unloaded).
    pub fn modules(&self) -> impl Iterator<Item = &Module> {
        self.modules.values().map(|m| &m.module)
    }

    /// Iterates over currently loaded modules.
    pub fn loaded_modules(&self) -> impl Iterator<Item = &Module> {
        self.modules
            .values()
            .filter(|m| m.loaded)
            .map(|m| &m.module)
    }

    /// Total static code bytes across all registered modules. This is the
    /// *application footprint* denominator of the code-expansion equation
    /// (Equation 1) when every module's code is executed.
    pub fn total_code_bytes(&self) -> u64 {
        self.modules.values().map(|m| m.module.code_bytes()).sum()
    }

    /// The main executable, if one was mapped.
    pub fn executable(&self) -> Option<&Module> {
        self.modules
            .values()
            .map(|m| &m.module)
            .find(|m| m.kind() == ModuleKind::Executable)
    }

    /// Number of registered modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Returns `true` if no modules are registered.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockId;
    use crate::inst::{Inst, InstKind};

    fn exe() -> Module {
        Module::new(
            ModuleId::new(0),
            "app.exe",
            ModuleKind::Executable,
            Addr::new(0x40_0000),
            0x1_0000,
        )
    }

    fn dll(idx: u32, base: u64) -> Module {
        Module::new(
            ModuleId::new(idx),
            format!("lib{idx}.dll"),
            ModuleKind::SharedLibrary,
            Addr::new(base),
            0x1000,
        )
    }

    #[test]
    fn map_and_lookup() {
        let mut image = ProgramImage::new();
        image.map(exe()).unwrap();
        image.map(dll(1, 0x10_0000)).unwrap();
        assert_eq!(image.len(), 2);
        assert_eq!(
            image.module_containing(Addr::new(0x10_0800)).unwrap().id(),
            ModuleId::new(1)
        );
        assert!(image.module_containing(Addr::new(0x20_0000)).is_none());
        assert_eq!(image.executable().unwrap().name(), "app.exe");
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut image = ProgramImage::new();
        image.map(dll(1, 0x10_0000)).unwrap();
        assert_eq!(
            image.map(dll(1, 0x20_0000)),
            Err(ImageError::DuplicateModule(ModuleId::new(1)))
        );
    }

    #[test]
    fn overlapping_mapping_rejected() {
        let mut image = ProgramImage::new();
        image.map(dll(1, 0x10_0000)).unwrap();
        let err = image.map(dll(2, 0x10_0800)).unwrap_err();
        assert!(matches!(err, ImageError::OverlappingMapping { .. }));
    }

    #[test]
    fn unmap_removes_from_lookup() {
        let mut image = ProgramImage::new();
        image.map(dll(1, 0x10_0000)).unwrap();
        let range = image.unmap(ModuleId::new(1)).unwrap();
        assert_eq!(range.start(), Addr::new(0x10_0000));
        assert!(!image.is_loaded(ModuleId::new(1)));
        assert!(image.module_containing(Addr::new(0x10_0800)).is_none());
        // The metadata is still registered.
        assert!(image.module(ModuleId::new(1)).is_some());
    }

    #[test]
    fn unmap_twice_fails() {
        let mut image = ProgramImage::new();
        image.map(dll(1, 0x10_0000)).unwrap();
        image.unmap(ModuleId::new(1)).unwrap();
        assert_eq!(
            image.unmap(ModuleId::new(1)),
            Err(ImageError::NotLoaded(ModuleId::new(1)))
        );
    }

    #[test]
    fn unmap_unknown_fails() {
        let mut image = ProgramImage::new();
        assert_eq!(
            image.unmap(ModuleId::new(9)),
            Err(ImageError::UnknownModule(ModuleId::new(9)))
        );
    }

    #[test]
    fn remap_restores_lookup() {
        let mut image = ProgramImage::new();
        image.map(dll(1, 0x10_0000)).unwrap();
        image.unmap(ModuleId::new(1)).unwrap();
        image.remap(ModuleId::new(1)).unwrap();
        assert!(image.is_loaded(ModuleId::new(1)));
        assert!(image.module_containing(Addr::new(0x10_0080)).is_some());
    }

    #[test]
    fn remap_loaded_fails() {
        let mut image = ProgramImage::new();
        image.map(dll(1, 0x10_0000)).unwrap();
        assert_eq!(
            image.remap(ModuleId::new(1)),
            Err(ImageError::AlreadyLoaded(ModuleId::new(1)))
        );
    }

    #[test]
    fn new_module_can_reuse_unmapped_range() {
        let mut image = ProgramImage::new();
        image.map(dll(1, 0x10_0000)).unwrap();
        image.unmap(ModuleId::new(1)).unwrap();
        // A different DLL gets mapped into the same address range — the
        // stale-trace hazard of Section 3.4.
        image.map(dll(2, 0x10_0000)).unwrap();
        assert_eq!(
            image.module_containing(Addr::new(0x10_0010)).unwrap().id(),
            ModuleId::new(2)
        );
        // And the old one can no longer be remapped there.
        assert!(matches!(
            image.remap(ModuleId::new(1)),
            Err(ImageError::OverlappingMapping { .. })
        ));
    }

    #[test]
    fn block_lookup_through_image() {
        let mut image = ProgramImage::new();
        let mut m = dll(1, 0x10_0000);
        m.add_block(BasicBlock::new(
            BlockId::new(1, 0),
            Addr::new(0x10_0010),
            vec![Inst::new(InstKind::Return, 1)],
        ))
        .unwrap();
        image.map(m).unwrap();
        assert!(image.block_at(Addr::new(0x10_0010)).is_some());
        assert!(image.block_at(Addr::new(0x10_0011)).is_none());
        image.unmap(ModuleId::new(1)).unwrap();
        assert!(image.block_at(Addr::new(0x10_0010)).is_none());
    }

    #[test]
    fn footprint_counts_all_modules() {
        let mut image = ProgramImage::new();
        let mut m1 = dll(1, 0x10_0000);
        m1.add_block(BasicBlock::new(
            BlockId::new(1, 0),
            Addr::new(0x10_0000),
            vec![Inst::new(InstKind::Compute, 10)],
        ))
        .unwrap();
        let mut m2 = dll(2, 0x20_0000);
        m2.add_block(BasicBlock::new(
            BlockId::new(2, 0),
            Addr::new(0x20_0000),
            vec![Inst::new(InstKind::Compute, 20)],
        ))
        .unwrap();
        image.map(m1).unwrap();
        image.map(m2).unwrap();
        image.unmap(ModuleId::new(2)).unwrap();
        // Unloaded modules still count toward the static footprint.
        assert_eq!(image.total_code_bytes(), 30);
    }
}
