//! Virtual addresses and address ranges for the synthetic guest program.
//!
//! The dynamic optimizer operates on *application addresses*: every basic
//! block, trace head, and module occupies a range of guest virtual memory.
//! [`Addr`] is a newtype over `u64` so that guest addresses cannot be
//! accidentally mixed with cache offsets or sizes (see C-NEWTYPE).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A guest virtual address.
///
/// Addresses are ordered and support offset arithmetic through
/// [`Addr::offset`] and [`Addr::distance`]. They intentionally do *not*
/// implement `Add`/`Sub` with other addresses because summing two absolute
/// addresses is meaningless.
///
/// # Examples
///
/// ```
/// use gencache_program::Addr;
///
/// let base = Addr::new(0x40_0000);
/// let next = base.offset(16);
/// assert_eq!(next.as_u64() - base.as_u64(), 16);
/// assert!(base < next);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Addr(u64);

impl Addr {
    /// The null address. Used as a sentinel for "no target".
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw `u64`.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw numeric value of this address.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the address `bytes` bytes past `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the addition overflows `u64`.
    #[must_use]
    pub fn offset(self, bytes: u64) -> Self {
        Addr(self.0 + bytes)
    }

    /// Returns the distance in bytes from `self` to `other`.
    ///
    /// The result is negative when `other` precedes `self`; this is how
    /// *backward branches* (loop back-edges) are detected by the trace
    /// selector.
    pub fn distance(self, other: Addr) -> i64 {
        other.0 as i64 - self.0 as i64
    }

    /// Returns `true` if this address is the null sentinel.
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(addr: Addr) -> Self {
        addr.0
    }
}

/// A half-open range of guest addresses `[start, start + len)`.
///
/// Used to describe module mappings and the extents covered by basic
/// blocks. An empty range (`len == 0`) contains no addresses.
///
/// # Examples
///
/// ```
/// use gencache_program::{Addr, AddrRange};
///
/// let range = AddrRange::new(Addr::new(0x1000), 0x100);
/// assert!(range.contains(Addr::new(0x10ff)));
/// assert!(!range.contains(Addr::new(0x1100)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddrRange {
    start: Addr,
    len: u64,
}

impl AddrRange {
    /// Creates a range starting at `start` spanning `len` bytes.
    pub const fn new(start: Addr, len: u64) -> Self {
        AddrRange { start, len }
    }

    /// Creates a range from an inclusive start and exclusive end address.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn from_bounds(start: Addr, end: Addr) -> Self {
        assert!(
            end >= start,
            "range end {end} precedes start {start}",
            end = end,
            start = start
        );
        AddrRange {
            start,
            len: end.as_u64() - start.as_u64(),
        }
    }

    /// The first address in the range.
    pub const fn start(&self) -> Addr {
        self.start
    }

    /// One past the last address in the range.
    pub fn end(&self) -> Addr {
        self.start.offset(self.len)
    }

    /// The length of the range in bytes.
    pub const fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the range spans no addresses.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `addr` falls inside the range.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// Returns `true` if the two ranges share at least one address.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.start < other.end()
            && other.start < self.end()
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_ordering_and_offset() {
        let a = Addr::new(0x1000);
        let b = a.offset(8);
        assert!(a < b);
        assert_eq!(a.distance(b), 8);
        assert_eq!(b.distance(a), -8);
    }

    #[test]
    fn addr_null_sentinel() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr::new(1).is_null());
        assert_eq!(Addr::default(), Addr::NULL);
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(Addr::new(0x40_0000).to_string(), "0x00400000");
    }

    #[test]
    fn addr_conversions_roundtrip() {
        let a: Addr = 0xdead_beef_u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 0xdead_beef);
    }

    #[test]
    fn range_contains_bounds() {
        let r = AddrRange::new(Addr::new(100), 10);
        assert!(r.contains(Addr::new(100)));
        assert!(r.contains(Addr::new(109)));
        assert!(!r.contains(Addr::new(110)));
        assert!(!r.contains(Addr::new(99)));
    }

    #[test]
    fn range_empty_contains_nothing() {
        let r = AddrRange::new(Addr::new(100), 0);
        assert!(r.is_empty());
        assert!(!r.contains(Addr::new(100)));
    }

    #[test]
    fn range_from_bounds() {
        let r = AddrRange::from_bounds(Addr::new(10), Addr::new(30));
        assert_eq!(r.len(), 20);
        assert_eq!(r.end(), Addr::new(30));
    }

    #[test]
    #[should_panic(expected = "precedes start")]
    fn range_from_inverted_bounds_panics() {
        let _ = AddrRange::from_bounds(Addr::new(30), Addr::new(10));
    }

    #[test]
    fn range_overlap_cases() {
        let a = AddrRange::new(Addr::new(0), 10);
        let b = AddrRange::new(Addr::new(5), 10);
        let c = AddrRange::new(Addr::new(10), 10);
        let empty = AddrRange::new(Addr::new(5), 0);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!a.overlaps(&empty));
    }
}
