//! Loadable modules: the main executable and its shared libraries.
//!
//! Windows applications load and unload DLLs throughout their lifetime;
//! when a module is unmapped, every code-cache trace built from its blocks
//! must be deleted immediately (Section 3.4). Modules are therefore a
//! first-class part of the program model.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::{Addr, AddrRange};
use crate::block::BasicBlock;
use crate::cfg::Cfg;

/// A stable identifier for a module within a [`ProgramImage`].
///
/// [`ProgramImage`]: crate::image::ProgramImage
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ModuleId(u32);

impl ModuleId {
    /// Creates a module id from a raw index.
    pub const fn new(index: u32) -> Self {
        ModuleId(index)
    }

    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// Whether a module is the main executable or a dynamically loaded library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModuleKind {
    /// The main program image; never unmapped before process exit.
    Executable,
    /// A shared library; may be unloaded (unmapped) at runtime.
    SharedLibrary,
}

/// A contiguous mapping of guest code: name, extent, and control-flow graph.
///
/// # Examples
///
/// ```
/// use gencache_program::{Addr, Module, ModuleId, ModuleKind};
///
/// let module = Module::new(
///     ModuleId::new(0),
///     "app.exe",
///     ModuleKind::Executable,
///     Addr::new(0x40_0000),
///     0x1_0000,
/// );
/// assert!(module.range().contains(Addr::new(0x40_8000)));
/// assert_eq!(module.name(), "app.exe");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Module {
    id: ModuleId,
    name: String,
    kind: ModuleKind,
    range: AddrRange,
    cfg: Cfg,
}

impl Module {
    /// Creates an empty module mapped at `base` spanning `len` bytes.
    pub fn new(
        id: ModuleId,
        name: impl Into<String>,
        kind: ModuleKind,
        base: Addr,
        len: u64,
    ) -> Self {
        Module {
            id,
            name: name.into(),
            kind,
            range: AddrRange::new(base, len),
            cfg: Cfg::new(),
        }
    }

    /// The module identifier.
    pub fn id(&self) -> ModuleId {
        self.id
    }

    /// The module's file name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Executable or shared library.
    pub fn kind(&self) -> ModuleKind {
        self.kind
    }

    /// The mapped address range.
    pub fn range(&self) -> AddrRange {
        self.range
    }

    /// The module's control-flow graph.
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// Mutable access to the control-flow graph, for builders.
    pub fn cfg_mut(&mut self) -> &mut Cfg {
        &mut self.cfg
    }

    /// Adds a block, checking it lies inside the module mapping.
    ///
    /// # Errors
    ///
    /// Returns an error if the block extends outside the module range or
    /// collides with an existing block.
    pub fn add_block(&mut self, block: BasicBlock) -> Result<(), ModuleError> {
        if !self.range.contains(block.start()) || block.end() > self.range.end() {
            return Err(ModuleError::BlockOutsideModule {
                block_start: block.start(),
                module: self.range,
            });
        }
        self.cfg.insert(block).map_err(ModuleError::Cfg)
    }

    /// Total bytes of code in the module's blocks (its *code footprint*
    /// contribution, used by the code-expansion study).
    pub fn code_bytes(&self) -> u64 {
        self.cfg.code_bytes()
    }
}

/// Errors raised while populating a [`Module`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModuleError {
    /// The block's byte range is not fully inside the module mapping.
    BlockOutsideModule {
        /// Start address of the offending block.
        block_start: Addr,
        /// The module's mapped range.
        module: AddrRange,
    },
    /// The underlying graph rejected the block.
    Cfg(crate::cfg::CfgError),
}

impl fmt::Display for ModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleError::BlockOutsideModule {
                block_start,
                module,
            } => write!(f, "block at {block_start} lies outside module {module}"),
            ModuleError::Cfg(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ModuleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModuleError::Cfg(e) => Some(e),
            ModuleError::BlockOutsideModule { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockId;
    use crate::inst::{Inst, InstKind};

    fn module() -> Module {
        Module::new(
            ModuleId::new(1),
            "test.dll",
            ModuleKind::SharedLibrary,
            Addr::new(0x1000),
            0x100,
        )
    }

    fn block(start: u64, size: u8) -> BasicBlock {
        BasicBlock::new(
            BlockId::new(1, 0),
            Addr::new(start),
            vec![Inst::new(InstKind::Compute, size)],
        )
    }

    #[test]
    fn add_block_in_range() {
        let mut m = module();
        m.add_block(block(0x1000, 16)).unwrap();
        assert_eq!(m.code_bytes(), 16);
        assert!(m.cfg().block_at(Addr::new(0x1000)).is_some());
    }

    #[test]
    fn block_before_module_rejected() {
        let mut m = module();
        let err = m.add_block(block(0xfff, 8)).unwrap_err();
        assert!(matches!(err, ModuleError::BlockOutsideModule { .. }));
    }

    #[test]
    fn block_past_module_end_rejected() {
        let mut m = module();
        let err = m.add_block(block(0x10f8, 16)).unwrap_err();
        assert!(matches!(err, ModuleError::BlockOutsideModule { .. }));
    }

    #[test]
    fn block_exactly_filling_tail_allowed() {
        let mut m = module();
        m.add_block(block(0x10f0, 16)).unwrap();
        assert_eq!(m.code_bytes(), 16);
    }

    #[test]
    fn cfg_errors_propagate() {
        let mut m = module();
        m.add_block(block(0x1000, 16)).unwrap();
        let err = m.add_block(block(0x1000, 8)).unwrap_err();
        assert!(matches!(err, ModuleError::Cfg(_)));
        // Error display is never empty (C-DEBUG-NONEMPTY analogue for Display).
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn metadata_accessors() {
        let m = module();
        assert_eq!(m.id(), ModuleId::new(1));
        assert_eq!(m.kind(), ModuleKind::SharedLibrary);
        assert_eq!(m.name(), "test.dll");
        assert_eq!(m.range().len(), 0x100);
        assert_eq!(m.id().to_string(), "M1");
    }
}
