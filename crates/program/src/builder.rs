//! Builders for synthetic modules.
//!
//! Workload profiles describe programs as collections of *regions* — loop
//! nests, branchy loops, and callable helper functions. [`ModuleBuilder`]
//! lays those regions out in a module's address space, producing both the
//! static control-flow graph and a [`Region`] handle that the workload
//! generator walks to emit dynamic block-execution events.

use serde::{Deserialize, Serialize};

use crate::addr::Addr;
use crate::block::{BasicBlock, BlockId};
use crate::inst::{Inst, InstKind};
use crate::module::{Module, ModuleError, ModuleId, ModuleKind};

/// The maximum encoded size of one synthetic instruction, mirroring x86.
const MAX_INST_BYTES: u32 = 15;
/// Encoded size of a conditional branch (Jcc rel32 with prefix).
const BRANCH_BYTES: u32 = 6;
/// Encoded size of an unconditional jump (JMP rel32).
const JUMP_BYTES: u32 = 5;
/// Encoded size of a return.
const RET_BYTES: u32 = 1;

/// The shape of a region, recorded for diagnostics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// A single loop whose body is one straight-line path.
    Loop,
    /// A loop containing a two-way diamond: each iteration takes one of
    /// two alternative paths.
    BranchyLoop,
    /// A straight-line callable function ending in a return.
    Function,
}

/// A handle describing how to *execute* a region that a builder laid out.
///
/// `iteration_paths` lists the block sequences of one loop iteration
/// (starting at the loop head); simple loops have exactly one path,
/// branchy loops have two. The generator emits one path per iteration and
/// finishes with `exit_block` when leaving the region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// The loop-head address: the target of the region's backward branch,
    /// and therefore the address the trace selector will mark as a trace
    /// head.
    pub head: Addr,
    /// Alternative block sequences for a single iteration.
    pub iteration_paths: Vec<Vec<Addr>>,
    /// The block executed when control leaves the loop.
    pub exit_block: Addr,
    /// The region's structural kind.
    pub kind: RegionKind,
    /// Total static code bytes the region occupies.
    pub code_bytes: u64,
}

impl Region {
    /// The blocks of one iteration along path `path` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `path` is out of range.
    pub fn path(&self, path: usize) -> &[Addr] {
        &self.iteration_paths[path]
    }

    /// Number of alternative iteration paths.
    pub fn path_count(&self) -> usize {
        self.iteration_paths.len()
    }
}

/// Errors raised while building a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The region does not fit in the module's remaining address space.
    OutOfSpace {
        /// Bytes requested by the region.
        needed: u64,
        /// Bytes still available.
        available: u64,
    },
    /// A block size was too small to hold its terminator instruction.
    BlockTooSmall {
        /// The offending size.
        size: u32,
        /// The minimum for this block position.
        min: u32,
    },
    /// The underlying module rejected a block.
    Module(ModuleError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::OutOfSpace { needed, available } => {
                write!(f, "region needs {needed} bytes, only {available} available")
            }
            BuildError::BlockTooSmall { size, min } => {
                write!(
                    f,
                    "block of {size} bytes cannot hold a {min}-byte terminator"
                )
            }
            BuildError::Module(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Module(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModuleError> for BuildError {
    fn from(e: ModuleError) -> Self {
        BuildError::Module(e)
    }
}

/// Incrementally lays out regions inside a module's address space.
///
/// # Examples
///
/// ```
/// use gencache_program::{Addr, ModuleBuilder, ModuleId, ModuleKind};
///
/// let mut builder = ModuleBuilder::new(
///     ModuleId::new(0), "app.exe", ModuleKind::Executable,
///     Addr::new(0x40_0000), 64 * 1024,
/// );
/// let region = builder.add_loop(&[12, 20, 16])?;
/// assert_eq!(region.path(0).len(), 3);
/// let module = builder.finish();
/// assert!(module.code_bytes() > 0);
/// # Ok::<(), gencache_program::BuildError>(())
/// ```
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
    cursor: Addr,
    next_block_index: u32,
}

impl ModuleBuilder {
    /// Starts building a module mapped at `base` with `capacity` bytes of
    /// address space.
    pub fn new(
        id: ModuleId,
        name: impl Into<String>,
        kind: ModuleKind,
        base: Addr,
        capacity: u64,
    ) -> Self {
        ModuleBuilder {
            module: Module::new(id, name, kind, base, capacity),
            cursor: base,
            next_block_index: 0,
        }
    }

    /// Bytes of address space not yet occupied by blocks.
    pub fn remaining_capacity(&self) -> u64 {
        self.module.range().end().as_u64() - self.cursor.as_u64()
    }

    /// The address where the next region will begin.
    pub fn cursor(&self) -> Addr {
        self.cursor
    }

    fn next_id(&mut self) -> BlockId {
        let id = BlockId::new(self.module.id().index(), self.next_block_index);
        self.next_block_index += 1;
        id
    }

    fn check_space(&self, needed: u64) -> Result<(), BuildError> {
        let available = self.remaining_capacity();
        if needed > available {
            return Err(BuildError::OutOfSpace { needed, available });
        }
        Ok(())
    }

    /// Builds the instruction list for a block of `size` bytes whose final
    /// instruction is `terminator` occupying `term_bytes` bytes; the rest
    /// is filled with compute/load/store filler.
    fn fill_block(
        &mut self,
        start: Addr,
        size: u32,
        terminator: Option<(InstKind, u32)>,
    ) -> Result<Addr, BuildError> {
        let term_bytes = terminator.as_ref().map_or(0, |(_, b)| *b);
        if size < term_bytes.max(1) {
            return Err(BuildError::BlockTooSmall {
                size,
                min: term_bytes.max(1),
            });
        }
        let mut insts = Vec::new();
        let mut remaining = size - term_bytes;
        // Cycle filler kinds so blocks have a plausible instruction mix.
        let mut flavor = start.as_u64();
        while remaining > 0 {
            let chunk = remaining.min(MAX_INST_BYTES).min(4) as u8;
            let kind = match flavor % 3 {
                0 => InstKind::Compute,
                1 => InstKind::Load,
                _ => InstKind::Store,
            };
            insts.push(Inst::new(kind, chunk));
            remaining -= u32::from(chunk);
            flavor += 1;
        }
        if let Some((kind, bytes)) = terminator {
            insts.push(Inst::new(kind, bytes as u8));
        }
        let id = self.next_id();
        let block = BasicBlock::new(id, start, insts);
        let end = block.end();
        self.module.add_block(block)?;
        Ok(end)
    }

    /// Adds a simple loop: `body_sizes` blocks laid out sequentially, the
    /// last ending in a conditional backward branch to the first, followed
    /// by a one-block exit stub ending in a return.
    ///
    /// # Errors
    ///
    /// Fails if the region does not fit or a block is smaller than its
    /// terminator (the final body block needs at least 6 bytes).
    pub fn add_loop(&mut self, body_sizes: &[u32]) -> Result<Region, BuildError> {
        assert!(!body_sizes.is_empty(), "a loop needs at least one block");
        let total: u64 =
            body_sizes.iter().map(|&s| u64::from(s)).sum::<u64>() + u64::from(RET_BYTES + 4);
        self.check_space(total)?;

        let head = self.cursor;
        let mut body = Vec::with_capacity(body_sizes.len());
        let mut at = head;
        for (i, &size) in body_sizes.iter().enumerate() {
            body.push(at);
            let is_last = i == body_sizes.len() - 1;
            let term = if is_last {
                Some((InstKind::CondBranch { target: head }, BRANCH_BYTES))
            } else {
                None // fall through to the next body block
            };
            at = self.fill_block(at, size, term)?;
        }
        // Exit stub: the loop branch's fall-through path.
        let exit_block = at;
        at = self.fill_block(at, RET_BYTES + 4, Some((InstKind::Return, RET_BYTES)))?;
        self.cursor = at;

        Ok(Region {
            head,
            iteration_paths: vec![body],
            exit_block,
            kind: RegionKind::Loop,
            code_bytes: total,
        })
    }

    /// Adds a loop containing a two-way diamond. Layout, in address order:
    /// `prefix` blocks, path-A blocks (jumping over B), path-B blocks,
    /// `suffix` blocks ending in a backward branch to the prefix head, and
    /// an exit stub.
    ///
    /// Each iteration executes `prefix → (A | B) → suffix`; the two
    /// resulting iteration paths produce *distinct traces* from the same
    /// trace head under Next-Executed-Tail selection.
    ///
    /// # Errors
    ///
    /// Fails if the region does not fit or a block cannot hold its
    /// terminator.
    pub fn add_branchy_loop(
        &mut self,
        prefix_sizes: &[u32],
        path_a_sizes: &[u32],
        path_b_sizes: &[u32],
        suffix_sizes: &[u32],
    ) -> Result<Region, BuildError> {
        assert!(
            !prefix_sizes.is_empty()
                && !path_a_sizes.is_empty()
                && !path_b_sizes.is_empty()
                && !suffix_sizes.is_empty(),
            "all four diamond segments need at least one block"
        );
        let total: u64 = prefix_sizes
            .iter()
            .chain(path_a_sizes)
            .chain(path_b_sizes)
            .chain(suffix_sizes)
            .map(|&s| u64::from(s))
            .sum::<u64>()
            + u64::from(RET_BYTES + 4);
        self.check_space(total)?;

        let head = self.cursor;
        // Compute segment start addresses up front so forward branch
        // targets are known before blocks are materialized.
        let seg_len = |sizes: &[u32]| sizes.iter().map(|&s| u64::from(s)).sum::<u64>();
        let a_start = head.offset(seg_len(prefix_sizes));
        let b_start = a_start.offset(seg_len(path_a_sizes));
        let suffix_start = b_start.offset(seg_len(path_b_sizes));
        let exit_addr = suffix_start.offset(seg_len(suffix_sizes));

        let mut prefix = Vec::new();
        let mut at = head;
        for (i, &size) in prefix_sizes.iter().enumerate() {
            prefix.push(at);
            let term = (i == prefix_sizes.len() - 1)
                .then_some((InstKind::CondBranch { target: b_start }, BRANCH_BYTES));
            at = self.fill_block(at, size, term)?;
        }
        debug_assert_eq!(at, a_start);

        let mut path_a = Vec::new();
        for (i, &size) in path_a_sizes.iter().enumerate() {
            path_a.push(at);
            let term = (i == path_a_sizes.len() - 1).then_some((
                InstKind::Jump {
                    target: suffix_start,
                },
                JUMP_BYTES,
            ));
            at = self.fill_block(at, size, term)?;
        }
        debug_assert_eq!(at, b_start);

        let mut path_b = Vec::new();
        for &size in path_b_sizes {
            path_b.push(at);
            // All fall through; the last falls through into the suffix.
            at = self.fill_block(at, size, None)?;
        }
        debug_assert_eq!(at, suffix_start);

        let mut suffix = Vec::new();
        for (i, &size) in suffix_sizes.iter().enumerate() {
            suffix.push(at);
            let term = (i == suffix_sizes.len() - 1)
                .then_some((InstKind::CondBranch { target: head }, BRANCH_BYTES));
            at = self.fill_block(at, size, term)?;
        }
        debug_assert_eq!(at, exit_addr);

        let exit_block = at;
        at = self.fill_block(at, RET_BYTES + 4, Some((InstKind::Return, RET_BYTES)))?;
        self.cursor = at;

        let iter_a: Vec<Addr> = prefix
            .iter()
            .chain(&path_a)
            .chain(&suffix)
            .copied()
            .collect();
        let iter_b: Vec<Addr> = prefix
            .iter()
            .chain(&path_b)
            .chain(&suffix)
            .copied()
            .collect();

        Ok(Region {
            head,
            iteration_paths: vec![iter_a, iter_b],
            exit_block,
            kind: RegionKind::BranchyLoop,
            code_bytes: total,
        })
    }

    /// Adds a loop whose body blocks call helper functions: like
    /// [`ModuleBuilder::add_loop`], but each `(block_index, helper)` pair
    /// makes that body block end in a direct call to `helper`'s entry
    /// point. The returned region's iteration path *splices the helper's
    /// blocks in* after each calling block, because that is the dynamic
    /// execution order — and the order in which Next-Executed-Tail trace
    /// selection will inline the helper into the loop's trace, duplicating
    /// its code in the code cache (the code-expansion effect of
    /// Section 3.2).
    ///
    /// # Errors
    ///
    /// Fails if the region does not fit or a block cannot hold its
    /// terminator.
    ///
    /// # Panics
    ///
    /// Panics if a call index refers to the final body block (which must
    /// hold the loop back-edge), is out of range, or is duplicated, or if
    /// a helper is not a [`RegionKind::Function`] region.
    pub fn add_loop_calling(
        &mut self,
        body_sizes: &[u32],
        calls: &[(usize, &Region)],
    ) -> Result<Region, BuildError> {
        assert!(!body_sizes.is_empty(), "a loop needs at least one block");
        let mut seen = Vec::new();
        for (idx, helper) in calls {
            assert!(
                *idx < body_sizes.len() - 1,
                "call index {idx} must not be the back-edge block"
            );
            assert!(!seen.contains(idx), "duplicate call index {idx}");
            assert_eq!(
                helper.kind,
                RegionKind::Function,
                "call target must be a function region"
            );
            seen.push(*idx);
        }
        let total: u64 =
            body_sizes.iter().map(|&s| u64::from(s)).sum::<u64>() + u64::from(RET_BYTES + 4);
        self.check_space(total)?;

        let head = self.cursor;
        let mut body = Vec::with_capacity(body_sizes.len());
        let mut at = head;
        for (i, &size) in body_sizes.iter().enumerate() {
            body.push(at);
            let term = if i == body_sizes.len() - 1 {
                Some((InstKind::CondBranch { target: head }, BRANCH_BYTES))
            } else {
                calls.iter().find(|(idx, _)| *idx == i).map(|(_, helper)| {
                    (
                        InstKind::Call {
                            target: helper.head,
                        },
                        JUMP_BYTES,
                    )
                })
            };
            at = self.fill_block(at, size, term)?;
        }
        let exit_block = at;
        at = self.fill_block(at, RET_BYTES + 4, Some((InstKind::Return, RET_BYTES)))?;
        self.cursor = at;

        // Splice helper bodies into the dynamic iteration path.
        let mut path = Vec::new();
        for (i, &addr) in body.iter().enumerate() {
            path.push(addr);
            if let Some((_, helper)) = calls.iter().find(|(idx, _)| *idx == i) {
                path.extend_from_slice(helper.path(0));
            }
        }

        Ok(Region {
            head,
            iteration_paths: vec![path],
            exit_block,
            kind: RegionKind::Loop,
            code_bytes: total,
        })
    }

    /// Adds a straight-line callable function: `sizes` blocks connected by
    /// fall-through, the last ending in a return.
    ///
    /// The returned [`Region`] has one "iteration path" holding the whole
    /// function body and `exit_block` equal to the final (returning) block.
    ///
    /// # Errors
    ///
    /// Fails if the function does not fit in the module.
    pub fn add_function(&mut self, sizes: &[u32]) -> Result<Region, BuildError> {
        assert!(!sizes.is_empty(), "a function needs at least one block");
        let total: u64 = sizes.iter().map(|&s| u64::from(s)).sum();
        self.check_space(total)?;

        let head = self.cursor;
        let mut body = Vec::with_capacity(sizes.len());
        let mut at = head;
        for (i, &size) in sizes.iter().enumerate() {
            body.push(at);
            let term = (i == sizes.len() - 1).then_some((InstKind::Return, RET_BYTES));
            at = self.fill_block(at, size, term)?;
        }
        self.cursor = at;
        let exit_block = *body.last().expect("nonempty");

        Ok(Region {
            head,
            iteration_paths: vec![body],
            exit_block,
            kind: RegionKind::Function,
            code_bytes: total,
        })
    }

    /// Consumes the builder, returning the populated module.
    pub fn finish(self) -> Module {
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Terminator;

    fn builder(capacity: u64) -> ModuleBuilder {
        ModuleBuilder::new(
            ModuleId::new(0),
            "test.exe",
            ModuleKind::Executable,
            Addr::new(0x1000),
            capacity,
        )
    }

    #[test]
    fn simple_loop_layout() {
        let mut b = builder(4096);
        let region = b.add_loop(&[10, 12, 14]).unwrap();
        let module = b.finish();

        assert_eq!(region.kind, RegionKind::Loop);
        assert_eq!(region.path_count(), 1);
        assert_eq!(region.path(0).len(), 3);
        assert_eq!(region.head, Addr::new(0x1000));

        // The final body block branches backward to the head.
        let last = module.cfg().block_at(region.path(0)[2]).unwrap();
        assert_eq!(
            last.terminator(),
            Terminator::Branch {
                taken: region.head,
                fallthrough: region.exit_block,
            }
        );
        assert!(last.ends_in_backward_branch());

        // Blocks are contiguous with declared sizes.
        assert_eq!(region.path(0)[1], Addr::new(0x1000 + 10));
        assert_eq!(region.path(0)[2], Addr::new(0x1000 + 22));
        assert_eq!(
            module
                .cfg()
                .block_at(region.path(0)[0])
                .unwrap()
                .size_bytes(),
            10
        );

        // Exit stub returns.
        let exit = module.cfg().block_at(region.exit_block).unwrap();
        assert_eq!(exit.terminator(), Terminator::Return);
    }

    #[test]
    fn loop_code_bytes_match_module() {
        let mut b = builder(4096);
        let region = b.add_loop(&[16, 16]).unwrap();
        let module = b.finish();
        assert_eq!(module.code_bytes(), region.code_bytes);
    }

    #[test]
    fn branchy_loop_paths_share_prefix_and_suffix() {
        let mut b = builder(4096);
        let region = b
            .add_branchy_loop(&[10, 10], &[12], &[14, 14], &[16])
            .unwrap();
        assert_eq!(region.kind, RegionKind::BranchyLoop);
        assert_eq!(region.path_count(), 2);
        let a = region.path(0);
        let bb = region.path(1);
        assert_eq!(a.len(), 2 + 1 + 1);
        assert_eq!(bb.len(), 2 + 2 + 1);
        // Shared prefix and suffix.
        assert_eq!(a[..2], bb[..2]);
        assert_eq!(a.last(), bb.last());
        // Divergent middles.
        assert_ne!(a[2], bb[2]);
    }

    #[test]
    fn branchy_loop_terminators() {
        let mut b = builder(4096);
        let region = b.add_branchy_loop(&[10], &[12], &[14], &[16]).unwrap();
        let module = b.finish();

        // Prefix tail conditionally branches forward to path B.
        let prefix_tail = module.cfg().block_at(region.path(0)[0]).unwrap();
        let Terminator::Branch { taken, fallthrough } = prefix_tail.terminator() else {
            panic!("prefix must end in a conditional branch");
        };
        assert_eq!(taken, region.path(1)[1]); // B start
        assert_eq!(fallthrough, region.path(0)[1]); // A start
        assert!(!prefix_tail.ends_in_backward_branch());

        // Path A tail jumps over B to the suffix.
        let a_tail = module.cfg().block_at(region.path(0)[1]).unwrap();
        assert_eq!(
            a_tail.terminator(),
            Terminator::Jump {
                target: *region.path(0).last().unwrap()
            }
        );

        // Suffix branches backward to the head.
        let suffix = module
            .cfg()
            .block_at(*region.path(0).last().unwrap())
            .unwrap();
        assert!(suffix.ends_in_backward_branch());
    }

    #[test]
    fn function_layout() {
        let mut b = builder(4096);
        let region = b.add_function(&[8, 8, 8]).unwrap();
        let module = b.finish();
        assert_eq!(region.kind, RegionKind::Function);
        let tail = module.cfg().block_at(region.exit_block).unwrap();
        assert_eq!(tail.terminator(), Terminator::Return);
        assert_eq!(region.exit_block, region.path(0)[2]);
    }

    #[test]
    fn regions_are_laid_out_consecutively() {
        let mut b = builder(65536);
        let r1 = b.add_loop(&[10, 10]).unwrap();
        let r2 = b.add_loop(&[10, 10]).unwrap();
        assert!(r2.head > r1.exit_block);
        let module = b.finish();
        // Both loops' blocks exist independently.
        assert!(module.cfg().block_at(r1.head).is_some());
        assert!(module.cfg().block_at(r2.head).is_some());
    }

    #[test]
    fn call_loop_splices_helper_into_path() {
        let mut b = builder(8192);
        let helper = b.add_function(&[16, 16]).unwrap();
        let region = b.add_loop_calling(&[10, 12, 14], &[(1, &helper)]).unwrap();
        let module = b.finish();

        // Path: b0, b1, h0, h1, b2 — the helper spliced after its caller.
        let path = region.path(0);
        assert_eq!(path.len(), 5);
        assert_eq!(path[2], helper.path(0)[0]);
        assert_eq!(path[3], helper.path(0)[1]);

        // The calling block ends in a call to the helper head.
        let caller = module.cfg().block_at(path[1]).unwrap();
        let Terminator::Call { target, return_to } = caller.terminator() else {
            panic!("expected a call terminator");
        };
        assert_eq!(target, helper.head);
        assert_eq!(return_to, path[4]);

        // The back-edge block still loops to the region head.
        let tail = module.cfg().block_at(path[4]).unwrap();
        assert!(tail.ends_in_backward_branch());
    }

    #[test]
    #[should_panic(expected = "back-edge block")]
    fn call_on_backedge_block_rejected() {
        let mut b = builder(8192);
        let helper = b.add_function(&[16]).unwrap();
        let _ = b.add_loop_calling(&[10, 12], &[(1, &helper)]);
    }

    #[test]
    #[should_panic(expected = "function region")]
    fn call_target_must_be_function() {
        let mut b = builder(8192);
        let not_helper = b.add_loop(&[16, 16]).unwrap();
        let _ = b.add_loop_calling(&[10, 12, 14], &[(0, &not_helper)]);
    }

    #[test]
    fn out_of_space_reported() {
        let mut b = builder(16);
        let err = b.add_loop(&[10, 10]).unwrap_err();
        assert!(matches!(err, BuildError::OutOfSpace { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn block_too_small_for_branch() {
        let mut b = builder(4096);
        // Final loop block must hold a 6-byte branch.
        let err = b.add_loop(&[10, 4]).unwrap_err();
        assert!(matches!(err, BuildError::BlockTooSmall { min: 6, .. }));
    }

    #[test]
    fn remaining_capacity_decreases() {
        let mut b = builder(1024);
        let before = b.remaining_capacity();
        let region = b.add_loop(&[10, 10]).unwrap();
        assert_eq!(b.remaining_capacity(), before - region.code_bytes);
    }

    #[test]
    fn filler_blocks_have_declared_sizes() {
        let mut b = builder(4096);
        let region = b.add_loop(&[37, 23]).unwrap();
        let module = b.finish();
        assert_eq!(
            module
                .cfg()
                .block_at(region.path(0)[0])
                .unwrap()
                .size_bytes(),
            37
        );
        assert_eq!(
            module
                .cfg()
                .block_at(region.path(0)[1])
                .unwrap()
                .size_bytes(),
            23
        );
    }
}
