//! Basic blocks: single-entry single-exit instruction sequences.
//!
//! Basic blocks are the unit that DynamoRIO copies into its basic-block
//! cache; sequences of them become superblock traces. A block owns its
//! instructions and exposes its control-flow terminator.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::{Addr, AddrRange};
use crate::inst::{Inst, InstKind};

/// A stable identifier for a basic block within a [`ProgramImage`].
///
/// Identifiers are assigned by the module builder and are unique across the
/// whole image (module index in the high bits, block index in the low bits).
///
/// [`ProgramImage`]: crate::image::ProgramImage
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(u64);

impl BlockId {
    /// Builds a block id from a module index and a block index within it.
    pub const fn new(module_index: u32, block_index: u32) -> Self {
        BlockId(((module_index as u64) << 32) | block_index as u64)
    }

    /// The index of the module containing this block.
    pub const fn module_index(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The index of the block within its module.
    pub const fn block_index(self) -> u32 {
        self.0 as u32
    }

    /// The raw 64-bit encoding.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}.{}", self.module_index(), self.block_index())
    }
}

/// How control leaves a basic block.
///
/// Derived from the final instruction of the block; cached here so trace
/// selection does not re-scan instruction lists on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Terminator {
    /// Falls through to the next sequential address (block ends without a
    /// control transfer, e.g. at a block boundary created by an incoming
    /// branch target).
    FallThrough {
        /// The next sequential address.
        next: Addr,
    },
    /// A two-way conditional branch.
    Branch {
        /// Address executed when the branch is taken.
        taken: Addr,
        /// Address executed when the branch falls through.
        fallthrough: Addr,
    },
    /// An unconditional direct jump.
    Jump {
        /// The jump destination.
        target: Addr,
    },
    /// A direct call; control continues at the callee and eventually
    /// returns to `return_to`.
    Call {
        /// The callee entry point.
        target: Addr,
        /// The address of the instruction after the call.
        return_to: Addr,
    },
    /// A return; the destination depends on the dynamic call stack.
    Return,
    /// An indirect jump; the destination is dynamic.
    Indirect,
}

impl Terminator {
    /// All statically known successor addresses of the block.
    pub fn static_successors(&self) -> Vec<Addr> {
        match *self {
            Terminator::FallThrough { next } => vec![next],
            Terminator::Branch { taken, fallthrough } => vec![taken, fallthrough],
            Terminator::Jump { target } => vec![target],
            Terminator::Call { target, .. } => vec![target],
            Terminator::Return | Terminator::Indirect => Vec::new(),
        }
    }

    /// Returns the taken-path target for direct transfers, if one exists.
    pub fn direct_target(&self) -> Option<Addr> {
        match *self {
            Terminator::Branch { taken, .. } => Some(taken),
            Terminator::Jump { target } => Some(target),
            Terminator::Call { target, .. } => Some(target),
            _ => None,
        }
    }
}

/// A single-entry single-exit sequence of instructions.
///
/// # Examples
///
/// ```
/// use gencache_program::{Addr, BasicBlock, BlockId, Inst, InstKind, Terminator};
///
/// let start = Addr::new(0x1000);
/// let insts = vec![
///     Inst::new(InstKind::Compute, 3),
///     Inst::new(InstKind::Jump { target: Addr::new(0x2000) }, 5),
/// ];
/// let block = BasicBlock::new(BlockId::new(0, 0), start, insts);
/// assert_eq!(block.size_bytes(), 8);
/// assert_eq!(block.terminator(), Terminator::Jump { target: Addr::new(0x2000) });
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    id: BlockId,
    start: Addr,
    size_bytes: u32,
    insts: Vec<Inst>,
    terminator: Terminator,
}

impl BasicBlock {
    /// Creates a block at `start` from its instruction list.
    ///
    /// The terminator is derived from the final instruction; a block whose
    /// final instruction is not a control transfer falls through to the
    /// next sequential address.
    ///
    /// # Panics
    ///
    /// Panics if `insts` is empty or if a control-transfer instruction
    /// appears anywhere other than the final position (that would violate
    /// the single-exit property).
    pub fn new(id: BlockId, start: Addr, insts: Vec<Inst>) -> Self {
        assert!(!insts.is_empty(), "a basic block must contain instructions");
        for inst in &insts[..insts.len() - 1] {
            assert!(
                !inst.kind().is_control_transfer(),
                "control transfer in block interior violates single-exit"
            );
        }
        let size_bytes: u32 = insts.iter().map(Inst::size).sum();
        let end = start.offset(u64::from(size_bytes));
        let last = insts.last().expect("nonempty");
        let terminator = match *last.kind() {
            InstKind::CondBranch { target } => Terminator::Branch {
                taken: target,
                fallthrough: end,
            },
            InstKind::Jump { target } => Terminator::Jump { target },
            InstKind::Call { target } => Terminator::Call {
                target,
                return_to: end,
            },
            InstKind::Return => Terminator::Return,
            InstKind::IndirectJump => Terminator::Indirect,
            InstKind::Compute | InstKind::Load | InstKind::Store => {
                Terminator::FallThrough { next: end }
            }
        };
        BasicBlock {
            id,
            start,
            size_bytes,
            insts,
            terminator,
        }
    }

    /// The block's image-wide identifier.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The address of the first instruction.
    pub fn start(&self) -> Addr {
        self.start
    }

    /// One past the address of the last instruction byte.
    pub fn end(&self) -> Addr {
        self.start.offset(u64::from(self.size_bytes))
    }

    /// The block's extent in guest memory.
    pub fn range(&self) -> AddrRange {
        AddrRange::new(self.start, u64::from(self.size_bytes))
    }

    /// Total encoded size in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.size_bytes
    }

    /// The instructions of the block, in program order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// How control leaves this block.
    pub fn terminator(&self) -> Terminator {
        self.terminator
    }

    /// Returns `true` if the block ends in a *backward branch* — a
    /// conditional branch or jump whose taken target does not lie after
    /// the block start. Backward-branch targets mark potential trace
    /// heads, and encountering a backward branch ends trace generation
    /// (Section 4.1). Calls are never backward branches: a call to a
    /// lower address is ordinary control flow, not a loop back-edge.
    pub fn ends_in_backward_branch(&self) -> bool {
        match self.terminator {
            Terminator::Branch { taken, .. } => taken <= self.start,
            Terminator::Jump { target } => target <= self.start,
            _ => false,
        }
    }

    /// The number of PC-relative instructions that must be fixed up when
    /// this block is copied to a different address.
    pub fn relocatable_inst_count(&self) -> usize {
        self.insts
            .iter()
            .filter(|i| i.kind().is_pc_relative())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute(n: u8) -> Inst {
        Inst::new(InstKind::Compute, n)
    }

    #[test]
    fn block_id_packing_roundtrips() {
        let id = BlockId::new(7, 42);
        assert_eq!(id.module_index(), 7);
        assert_eq!(id.block_index(), 42);
        assert_eq!(id.to_string(), "B7.42");
    }

    #[test]
    fn fallthrough_terminator_derived() {
        let b = BasicBlock::new(BlockId::new(0, 0), Addr::new(100), vec![compute(4)]);
        assert_eq!(
            b.terminator(),
            Terminator::FallThrough {
                next: Addr::new(104)
            }
        );
        assert_eq!(b.range(), AddrRange::new(Addr::new(100), 4));
    }

    #[test]
    fn branch_terminator_has_both_successors() {
        let b = BasicBlock::new(
            BlockId::new(0, 1),
            Addr::new(100),
            vec![
                compute(2),
                Inst::new(
                    InstKind::CondBranch {
                        target: Addr::new(50),
                    },
                    6,
                ),
            ],
        );
        let term = b.terminator();
        assert_eq!(
            term,
            Terminator::Branch {
                taken: Addr::new(50),
                fallthrough: Addr::new(108),
            }
        );
        assert_eq!(
            term.static_successors(),
            vec![Addr::new(50), Addr::new(108)]
        );
    }

    #[test]
    fn call_records_return_address() {
        let b = BasicBlock::new(
            BlockId::new(0, 2),
            Addr::new(0x100),
            vec![Inst::new(
                InstKind::Call {
                    target: Addr::new(0x900),
                },
                5,
            )],
        );
        assert_eq!(
            b.terminator(),
            Terminator::Call {
                target: Addr::new(0x900),
                return_to: Addr::new(0x105),
            }
        );
    }

    #[test]
    fn backward_branch_detection() {
        // Taken target precedes the block: backward (a loop back-edge).
        let back = BasicBlock::new(
            BlockId::new(0, 3),
            Addr::new(0x200),
            vec![Inst::new(
                InstKind::CondBranch {
                    target: Addr::new(0x100),
                },
                6,
            )],
        );
        assert!(back.ends_in_backward_branch());

        // Taken target lies ahead: forward.
        let fwd = BasicBlock::new(
            BlockId::new(0, 4),
            Addr::new(0x200),
            vec![Inst::new(
                InstKind::CondBranch {
                    target: Addr::new(0x300),
                },
                6,
            )],
        );
        assert!(!fwd.ends_in_backward_branch());

        // Self-loop counts as backward.
        let self_loop = BasicBlock::new(
            BlockId::new(0, 5),
            Addr::new(0x200),
            vec![Inst::new(
                InstKind::Jump {
                    target: Addr::new(0x200),
                },
                5,
            )],
        );
        assert!(self_loop.ends_in_backward_branch());

        // Returns and indirect jumps are never "backward branches".
        let ret = BasicBlock::new(
            BlockId::new(0, 6),
            Addr::new(0x200),
            vec![Inst::new(InstKind::Return, 1)],
        );
        assert!(!ret.ends_in_backward_branch());

        // A call to a lower address is not a loop back-edge.
        let call_back = BasicBlock::new(
            BlockId::new(0, 7),
            Addr::new(0x200),
            vec![Inst::new(
                InstKind::Call {
                    target: Addr::new(0x100),
                },
                5,
            )],
        );
        assert!(!call_back.ends_in_backward_branch());
    }

    #[test]
    fn relocatable_count() {
        let b = BasicBlock::new(
            BlockId::new(0, 7),
            Addr::new(0),
            vec![
                compute(2),
                Inst::new(
                    InstKind::Jump {
                        target: Addr::new(64),
                    },
                    5,
                ),
            ],
        );
        assert_eq!(b.relocatable_inst_count(), 1);
    }

    #[test]
    #[should_panic(expected = "must contain instructions")]
    fn empty_block_rejected() {
        let _ = BasicBlock::new(BlockId::new(0, 0), Addr::new(0), Vec::new());
    }

    #[test]
    #[should_panic(expected = "single-exit")]
    fn interior_branch_rejected() {
        let _ = BasicBlock::new(
            BlockId::new(0, 0),
            Addr::new(0),
            vec![
                Inst::new(
                    InstKind::Jump {
                        target: Addr::new(64),
                    },
                    5,
                ),
                compute(2),
            ],
        );
    }
}
