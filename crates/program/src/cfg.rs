//! A per-module control-flow graph: the set of basic blocks in a module,
//! indexed by start address and by id.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::addr::Addr;
use crate::block::{BasicBlock, BlockId};

/// The control-flow graph of one module.
///
/// Blocks are stored in address order. The graph is *static*: it describes
/// all code the module could execute; the dynamic execution path is chosen
/// by the workload generator.
///
/// # Examples
///
/// ```
/// use gencache_program::{Addr, BasicBlock, BlockId, Cfg, Inst, InstKind};
///
/// let mut cfg = Cfg::new();
/// let b = BasicBlock::new(
///     BlockId::new(0, 0),
///     Addr::new(0x1000),
///     vec![Inst::new(InstKind::Return, 1)],
/// );
/// cfg.insert(b)?;
/// assert!(cfg.block_at(Addr::new(0x1000)).is_some());
/// assert_eq!(cfg.len(), 1);
/// # Ok::<(), gencache_program::CfgError>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cfg {
    by_addr: BTreeMap<Addr, BasicBlock>,
}

/// Errors raised while constructing a [`Cfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgError {
    /// Two blocks share a start address.
    DuplicateAddress(Addr),
    /// A new block's byte range overlaps an existing block.
    OverlappingBlock {
        /// Start of the block being inserted.
        new_start: Addr,
        /// Start of the existing block it collides with.
        existing_start: Addr,
    },
}

impl std::fmt::Display for CfgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CfgError::DuplicateAddress(a) => {
                write!(f, "a block already starts at {a}")
            }
            CfgError::OverlappingBlock {
                new_start,
                existing_start,
            } => write!(
                f,
                "block at {new_start} overlaps existing block at {existing_start}"
            ),
        }
    }
}

impl std::error::Error for CfgError {}

impl Cfg {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Cfg::default()
    }

    /// Inserts a block.
    ///
    /// # Errors
    ///
    /// Returns [`CfgError::DuplicateAddress`] if a block already starts at
    /// the same address, or [`CfgError::OverlappingBlock`] if the byte
    /// ranges collide.
    pub fn insert(&mut self, block: BasicBlock) -> Result<(), CfgError> {
        if self.by_addr.contains_key(&block.start()) {
            return Err(CfgError::DuplicateAddress(block.start()));
        }
        // The previous block (by start address) must end at or before the
        // new block's start; the next block must start at or after its end.
        if let Some((_, prev)) = self.by_addr.range(..block.start()).next_back() {
            if prev.end() > block.start() {
                return Err(CfgError::OverlappingBlock {
                    new_start: block.start(),
                    existing_start: prev.start(),
                });
            }
        }
        if let Some((_, next)) = self.by_addr.range(block.start()..).next() {
            if block.end() > next.start() {
                return Err(CfgError::OverlappingBlock {
                    new_start: block.start(),
                    existing_start: next.start(),
                });
            }
        }
        self.by_addr.insert(block.start(), block);
        Ok(())
    }

    /// The block starting exactly at `addr`, if any.
    pub fn block_at(&self, addr: Addr) -> Option<&BasicBlock> {
        self.by_addr.get(&addr)
    }

    /// The block whose byte range *contains* `addr`, if any.
    pub fn block_containing(&self, addr: Addr) -> Option<&BasicBlock> {
        self.by_addr
            .range(..=addr)
            .next_back()
            .map(|(_, b)| b)
            .filter(|b| b.range().contains(addr))
    }

    /// Looks up a block by id. Linear in the number of blocks; intended
    /// for tests and diagnostics, not the hot path.
    pub fn block_by_id(&self, id: BlockId) -> Option<&BasicBlock> {
        self.iter().find(|b| b.id() == id)
    }

    /// The statically known successor blocks of `block` that exist in this
    /// graph (targets in other modules are not resolved here).
    pub fn successors<'a>(&'a self, block: &BasicBlock) -> impl Iterator<Item = &'a BasicBlock> {
        block
            .terminator()
            .static_successors()
            .into_iter()
            .filter_map(move |a| self.block_at(a))
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// Number of blocks in the graph.
    pub fn len(&self) -> usize {
        self.by_addr.len()
    }

    /// Returns `true` if the graph holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.by_addr.is_empty()
    }

    /// Total bytes of code across all blocks.
    pub fn code_bytes(&self) -> u64 {
        self.by_addr
            .values()
            .map(|b| u64::from(b.size_bytes()))
            .sum()
    }

    /// Iterates over blocks in address order.
    pub fn iter(&self) -> impl Iterator<Item = &BasicBlock> {
        self.by_addr.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, InstKind};

    fn block(idx: u32, start: u64, size: u8) -> BasicBlock {
        BasicBlock::new(
            BlockId::new(0, idx),
            Addr::new(start),
            vec![Inst::new(InstKind::Compute, size)],
        )
    }

    #[test]
    fn insert_and_lookup() {
        let mut cfg = Cfg::new();
        cfg.insert(block(0, 100, 10)).unwrap();
        cfg.insert(block(1, 110, 10)).unwrap();
        assert_eq!(cfg.len(), 2);
        assert_eq!(
            cfg.block_at(Addr::new(110)).unwrap().id(),
            BlockId::new(0, 1)
        );
        assert!(cfg.block_at(Addr::new(105)).is_none());
        assert_eq!(
            cfg.block_containing(Addr::new(105)).unwrap().id(),
            BlockId::new(0, 0)
        );
        assert!(cfg.block_containing(Addr::new(120)).is_none());
        assert!(cfg.block_containing(Addr::new(99)).is_none());
    }

    #[test]
    fn duplicate_start_rejected() {
        let mut cfg = Cfg::new();
        cfg.insert(block(0, 100, 10)).unwrap();
        assert_eq!(
            cfg.insert(block(1, 100, 4)),
            Err(CfgError::DuplicateAddress(Addr::new(100)))
        );
    }

    #[test]
    fn overlap_with_previous_rejected() {
        let mut cfg = Cfg::new();
        cfg.insert(block(0, 100, 10)).unwrap();
        let err = cfg.insert(block(1, 105, 4)).unwrap_err();
        assert!(matches!(err, CfgError::OverlappingBlock { .. }));
    }

    #[test]
    fn overlap_with_next_rejected() {
        let mut cfg = Cfg::new();
        cfg.insert(block(0, 110, 10)).unwrap();
        let err = cfg.insert(block(1, 105, 8)).unwrap_err();
        assert!(matches!(err, CfgError::OverlappingBlock { .. }));
    }

    #[test]
    fn adjacent_blocks_allowed() {
        let mut cfg = Cfg::new();
        cfg.insert(block(0, 100, 10)).unwrap();
        cfg.insert(block(1, 90, 10)).unwrap();
        cfg.insert(block(2, 110, 10)).unwrap();
        assert_eq!(cfg.len(), 3);
        assert_eq!(cfg.code_bytes(), 30);
    }

    #[test]
    fn successors_resolved_within_graph() {
        let mut cfg = Cfg::new();
        // Block at 100 branches to 50 (not present) or falls through to 106.
        let b = BasicBlock::new(
            BlockId::new(0, 0),
            Addr::new(100),
            vec![Inst::new(
                InstKind::CondBranch {
                    target: Addr::new(50),
                },
                6,
            )],
        );
        cfg.insert(b).unwrap();
        cfg.insert(block(1, 106, 4)).unwrap();
        let head = cfg.block_at(Addr::new(100)).unwrap().clone();
        let succ: Vec<_> = cfg.successors(&head).map(|b| b.start()).collect();
        assert_eq!(succ, vec![Addr::new(106)]);
    }

    #[test]
    fn block_by_id_finds_block() {
        let mut cfg = Cfg::new();
        cfg.insert(block(3, 100, 10)).unwrap();
        assert_eq!(
            cfg.block_by_id(BlockId::new(0, 3)).unwrap().start(),
            Addr::new(100)
        );
        assert!(cfg.block_by_id(BlockId::new(0, 4)).is_none());
    }
}
