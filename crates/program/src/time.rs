//! Simulated program-execution time.
//!
//! Trace lifetimes (Equation 2 of the paper) and insertion rates (Figure 3)
//! are defined against wall-clock execution time of the guest program. The
//! simulator advances a virtual clock as workload events are consumed;
//! [`Time`] is that clock's instant type, with microsecond resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant on the simulated program clock, in microseconds since
/// program start.
///
/// # Examples
///
/// ```
/// use gencache_program::Time;
///
/// let t0 = Time::ZERO;
/// let t1 = t0 + Time::from_micros(1_500_000);
/// assert_eq!(t1.as_secs_f64(), 1.5);
/// assert!(t1 > t0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Time(u64);

impl Time {
    /// Program start.
    pub const ZERO: Time = Time(0);

    /// Creates an instant `micros` microseconds after program start.
    pub const fn from_micros(micros: u64) -> Self {
        Time(micros)
    }

    /// Creates an instant from fractional seconds after program start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "time must be finite and non-negative, got {secs}"
        );
        Time((secs * 1_000_000.0).round() as u64)
    }

    /// Microseconds since program start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since program start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference `self - earlier` in microseconds.
    pub fn saturating_micros_since(self, earlier: Time) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add for Time {
    type Output = Time;

    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = Time::from_secs_f64(2.5);
        assert_eq!(t.as_micros(), 2_500_000);
        assert_eq!(t.as_secs_f64(), 2.5);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_micros(100);
        let b = Time::from_micros(40);
        assert_eq!(a - b, Time::from_micros(60));
        assert_eq!(a + b, Time::from_micros(140));
        let mut c = a;
        c += b;
        assert_eq!(c, Time::from_micros(140));
    }

    #[test]
    fn saturating_difference() {
        let a = Time::from_micros(100);
        let b = Time::from_micros(40);
        assert_eq!(a.saturating_micros_since(b), 60);
        assert_eq!(b.saturating_micros_since(a), 0);
    }

    #[test]
    fn display_in_seconds() {
        assert_eq!(Time::from_micros(1_500_000).to_string(), "1.500000s");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_rejected() {
        let _ = Time::from_secs_f64(-1.0);
    }
}
