//! # gencache-program
//!
//! The synthetic guest-program substrate for the `gencache` reproduction of
//! *Generational Cache Management of Code Traces in Dynamic Optimization
//! Systems* (Hazelwood & Smith, MICRO 2003).
//!
//! A dynamic optimizer observes a running program as a stream of executed
//! basic blocks drawn from a set of loadable modules. This crate models
//! exactly that much of a "real" program — addresses, instructions, basic
//! blocks, control-flow graphs, and modules that can be mapped and
//! unmapped — without interpreting any actual machine semantics, because
//! code-cache management depends only on control-flow *shape* and code
//! *size*.
//!
//! ## Quick tour
//!
//! ```
//! use gencache_program::{
//!     Addr, ModuleBuilder, ModuleId, ModuleKind, ProgramImage,
//! };
//!
//! // Lay out a module containing one hot loop.
//! let mut builder = ModuleBuilder::new(
//!     ModuleId::new(0), "app.exe", ModuleKind::Executable,
//!     Addr::new(0x40_0000), 64 * 1024,
//! );
//! let hot_loop = builder.add_loop(&[12, 20, 16])?;
//!
//! // Map it into a process image.
//! let mut image = ProgramImage::new();
//! image.map(builder.finish())?;
//!
//! // The loop head is a backward-branch target: a future trace head.
//! let tail = image.block_at(*hot_loop.path(0).last().unwrap()).unwrap();
//! assert!(tail.ends_in_backward_branch());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod block;
mod builder;
mod cfg;
mod image;
mod inst;
mod module;
mod time;

pub use addr::{Addr, AddrRange};
pub use block::{BasicBlock, BlockId, Terminator};
pub use builder::{BuildError, ModuleBuilder, Region, RegionKind};
pub use cfg::{Cfg, CfgError};
pub use image::{ImageError, ProgramImage};
pub use inst::{Inst, InstKind};
pub use module::{Module, ModuleError, ModuleId, ModuleKind};
pub use time::Time;

/// The trace-creation threshold shared by the DBT frontend and the
/// workload planner: a trace head must execute this many times before a
/// trace is generated for it (DynamoRIO's default of 50, Section 4.1).
///
/// The workload planner sizes loop iteration counts relative to this
/// constant so that hot regions reliably cross the threshold.
pub const TRACE_CREATION_THRESHOLD: u32 = 50;
