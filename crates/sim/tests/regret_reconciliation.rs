//! Reconciliation property: the regret scorer's re-miss accounting is
//! the same churn the metrics pipeline already reports.
//!
//! [`RegretObserver`] charges every miss on a previously-evicted trace
//! to the cell of its most recent eviction — deliberately the same rule
//! [`MetricsObserver`] uses for its `top_churn` table. Walking one
//! event stream through both observers must therefore agree exactly.
//! The id universe (64 traces) deliberately exceeds both tables'
//! default 20-entry truncation caps, so the test folds the churn rule
//! itself as an independent reference and runs the scorer at two caps:
//! one wide enough to keep every contributor (the comparison stays
//! total, across all six local policies) and one far below the
//! universe, whose report must be a truncation — same totals, and a
//! contributor table equal to the leading entries of the wide run's.

use std::collections::HashMap;

use gencache_cache::{TraceId, TraceRecord};
use gencache_core::{CacheModel, UnifiedModel};
use gencache_obs::{
    reconstruct_trace, CacheEvent, EventBuffer, MetricsObserver, NextUseIndex, Observer,
    RegretObserver, TOP_CHURN,
};
use gencache_program::{Addr, Time};
use gencache_sim::LocalPolicy;
use proptest::prelude::*;

/// Trace-id universe: wider than [`TOP_CHURN`] and the regret table's
/// default cap so truncation actually bites.
const UNIVERSE: u64 = 64;

/// Contributor cap for the narrow scorer run: far below the universe.
const NARROW_TOP: usize = 4;

#[derive(Debug, Clone)]
enum Op {
    Access { id: u64, size: u32 },
    Unmap { id: u64 },
    Pin { id: u64, pinned: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0u64..UNIVERSE, 50u32..400).prop_map(|(id, size)| Op::Access { id, size }),
        1 => (0u64..UNIVERSE).prop_map(|id| Op::Unmap { id }),
        1 => (0u64..UNIVERSE, any::<bool>()).prop_map(|(id, pinned)| Op::Pin { id, pinned }),
    ]
}

/// Drives `ops` into a model the way the recorder would: consistent
/// sizes per trace id, one microsecond per step.
fn run_ops(model: &mut dyn CacheModel, ops: &[Op]) {
    let mut sizes: HashMap<u64, u32> = HashMap::new();
    for (step, op) in ops.iter().enumerate() {
        let now = Time::from_micros(step as u64);
        match *op {
            Op::Access { id, size } => {
                let size = *sizes.entry(id).or_insert(size);
                let rec = TraceRecord::new(TraceId::new(id), size, Addr::new(0x1000 + id));
                model.on_access(rec, now);
            }
            Op::Unmap { id } => {
                model.on_unmap(TraceId::new(id), now);
            }
            Op::Pin { id, pinned } => {
                model.on_pin(TraceId::new(id), pinned, now);
            }
        }
    }
}

/// Per-trace churn state folded straight from the event stream — an
/// independent, untruncated reference for the rule both observers
/// implement: a miss re-misses iff the trace was evicted before.
#[derive(Debug, Clone, Copy, Default)]
struct Churn {
    bytes: u32,
    evictions: u64,
    remisses: u64,
}

fn fold_churn(events: &[CacheEvent]) -> HashMap<u64, Churn> {
    let mut churn: HashMap<u64, Churn> = HashMap::new();
    for event in events {
        match *event {
            CacheEvent::Insert { trace, bytes, .. } => {
                churn.entry(trace.as_u64()).or_insert(Churn {
                    bytes,
                    ..Churn::default()
                });
            }
            CacheEvent::Miss { trace, .. } => {
                if let Some(state) = churn.get_mut(&trace.as_u64()) {
                    if state.evictions > 0 {
                        state.remisses += 1;
                    }
                }
            }
            CacheEvent::Evict { trace, bytes, .. } => {
                let state = churn.entry(trace.as_u64()).or_default();
                state.bytes = bytes;
                state.evictions += 1;
            }
            _ => {}
        }
    }
    churn
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For every local policy, regret re-misses reconcile with the
    /// metrics pipeline's churn counters, trace by trace, with the
    /// trace universe wider than either table's truncation cap.
    #[test]
    fn regret_remisses_match_metrics_churn(
        ops in proptest::collection::vec(op_strategy(), 1..250),
        capacity in 400u64..4000,
    ) {
        for policy in LocalPolicy::ALL {
            let mut model = UnifiedModel::with_cache_observed(
                policy.name(),
                policy.build(capacity),
                EventBuffer::new(),
            );
            run_ops(&mut model, &ops);
            let events = model.into_observer().events;

            let trace = reconstruct_trace(&events).expect("stream inverts");
            let index = NextUseIndex::build(&trace);
            let mut metrics = MetricsObserver::new();
            let mut scorer = RegretObserver::with_top(&index, 1, 0, UNIVERSE as usize);
            let mut narrow = RegretObserver::with_top(&index, 1, 0, NARROW_TOP);
            for event in &events {
                metrics.on_event(event);
                scorer.on_event(event);
                narrow.on_event(event);
            }
            let churn = metrics.report().top_churn;
            let regret = scorer.report();
            prop_assert_eq!(regret.top, UNIVERSE, "{}", policy.name());

            prop_assert_eq!(regret.accesses, metrics.report().accesses, "{}", policy.name());

            // Totals against the independent fold: exact, untruncated.
            let reference = fold_churn(&events);
            let reference_total: u64 = reference.values().map(|c| c.remisses).sum();
            prop_assert_eq!(
                regret.total.remisses, reference_total,
                "{}: regret re-misses diverge from event-stream churn", policy.name()
            );
            let phase_total: u64 =
                regret.phases.iter().map(|p| p.total.remisses).sum();
            prop_assert_eq!(regret.total.remisses, phase_total, "{}", policy.name());

            // The metrics table truncates at TOP_CHURN but every entry
            // it does keep must carry exact counts.
            prop_assert!(churn.len() <= TOP_CHURN, "{}", policy.name());
            let churn_total: u64 = churn.iter().map(|e| e.remisses).sum();
            prop_assert!(
                churn_total <= regret.total.remisses,
                "{}: truncated churn exceeds total re-misses", policy.name()
            );

            // Per-trace: every churn entry has a matching contributor
            // with identical eviction/re-miss/bytes accounting. The
            // wide scorer keeps the whole universe, so the lookup is
            // total even though the churn table is not.
            let by_trace: HashMap<u64, _> =
                regret.contributors.iter().map(|c| (c.trace, c)).collect();
            for entry in &churn {
                let c = by_trace.get(&entry.trace).unwrap_or_else(|| {
                    panic!("{}: t{} churns but never contributes", policy.name(), entry.trace)
                });
                prop_assert_eq!(c.remisses, entry.remisses, "{} t{}", policy.name(), entry.trace);
                prop_assert_eq!(c.evictions, entry.evictions, "{} t{}", policy.name(), entry.trace);
                prop_assert_eq!(c.bytes, entry.bytes, "{} t{}", policy.name(), entry.trace);
            }

            // The narrow scorer saw the same events: identical totals
            // and phase splits, and its contributor table is exactly
            // the head of the wide run's ranking.
            let narrow = narrow.report();
            prop_assert_eq!(narrow.top, NARROW_TOP as u64, "{}", policy.name());
            prop_assert!(narrow.contributors.len() <= NARROW_TOP, "{}", policy.name());
            prop_assert_eq!(&narrow.total, &regret.total, "{}", policy.name());
            prop_assert_eq!(&narrow.phases, &regret.phases, "{}", policy.name());
            let head = &regret.contributors[..regret.contributors.len().min(NARROW_TOP)];
            prop_assert_eq!(
                &narrow.contributors[..], head,
                "{}: narrow table is not a prefix of the wide ranking", policy.name()
            );
        }
    }
}
