//! Reconciliation property: the regret scorer's re-miss accounting is
//! the same churn the metrics pipeline already reports.
//!
//! [`RegretObserver`] charges every miss on a previously-evicted trace
//! to the cell of its most recent eviction — deliberately the same rule
//! [`MetricsObserver`] uses for its `top_churn` table. Walking one
//! event stream through both observers must therefore agree exactly:
//! same total re-miss count, and per-trace the same (bytes, evictions,
//! remisses) triples. The id universe is kept under the tables'
//! 20-entry truncation cap so the churn and contributor tables are both
//! complete and the comparison is total, across all six local policies.

use std::collections::HashMap;

use gencache_cache::{TraceId, TraceRecord};
use gencache_core::{CacheModel, UnifiedModel};
use gencache_obs::{
    reconstruct_trace, EventBuffer, MetricsObserver, NextUseIndex, Observer, RegretObserver,
};
use gencache_program::{Addr, Time};
use gencache_sim::LocalPolicy;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Access { id: u64, size: u32 },
    Unmap { id: u64 },
    Pin { id: u64, pinned: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0u64..16, 50u32..400).prop_map(|(id, size)| Op::Access { id, size }),
        1 => (0u64..16).prop_map(|id| Op::Unmap { id }),
        1 => (0u64..16, any::<bool>()).prop_map(|(id, pinned)| Op::Pin { id, pinned }),
    ]
}

/// Drives `ops` into a model the way the recorder would: consistent
/// sizes per trace id, one microsecond per step.
fn run_ops(model: &mut dyn CacheModel, ops: &[Op]) {
    let mut sizes: HashMap<u64, u32> = HashMap::new();
    for (step, op) in ops.iter().enumerate() {
        let now = Time::from_micros(step as u64);
        match *op {
            Op::Access { id, size } => {
                let size = *sizes.entry(id).or_insert(size);
                let rec = TraceRecord::new(TraceId::new(id), size, Addr::new(0x1000 + id));
                model.on_access(rec, now);
            }
            Op::Unmap { id } => {
                model.on_unmap(TraceId::new(id), now);
            }
            Op::Pin { id, pinned } => {
                model.on_pin(TraceId::new(id), pinned, now);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For every local policy, regret re-misses reconcile with the
    /// metrics pipeline's churn counters, trace by trace.
    #[test]
    fn regret_remisses_match_metrics_churn(
        ops in proptest::collection::vec(op_strategy(), 1..250),
        capacity in 400u64..4000,
    ) {
        for policy in LocalPolicy::ALL {
            let mut model = UnifiedModel::with_cache_observed(
                policy.name(),
                policy.build(capacity),
                EventBuffer::new(),
            );
            run_ops(&mut model, &ops);
            let events = model.into_observer().events;

            let trace = reconstruct_trace(&events).expect("stream inverts");
            let index = NextUseIndex::build(&trace);
            let mut metrics = MetricsObserver::new();
            let mut scorer = RegretObserver::new(&index);
            for event in &events {
                metrics.on_event(event);
                scorer.on_event(event);
            }
            let churn = metrics.report().top_churn;
            let regret = scorer.report();

            prop_assert_eq!(regret.accesses, metrics.report().accesses, "{}", policy.name());

            let churn_total: u64 = churn.iter().map(|e| e.remisses).sum();
            prop_assert_eq!(
                regret.total.remisses, churn_total,
                "{}: regret re-misses diverge from churn", policy.name()
            );
            let phase_total: u64 =
                regret.phases.iter().map(|p| p.total.remisses).sum();
            prop_assert_eq!(regret.total.remisses, phase_total, "{}", policy.name());

            // Per-trace: every churn entry has a matching contributor
            // with identical eviction/re-miss/bytes accounting.
            let by_trace: HashMap<u64, _> =
                regret.contributors.iter().map(|c| (c.trace, c)).collect();
            for entry in &churn {
                let c = by_trace.get(&entry.trace).unwrap_or_else(|| {
                    panic!("{}: t{} churns but never contributes", policy.name(), entry.trace)
                });
                prop_assert_eq!(c.remisses, entry.remisses, "{} t{}", policy.name(), entry.trace);
                prop_assert_eq!(c.evictions, entry.evictions, "{} t{}", policy.name(), entry.trace);
                prop_assert_eq!(c.bytes, entry.bytes, "{} t{}", policy.name(), entry.trace);
            }
        }
    }
}
