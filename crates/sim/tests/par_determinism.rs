//! The parallel fan-out must be a pure reordering of work: for any job
//! count the results are byte-identical (via serde_json) to the serial
//! run. Covers both grains — `par_map` itself (property test) and the
//! grid sweep over real recorded logs across several seeds.

use gencache_sim::par::par_map;
use gencache_sim::{record, sweep_with_jobs};
use gencache_workloads::benchmark;
use proptest::prelude::*;

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    // Two benchmarks spanning both suites, each under a few seed
    // perturbations, swept at every job count the harness is expected
    // to see (serial, undersubscribed, oversubscribed).
    for (name, scale) in [("word", 32), ("excel", 32)] {
        for salt in [0u64, 0x1234_5678] {
            let mut profile = benchmark(name).expect("built-in benchmark").scaled_down(scale);
            profile.seed ^= salt;
            let run = record(&profile).expect("calibrated profiles always plan");
            let serial = serde_json::to_string(&sweep_with_jobs(&run.log, 1)).unwrap();
            for jobs in [2, 8] {
                let parallel = serde_json::to_string(&sweep_with_jobs(&run.log, jobs)).unwrap();
                assert_eq!(
                    serial, parallel,
                    "{name} salt {salt:#x}: sweep with {jobs} jobs diverged from serial"
                );
            }
        }
    }
}

proptest! {
    #[test]
    fn par_map_equals_serial_map_for_any_jobs(
        items in proptest::collection::vec(any::<u64>(), 0..200),
        jobs in 1usize..12,
    ) {
        let f = |&x: &u64| x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
        let serial: Vec<u64> = items.iter().map(f).collect();
        prop_assert_eq!(par_map(&items, jobs, f), serial);
    }
}
