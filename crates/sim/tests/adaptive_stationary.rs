//! Stationarity property for the adaptive controller: on a stream with
//! no regime change the drift detector must stay silent, and a silent
//! controller is inert — the [`AdaptiveModel`] is byte-for-byte its
//! initial static configuration, every counter and ledger entry
//! included. Anything else would mean the adaptive spec perturbs the
//! paper's stationary results merely by being enabled.

use gencache_cache::{TraceId, TraceRecord};
use gencache_core::{AdaptiveModel, CacheModel, CandidateSet, GenerationalModel};
use gencache_program::{Addr, Time};
use proptest::prelude::*;

fn rec(id: u64, bytes: u32) -> TraceRecord {
    TraceRecord::new(TraceId::new(id), bytes, Addr::new(0x4000 + id))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A cyclic loop over a resident working set is the hardest kind of
    /// stationary stream to mistake for drift: after the cold start the
    /// windowed miss rate is exactly constant. For any working-set
    /// size, trace size, stream length and epoch width, the controller
    /// must record zero drifts/probes/switches and the model must match
    /// the initial static configuration bitwise.
    #[test]
    fn stationary_stream_is_bitwise_the_initial_static_config(
        working_set in 2u64..12,
        bytes in 100u32..300,
        accesses in 4_000u64..20_000,
        epoch in 32u64..512,
    ) {
        let total = 16_000u64; // roomy: the working set always fits
        let set = CandidateSet::default_set();
        let mut adaptive = AdaptiveModel::new(set, total).with_epoch(epoch);
        let mut fixed = GenerationalModel::new(set.get(0).config(total));
        for i in 0..accesses {
            let t = Time::from_micros(i);
            adaptive.on_access(rec(i % working_set, bytes), t);
            fixed.on_access(rec(i % working_set, bytes), t);
        }

        let report = adaptive.switch_report();
        prop_assert_eq!(report.drifts, 0, "stationary stream must not drift");
        prop_assert_eq!(report.probes, 0);
        prop_assert_eq!(report.switches, 0);
        prop_assert_eq!(report.hot_promotions, 0);
        prop_assert!(report.records.is_empty());

        // Bitwise: the serialized reports agree byte for byte, not just
        // structurally.
        prop_assert_eq!(adaptive.metrics(), fixed.metrics());
        prop_assert_eq!(adaptive.ledger(), fixed.ledger());
        prop_assert_eq!(adaptive.resident_bytes(), fixed.resident_bytes());
        prop_assert_eq!(
            serde_json::to_string(&adaptive.metrics()).unwrap(),
            serde_json::to_string(&fixed.metrics()).unwrap()
        );
    }
}
