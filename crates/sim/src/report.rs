//! Plain-text report formatting for the figure and table binaries.

/// Formats a byte count with a binary-prefixed unit (KB/MB), matching how
/// the paper reports cache sizes.
pub fn fmt_bytes(bytes: u64) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= MB {
        format!("{:.1} MB", b / MB)
    } else if b >= KB {
        format!("{:.0} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

/// Formats a ratio as a signed percentage, e.g. `+18.2%`.
pub fn fmt_pct(ratio: f64) -> String {
    format!("{:+.1}%", ratio * 100.0)
}

/// Renders a horizontal ASCII bar of at most `width` characters,
/// proportional to `value / max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 || width == 0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.clamp(1, width))
}

/// A simple fixed-width text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Renders a one-line Unicode sparkline of `values` (empty input yields
/// an empty string). Useful for occupancy timelines in terminal reports.
pub fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let max = values.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return values.iter().map(|_| BARS[0]).collect();
    }
    values
        .iter()
        .map(|&v| BARS[((v * 7) / max) as usize])
        .collect()
}

/// Geometric mean of strictly positive values; `None` if empty or any
/// value is non-positive.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean; `None` if empty.
pub fn arithmetic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(4 * 1024), "4 KB");
        assert_eq!(fmt_bytes(34_200 * 1024), "33.4 MB");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(0.182), "+18.2%");
        assert_eq!(fmt_pct(-0.062), "-6.2%");
    }

    #[test]
    fn bars_scale_and_clamp() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(0.01, 10.0, 10), "#");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["gcc", "4.3 MB"]);
        t.row(["x", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("gcc"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["only"]);
        assert!(t.render().contains("only"));
    }

    #[test]
    fn sparkline_scales() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "\u{2581}\u{2581}");
        let line = sparkline(&[1, 4, 8]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.ends_with('\u{2588}'));
    }

    #[test]
    fn means() {
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        let g = geometric_mean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
        assert_eq!(arithmetic_mean(&[1.0, 3.0]), Some(2.0));
        assert_eq!(arithmetic_mean(&[]), None);
    }
}
