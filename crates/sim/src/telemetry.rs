//! Observer-aware replay: event capture and mergeable metrics.
//!
//! These helpers wrap [`replay_into`](crate::replay_into) with the
//! instrumented model constructors from `gencache-core`, producing either
//! a full [`CacheEvent`] stream (for JSONL export and the `explain`
//! tool) or an aggregated [`MetricsReport`].
//!
//! The per-benchmark reports are mergeable, and [`suite_metrics`] folds
//! them **in input-index order** after a [`par_map`](crate::par::par_map)
//! fan-out — so the merged suite report is bit-identical for every
//! worker count, extending the repo's determinism guarantee to
//! telemetry collection.

use gencache_core::{
    CacheModel, GenerationalConfig, GenerationalModel, PromotionPolicy, Proportions, UnifiedModel,
};
use gencache_obs::{CacheEvent, EventBuffer, MetricsObserver, MetricsReport, Observer};

use crate::log::AccessLog;
use crate::replay::{replay_into, ReplayResult};

/// Which cache organization to instrument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelSpec {
    /// The unified pseudo-circular baseline at `0.5 × maxCache`.
    Unified,
    /// A generational hierarchy over the same total budget.
    Generational {
        /// Nursery/probation/persistent split of the budget.
        proportions: Proportions,
        /// When probation traces are promoted.
        policy: PromotionPolicy,
    },
}

impl ModelSpec {
    /// The paper's best-overall generational configuration:
    /// 45%–10%–45% with promotion on first probation hit.
    pub fn best_generational() -> Self {
        ModelSpec::Generational {
            proportions: Proportions::best_overall(),
            policy: PromotionPolicy::OnHit { hits: 1 },
        }
    }

    /// Builds the concrete config for a benchmark whose standard budget
    /// is `capacity` bytes, if this spec is generational.
    pub fn generational_config(&self, capacity: u64) -> Option<GenerationalConfig> {
        match *self {
            ModelSpec::Unified => None,
            ModelSpec::Generational {
                proportions,
                policy,
            } => Some(GenerationalConfig::new(capacity, proportions, policy)),
        }
    }
}

/// Replays `log` into the model described by `spec` with `observer`
/// attached, returning the replay outcome and the observer back.
pub fn replay_observed<O: Observer>(
    log: &AccessLog,
    spec: ModelSpec,
    observer: O,
) -> (ReplayResult, O) {
    let capacity = (log.peak_trace_bytes / 2).max(1);
    match spec.generational_config(capacity) {
        None => {
            let mut model = UnifiedModel::observed(capacity, observer);
            replay_into(log, &mut model);
            let result = ReplayResult {
                model: model.name(),
                metrics: *model.metrics(),
                ledger: *model.ledger(),
            };
            (result, model.into_observer())
        }
        Some(config) => {
            let mut model = GenerationalModel::observed(config, observer);
            replay_into(log, &mut model);
            let result = ReplayResult {
                model: model.name(),
                metrics: *model.metrics(),
                ledger: *model.ledger(),
            };
            (result, model.into_observer())
        }
    }
}

/// Replays `log` and captures the complete event stream.
pub fn collect_events(log: &AccessLog, spec: ModelSpec) -> (ReplayResult, Vec<CacheEvent>) {
    let (result, buffer) = replay_observed(log, spec, EventBuffer::new());
    (result, buffer.events)
}

/// Replays `log` and aggregates a [`MetricsReport`]. `sample_every`
/// controls the occupancy timeline (one sample per that many accesses;
/// 0 disables the timeline).
pub fn collect_metrics(
    log: &AccessLog,
    spec: ModelSpec,
    sample_every: u64,
) -> (ReplayResult, MetricsReport) {
    let (result, observer) = replay_observed(log, spec, MetricsObserver::with_timeline(sample_every));
    (result, observer.report())
}

/// Collects per-benchmark metrics across `jobs` workers and merges them
/// into one suite-level report.
///
/// The merge folds the shard reports in **input-index order**, so the
/// result is bit-identical to a serial run for any `jobs` — the same
/// contract `tests/par_determinism.rs` enforces for the sweep engine.
pub fn suite_metrics(
    logs: &[AccessLog],
    spec: ModelSpec,
    sample_every: u64,
    jobs: usize,
) -> MetricsReport {
    let shards = crate::par::par_map(logs, jobs, |log| collect_metrics(log, spec, sample_every).1);
    let mut merged = MetricsReport::new();
    for shard in &shards {
        merged.merge(shard);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogRecord;
    use gencache_cache::{TraceId, TraceRecord};
    use gencache_program::{Addr, Time};

    fn churn_log(name: &str, seed: u64) -> AccessLog {
        let rec = |id: u64| TraceRecord::new(TraceId::new(id), 120, Addr::new(0x1000 + id));
        let mut records = Vec::new();
        let mut t = 0u64;
        for id in 0..10 {
            t += 1;
            records.push(LogRecord::Create {
                record: rec(seed * 1000 + id),
                time: Time::from_micros(t),
            });
        }
        for round in 0..30u64 {
            for id in 0..10 {
                t += 1;
                records.push(LogRecord::Access {
                    id: TraceId::new(seed * 1000 + (id + round) % 10),
                    time: Time::from_micros(t),
                });
            }
        }
        AccessLog {
            benchmark: name.into(),
            records,
            duration: Time::from_secs_f64(1.0),
            peak_trace_bytes: 10 * 120,
        }
    }

    #[test]
    fn metrics_agree_with_model_counters() {
        let log = churn_log("agree", 1);
        for spec in [ModelSpec::Unified, ModelSpec::best_generational()] {
            let (result, report) = collect_metrics(&log, spec, 0);
            assert_eq!(report.accesses, result.metrics.accesses);
            assert_eq!(report.hits, result.metrics.hits);
            assert_eq!(report.misses, result.metrics.misses);
        }
    }

    #[test]
    fn events_and_metrics_describe_the_same_run() {
        let log = churn_log("same", 2);
        let spec = ModelSpec::best_generational();
        let (_, events) = collect_events(&log, spec);
        let mut replayed = MetricsObserver::with_timeline(16);
        for event in &events {
            replayed.on_event(event);
        }
        let (_, direct) = collect_metrics(&log, spec, 16);
        assert_eq!(replayed.report(), direct);
    }

    #[test]
    fn suite_metrics_are_jobs_invariant() {
        let logs = vec![churn_log("a", 1), churn_log("b", 2), churn_log("c", 3)];
        let spec = ModelSpec::best_generational();
        let serial = suite_metrics(&logs, spec, 32, 1);
        for jobs in [2, 8] {
            assert_eq!(suite_metrics(&logs, spec, 32, jobs), serial);
        }
        assert!(serial.accesses > 0);
    }
}
