//! Observer-aware replay: event capture and mergeable metrics.
//!
//! These helpers wrap [`replay_into`](crate::replay_into) with the
//! instrumented model constructors from `gencache-core`, producing either
//! a full [`CacheEvent`] stream (for JSONL export and the `explain`
//! tool) or an aggregated [`MetricsReport`].
//!
//! The per-benchmark reports are mergeable, and [`suite_metrics`] folds
//! them **in input-index order** after a [`par_map`](crate::par::par_map)
//! fan-out — so the merged suite report is bit-identical for every
//! worker count, extending the repo's determinism guarantee to
//! telemetry collection.

use gencache_core::{
    CacheModel, GenerationalConfig, GenerationalModel, PromotionPolicy, Proportions, UnifiedModel,
};
use gencache_obs::{
    CacheEvent, CostObserver, CostReport, EventBuffer, MetricsObserver, MetricsReport, Observer,
    SampledReport, SamplingObserver, SamplingParams,
};

use crate::log::AccessLog;
use crate::replay::{replay_into, ReplayResult};

/// Which cache organization to instrument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelSpec {
    /// The unified pseudo-circular baseline at `0.5 × maxCache`.
    Unified,
    /// A generational hierarchy over the same total budget.
    Generational {
        /// Nursery/probation/persistent split of the budget.
        proportions: Proportions,
        /// When probation traces are promoted.
        policy: PromotionPolicy,
    },
}

impl ModelSpec {
    /// The paper's best-overall generational configuration:
    /// 45%–10%–45% with promotion on first probation hit.
    pub fn best_generational() -> Self {
        ModelSpec::Generational {
            proportions: Proportions::best_overall(),
            policy: PromotionPolicy::OnHit { hits: 1 },
        }
    }

    /// Builds the concrete config for a benchmark whose standard budget
    /// is `capacity` bytes, if this spec is generational.
    pub fn generational_config(&self, capacity: u64) -> Option<GenerationalConfig> {
        match *self {
            ModelSpec::Unified => None,
            ModelSpec::Generational {
                proportions,
                policy,
            } => Some(GenerationalConfig::new(capacity, proportions, policy)),
        }
    }
}

/// Replays `log` into the model described by `spec` with `observer`
/// attached, returning the replay outcome and the observer back.
pub fn replay_observed<O: Observer>(
    log: &AccessLog,
    spec: ModelSpec,
    observer: O,
) -> (ReplayResult, O) {
    let capacity = (log.peak_trace_bytes / 2).max(1);
    match spec.generational_config(capacity) {
        None => {
            let mut model = UnifiedModel::observed(capacity, observer);
            replay_into(log, &mut model);
            let result = ReplayResult {
                model: model.name(),
                metrics: *model.metrics(),
                ledger: *model.ledger(),
            };
            (result, model.into_observer())
        }
        Some(config) => {
            let mut model = GenerationalModel::observed(config, observer);
            replay_into(log, &mut model);
            let result = ReplayResult {
                model: model.name(),
                metrics: *model.metrics(),
                ledger: *model.ledger(),
            };
            (result, model.into_observer())
        }
    }
}

/// Replays `log` and captures the complete event stream.
pub fn collect_events(log: &AccessLog, spec: ModelSpec) -> (ReplayResult, Vec<CacheEvent>) {
    let (result, buffer) = replay_observed(log, spec, EventBuffer::new());
    (result, buffer.events)
}

/// Replays `log` and aggregates a [`MetricsReport`]. `sample_every`
/// controls the occupancy timeline (one sample per that many accesses;
/// 0 disables the timeline).
pub fn collect_metrics(
    log: &AccessLog,
    spec: ModelSpec,
    sample_every: u64,
) -> (ReplayResult, MetricsReport) {
    let (result, observer) = replay_observed(log, spec, MetricsObserver::with_timeline(sample_every));
    (result, observer.report())
}

/// Collects per-benchmark metrics across `jobs` workers and merges them
/// into one suite-level report.
///
/// The merge folds the shard reports in **input-index order**, so the
/// result is bit-identical to a serial run for any `jobs` — the same
/// contract `tests/par_determinism.rs` enforces for the sweep engine.
pub fn suite_metrics(
    logs: &[AccessLog],
    spec: ModelSpec,
    sample_every: u64,
    jobs: usize,
) -> MetricsReport {
    let shards = crate::par::par_map(logs, jobs, |log| collect_metrics(log, spec, sample_every).1);
    let mut merged = MetricsReport::new();
    for shard in &shards {
        merged.merge(shard);
    }
    merged
}

/// Replays `log` and prices the event stream through the Table 2
/// formulas, attributing instruction overhead to `phases` equal time
/// slices (and to regions and eviction causes within each).
///
/// The returned [`CostReport::total`] is charged in event order — the
/// same order the model charged its own [`ReplayResult::ledger`] — so
/// the two are bitwise-equal, not merely close (the property test in
/// `crates/core/tests/cost_attribution.rs` enforces this).
pub fn collect_costs(log: &AccessLog, spec: ModelSpec, phases: u32) -> (ReplayResult, CostReport) {
    let observer = CostObserver::with_phases(phases, log.duration.as_micros());
    let (result, observer) = replay_observed(log, spec, observer);
    (result, observer.into_report())
}

/// Collects per-benchmark cost reports across `jobs` workers and merges
/// them into one suite-level report.
///
/// Phase `i` of the merged report aggregates the `i`-th *fraction* of
/// each benchmark's run (each report's phases cover that benchmark's
/// own duration). The merge folds shards in **input-index order**, so
/// the result is bit-identical to a serial run for any `jobs`.
pub fn suite_costs(logs: &[AccessLog], spec: ModelSpec, phases: u32, jobs: usize) -> CostReport {
    let shards = crate::par::par_map(logs, jobs, |log| collect_costs(log, spec, phases).1);
    let mut merged = CostReport::new(phases.max(1) as usize);
    for shard in &shards {
        merged.merge(shard);
    }
    merged
}

/// Replays `log` through a bounded-memory [`SamplingObserver`]:
/// counters exact, distributions sampled per `params`, occupancy
/// timeline sampled every `sample_every` accesses (0 disables it).
pub fn collect_sampled(
    log: &AccessLog,
    spec: ModelSpec,
    params: SamplingParams,
    sample_every: u64,
) -> (ReplayResult, SampledReport) {
    let observer = SamplingObserver::with_timeline(params, sample_every);
    let (result, observer) = replay_observed(log, spec, observer);
    (result, observer.report())
}

/// Collects per-benchmark sampled reports across `jobs` workers and
/// merges them in **input-index order** — bit-identical for any `jobs`.
pub fn suite_sampled(
    logs: &[AccessLog],
    spec: ModelSpec,
    params: SamplingParams,
    sample_every: u64,
    jobs: usize,
) -> SampledReport {
    let shards = crate::par::par_map(logs, jobs, |log| {
        collect_sampled(log, spec, params, sample_every).1
    });
    let mut merged: Option<SampledReport> = None;
    for shard in &shards {
        match merged.as_mut() {
            None => merged = Some(shard.clone()),
            Some(m) => m.merge(shard),
        }
    }
    merged.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogRecord;
    use gencache_cache::{TraceId, TraceRecord};
    use gencache_program::{Addr, Time};

    fn churn_log(name: &str, seed: u64) -> AccessLog {
        let rec = |id: u64| TraceRecord::new(TraceId::new(id), 120, Addr::new(0x1000 + id));
        let mut records = Vec::new();
        let mut t = 0u64;
        for id in 0..10 {
            t += 1;
            records.push(LogRecord::Create {
                record: rec(seed * 1000 + id),
                time: Time::from_micros(t),
            });
        }
        for round in 0..30u64 {
            for id in 0..10 {
                t += 1;
                records.push(LogRecord::Access {
                    id: TraceId::new(seed * 1000 + (id + round) % 10),
                    time: Time::from_micros(t),
                });
            }
        }
        AccessLog {
            benchmark: name.into(),
            records,
            duration: Time::from_secs_f64(1.0),
            peak_trace_bytes: 10 * 120,
        }
    }

    #[test]
    fn metrics_agree_with_model_counters() {
        let log = churn_log("agree", 1);
        for spec in [ModelSpec::Unified, ModelSpec::best_generational()] {
            let (result, report) = collect_metrics(&log, spec, 0);
            assert_eq!(report.accesses, result.metrics.accesses);
            assert_eq!(report.hits, result.metrics.hits);
            assert_eq!(report.misses, result.metrics.misses);
        }
    }

    #[test]
    fn events_and_metrics_describe_the_same_run() {
        let log = churn_log("same", 2);
        let spec = ModelSpec::best_generational();
        let (_, events) = collect_events(&log, spec);
        let mut replayed = MetricsObserver::with_timeline(16);
        for event in &events {
            replayed.on_event(event);
        }
        let (_, direct) = collect_metrics(&log, spec, 16);
        assert_eq!(replayed.report(), direct);
    }

    #[test]
    fn cost_report_total_equals_model_ledger() {
        let log = churn_log("cost", 4);
        for spec in [ModelSpec::Unified, ModelSpec::best_generational()] {
            let (result, report) = collect_costs(&log, spec, 8);
            // Same formulas, charged in the same order: bitwise equal.
            assert_eq!(report.total, result.ledger);
            let phase_events: u64 = report.phases.iter().map(|p| p.ledger.miss_events).sum();
            assert_eq!(phase_events, result.ledger.miss_events);
        }
    }

    #[test]
    fn sampled_counters_match_unsampled_metrics() {
        let log = churn_log("sampled", 5);
        let spec = ModelSpec::best_generational();
        let (_, exact) = collect_metrics(&log, spec, 0);
        let (_, sampled) = collect_sampled(&log, spec, SamplingParams::bounded(17), 0);
        assert_eq!(sampled.metrics.accesses, exact.accesses);
        assert_eq!(sampled.metrics.hits, exact.hits);
        assert_eq!(sampled.metrics.misses, exact.misses);
    }

    #[test]
    fn suite_costs_and_sampled_are_jobs_invariant() {
        let logs = vec![churn_log("x", 1), churn_log("y", 2), churn_log("z", 3)];
        let spec = ModelSpec::best_generational();
        let costs = suite_costs(&logs, spec, 6, 1);
        let sampled = suite_sampled(&logs, spec, SamplingParams::bounded(9), 16, 1);
        for jobs in [2, 8] {
            assert_eq!(suite_costs(&logs, spec, 6, jobs), costs);
            assert_eq!(
                suite_sampled(&logs, spec, SamplingParams::bounded(9), 16, jobs),
                sampled
            );
        }
        assert!(costs.total.total() > 0.0);
    }

    #[test]
    fn suite_metrics_are_jobs_invariant() {
        let logs = vec![churn_log("a", 1), churn_log("b", 2), churn_log("c", 3)];
        let spec = ModelSpec::best_generational();
        let serial = suite_metrics(&logs, spec, 32, 1);
        for jobs in [2, 8] {
            assert_eq!(suite_metrics(&logs, spec, 32, jobs), serial);
        }
        assert!(serial.accesses > 0);
    }
}
