//! # gencache-sim
//!
//! The trace-driven evaluation harness for the `gencache` reproduction of
//! *Generational Cache Management of Code Traces in Dynamic Optimization
//! Systems* (Hazelwood & Smith, MICRO 2003).
//!
//! The paper's methodology (Section 6) is a two-step pipeline:
//!
//! 1. **Record** — run the benchmark under the dynamic optimizer with an
//!    *unbounded* code cache and capture the verbose log of trace
//!    creations, trace-cache accesses, and unmap invalidations
//!    ([`record`], producing an [`AccessLog`]).
//! 2. **Replay** — drive bounded cache simulators from the log: a unified
//!    pseudo-circular cache sized at half the benchmark's unbounded peak,
//!    versus generational hierarchies of identical total size
//!    ([`compare`], [`compare_figure9`]).
//!
//! Plus [`sweep`] for the proportion × promotion-threshold configuration
//! study, [`par`] for the deterministic thread-scoped fan-out that
//! drives it (and the suite-level drivers in `gencache-bench`), and
//! [`report`] helpers for rendering the paper's tables and figures as
//! text.
//!
//! ```
//! use gencache_sim::{compare_figure9, record};
//! use gencache_workloads::{Suite, WorkloadProfile};
//!
//! let profile = WorkloadProfile::builder("demo", Suite::Spec2000)
//!     .footprint_kb(24)
//!     .build();
//! let run = record(&profile)?;
//! let comparison = compare_figure9(&run.log);
//! println!(
//!     "unified miss rate {:.2}%, best generational {:.2}%",
//!     comparison.unified.miss_rate() * 100.0,
//!     comparison.generational[1].miss_rate() * 100.0,
//! );
//! # Ok::<(), gencache_workloads::PlanError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analysis;
mod linking;
mod log;
pub mod par;
mod progress;
mod recorder;
mod replay;
pub mod report;
mod simulate;
pub mod stream;
mod streamed;
mod sweep;
mod telemetry;
mod threads;

pub use analysis::{occupancy_series, reuse_profile, ReuseProfile};
pub use linking::{replay_with_linking, LinkReport, LinkableModel};
pub use log::{AccessLog, LogRecord};
pub use progress::{ProgressMeter, PROGRESS_BATCH};
pub use recorder::{
    record, record_stream_with, record_with, RecordFacts, RecordedRun, RecorderOptions, RunSummary,
};
pub use replay::{
    compare, compare_figure9, compare_figure9_metered, compare_metered, replay_into,
    replay_into_metered, Comparison, ReplayCursor, ReplayResult, ReplayStep,
};
pub use simulate::{
    parse_spec, replay_sim_observed, simulate_costs, simulate_grid, simulate_metrics,
    simulate_regret, simulate_regret_top, simulate_switches, simulate_windows, trace_to_log,
    GridOptions, LocalPolicy, SimSpec, SimulatedSpec,
};
pub use streamed::{compare_figure9_streamed, StreamedRecording, DEFAULT_STREAM_DEPTH};
pub use sweep::{best_point, policy_grid, proportion_grid, sweep, sweep_with_jobs, SweepPoint};
pub use telemetry::{
    collect_costs, collect_events, collect_metrics, collect_sampled, replay_observed, suite_costs,
    suite_metrics, suite_sampled, ModelSpec,
};
pub use threads::{
    partition_by_module, replay_thread_private, replay_thread_shared, BudgetSplit, ThreadCacheKind,
    ThreadedOutcome,
};
