//! Configuration-space sweeps (Section 6): cache proportions versus
//! promotion thresholds.
//!
//! The paper swept generational cache sizes and observed (1) no
//! consistent advantage to unbalanced nursery/persistent sizing, and
//! (2) an "undeniable link" between probation-cache size and promotion
//! threshold — small probation caches need low thresholds or long-lived
//! traces are evicted before qualifying.

use gencache_core::{GenerationalConfig, PromotionPolicy, Proportions};
use serde::{Deserialize, Serialize};

use crate::log::AccessLog;
use crate::replay::{compare, Comparison};

/// One sweep sample: a configuration and its outcome versus unified.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Nursery fraction of the total budget.
    pub nursery: f64,
    /// Probation fraction.
    pub probation: f64,
    /// Persistent fraction.
    pub persistent: f64,
    /// The promotion policy used.
    pub promotion: PromotionPolicy,
    /// Miss-rate reduction versus the unified baseline (positive = win).
    pub miss_rate_reduction: f64,
    /// Overhead ratio versus unified (Equation 3; < 1 = win).
    pub overhead_ratio: f64,
}

/// The proportion grid the sweep explores (each sums to 1).
pub fn proportion_grid() -> Vec<Proportions> {
    vec![
        Proportions::new(0.25, 0.50, 0.25),
        Proportions::new(1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0),
        Proportions::new(0.40, 0.20, 0.40),
        Proportions::new(0.45, 0.10, 0.45),
        Proportions::new(0.30, 0.10, 0.60),
        Proportions::new(0.60, 0.10, 0.30),
    ]
}

/// The promotion policies the sweep explores.
pub fn policy_grid() -> Vec<PromotionPolicy> {
    vec![
        PromotionPolicy::OnHit { hits: 1 },
        PromotionPolicy::OnEviction { threshold: 1 },
        PromotionPolicy::OnEviction { threshold: 5 },
        PromotionPolicy::OnEviction { threshold: 10 },
        PromotionPolicy::OnEviction { threshold: 25 },
    ]
}

/// Sweeps the full proportion × policy grid over one benchmark log,
/// fanning the grid points across [`effective_jobs`](crate::par::effective_jobs)
/// worker threads (override with `GENCACHE_JOBS`).
pub fn sweep(log: &AccessLog) -> Vec<SweepPoint> {
    sweep_with_jobs(log, crate::par::effective_jobs(None))
}

/// [`sweep`] with an explicit worker count. Each grid point replays the
/// shared read-only log against its own cache models; the results are
/// reassembled in grid order, so the output is bit-identical for every
/// `jobs` value (enforced by `tests/par_determinism.rs`).
pub fn sweep_with_jobs(log: &AccessLog, jobs: usize) -> Vec<SweepPoint> {
    let capacity = (log.peak_trace_bytes / 2).max(1);
    let grid: Vec<(Proportions, PromotionPolicy)> = proportion_grid()
        .into_iter()
        .flat_map(|proportions| policy_grid().into_iter().map(move |p| (proportions, p)))
        .collect();
    crate::par::par_map(&grid, jobs, |&(proportions, policy)| {
        let config = GenerationalConfig::new(capacity, proportions, policy);
        let comparison: Comparison = compare(log, &[config]);
        SweepPoint {
            nursery: proportions.nursery,
            probation: proportions.probation,
            persistent: proportions.persistent,
            promotion: policy,
            miss_rate_reduction: comparison.miss_rate_reduction(0),
            overhead_ratio: comparison.overhead_ratio(0),
        }
    })
}

/// The best point of a sweep by miss-rate reduction.
///
/// A log with no accesses yields NaN reductions (0/0 miss rates); NaN
/// ranks below every real number here, so such points are never chosen
/// over a finite one and the function never panics.
pub fn best_point(points: &[SweepPoint]) -> Option<&SweepPoint> {
    fn rank(p: &SweepPoint) -> f64 {
        if p.miss_rate_reduction.is_nan() {
            f64::NEG_INFINITY
        } else {
            p.miss_rate_reduction
        }
    }
    points.iter().max_by(|a, b| rank(a).total_cmp(&rank(b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogRecord;
    use gencache_cache::{TraceId, TraceRecord};
    use gencache_program::{Addr, Time};

    fn tiny_log() -> AccessLog {
        let rec = |id: u64| TraceRecord::new(TraceId::new(id), 100, Addr::new(0x1000 + id));
        let mut records = Vec::new();
        for id in 0..8 {
            records.push(LogRecord::Create {
                record: rec(id),
                time: Time::from_micros(id),
            });
        }
        for round in 0..20u64 {
            for id in 0..8 {
                records.push(LogRecord::Access {
                    id: TraceId::new(id),
                    time: Time::from_micros(100 + round * 8 + id),
                });
            }
        }
        AccessLog {
            benchmark: "tiny".into(),
            records,
            duration: Time::from_secs_f64(1.0),
            peak_trace_bytes: 800,
        }
    }

    #[test]
    fn sweep_covers_full_grid() {
        let points = sweep(&tiny_log());
        assert_eq!(points.len(), proportion_grid().len() * policy_grid().len());
        for p in &points {
            assert!((p.nursery + p.probation + p.persistent - 1.0).abs() < 1e-6);
            assert!(p.overhead_ratio.is_finite());
        }
    }

    #[test]
    fn best_point_is_maximal() {
        let points = sweep(&tiny_log());
        let best = best_point(&points).unwrap();
        for p in &points {
            assert!(best.miss_rate_reduction >= p.miss_rate_reduction);
        }
    }

    #[test]
    fn empty_sweep_has_no_best() {
        assert!(best_point(&[]).is_none());
    }

    #[test]
    fn zero_access_log_does_not_panic() {
        // No accesses at all: both miss rates are 0/0 = NaN. The sweep
        // must still cover the grid and best_point must not panic.
        let log = AccessLog {
            benchmark: "empty".into(),
            records: Vec::new(),
            duration: Time::from_secs_f64(1.0),
            peak_trace_bytes: 800,
        };
        let points = sweep(&log);
        assert_eq!(points.len(), proportion_grid().len() * policy_grid().len());
        assert!(best_point(&points).is_some());
    }

    #[test]
    fn nan_points_never_beat_finite_ones() {
        let mut points = sweep(&tiny_log());
        let finite_best = best_point(&points).unwrap().miss_rate_reduction;
        points.push(SweepPoint {
            nursery: 0.3,
            probation: 0.4,
            persistent: 0.3,
            promotion: PromotionPolicy::OnHit { hits: 1 },
            miss_rate_reduction: f64::NAN,
            overhead_ratio: f64::NAN,
        });
        let best = best_point(&points).unwrap();
        assert_eq!(best.miss_rate_reduction, finite_best);
    }
}
