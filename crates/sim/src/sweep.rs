//! Configuration-space sweeps (Section 6): cache proportions versus
//! promotion thresholds.
//!
//! The paper swept generational cache sizes and observed (1) no
//! consistent advantage to unbalanced nursery/persistent sizing, and
//! (2) an "undeniable link" between probation-cache size and promotion
//! threshold — small probation caches need low thresholds or long-lived
//! traces are evicted before qualifying.

use gencache_core::{GenerationalConfig, PromotionPolicy, Proportions};
use serde::{Deserialize, Serialize};

use crate::log::AccessLog;
use crate::replay::{compare, Comparison};

/// One sweep sample: a configuration and its outcome versus unified.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Nursery fraction of the total budget.
    pub nursery: f64,
    /// Probation fraction.
    pub probation: f64,
    /// Persistent fraction.
    pub persistent: f64,
    /// The promotion policy used.
    pub promotion: PromotionPolicy,
    /// Miss-rate reduction versus the unified baseline (positive = win).
    pub miss_rate_reduction: f64,
    /// Overhead ratio versus unified (Equation 3; < 1 = win).
    pub overhead_ratio: f64,
}

/// The proportion grid the sweep explores (each sums to 1).
pub fn proportion_grid() -> Vec<Proportions> {
    vec![
        Proportions::new(0.25, 0.50, 0.25),
        Proportions::new(1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0),
        Proportions::new(0.40, 0.20, 0.40),
        Proportions::new(0.45, 0.10, 0.45),
        Proportions::new(0.30, 0.10, 0.60),
        Proportions::new(0.60, 0.10, 0.30),
    ]
}

/// The promotion policies the sweep explores.
pub fn policy_grid() -> Vec<PromotionPolicy> {
    vec![
        PromotionPolicy::OnHit { hits: 1 },
        PromotionPolicy::OnEviction { threshold: 1 },
        PromotionPolicy::OnEviction { threshold: 5 },
        PromotionPolicy::OnEviction { threshold: 10 },
        PromotionPolicy::OnEviction { threshold: 25 },
    ]
}

/// Sweeps the full proportion × policy grid over one benchmark log.
pub fn sweep(log: &AccessLog) -> Vec<SweepPoint> {
    let capacity = (log.peak_trace_bytes / 2).max(1);
    let mut points = Vec::new();
    for proportions in proportion_grid() {
        for policy in policy_grid() {
            let config = GenerationalConfig::new(capacity, proportions, policy);
            let comparison: Comparison = compare(log, &[config]);
            points.push(SweepPoint {
                nursery: proportions.nursery,
                probation: proportions.probation,
                persistent: proportions.persistent,
                promotion: policy,
                miss_rate_reduction: comparison.miss_rate_reduction(0),
                overhead_ratio: comparison.overhead_ratio(0),
            });
        }
    }
    points
}

/// The best point of a sweep by miss-rate reduction.
pub fn best_point(points: &[SweepPoint]) -> Option<&SweepPoint> {
    points.iter().max_by(|a, b| {
        a.miss_rate_reduction
            .partial_cmp(&b.miss_rate_reduction)
            .expect("reductions are finite")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogRecord;
    use gencache_cache::{TraceId, TraceRecord};
    use gencache_program::{Addr, Time};

    fn tiny_log() -> AccessLog {
        let rec = |id: u64| TraceRecord::new(TraceId::new(id), 100, Addr::new(0x1000 + id));
        let mut records = Vec::new();
        for id in 0..8 {
            records.push(LogRecord::Create {
                record: rec(id),
                time: Time::from_micros(id),
            });
        }
        for round in 0..20u64 {
            for id in 0..8 {
                records.push(LogRecord::Access {
                    id: TraceId::new(id),
                    time: Time::from_micros(100 + round * 8 + id),
                });
            }
        }
        AccessLog {
            benchmark: "tiny".into(),
            records,
            duration: Time::from_secs_f64(1.0),
            peak_trace_bytes: 800,
        }
    }

    #[test]
    fn sweep_covers_full_grid() {
        let points = sweep(&tiny_log());
        assert_eq!(points.len(), proportion_grid().len() * policy_grid().len());
        for p in &points {
            assert!((p.nursery + p.probation + p.persistent - 1.0).abs() < 1e-6);
            assert!(p.overhead_ratio.is_finite());
        }
    }

    #[test]
    fn best_point_is_maximal() {
        let points = sweep(&tiny_log());
        let best = best_point(&points).unwrap();
        for p in &points {
            assert!(best.miss_rate_reduction >= p.miss_rate_reduction);
        }
    }

    #[test]
    fn empty_sweep_has_no_best() {
        assert!(best_point(&[]).is_none());
    }
}
