//! Recording a benchmark: run the workload through the DBT frontend with
//! an unbounded trace cache and capture the verbose access log.

use gencache_cache::TraceId;
use gencache_core::{LifetimeHistogram, LifetimeTracker};
use gencache_frontend::{Engine, FrontendEvent, FrontendStats};
use gencache_workloads::{ExecutionPlan, PlanError, WorkloadProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::log::{AccessLog, LogRecord};

/// Per-benchmark characterization numbers, feeding Figures 1–4 and 6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    /// Benchmark name.
    pub name: String,
    /// Run duration in seconds.
    pub duration_secs: f64,
    /// Unique static code executed (application footprint).
    pub footprint_bytes: u64,
    /// Peak unbounded code cache size (basic blocks + traces): Figure 1.
    pub max_cache_bytes: u64,
    /// Peak unbounded *trace cache* size: `maxCache` for Section 6 sizing.
    pub peak_trace_bytes: u64,
    /// Equation 1: `maxCacheBytes / footprintBytes` − expressed as the
    /// paper's percentage (500% ≈ cache is 5× the original code): Fig. 2.
    pub code_expansion_pct: f64,
    /// Trace insertion rate in KB/s: Figure 3.
    pub insertion_rate_kbps: f64,
    /// Fraction of trace bytes deleted due to unmapped memory: Figure 4.
    pub unmapped_frac: f64,
    /// Traces created.
    pub traces_created: u64,
    /// Trace executions recorded.
    pub trace_accesses: u64,
    /// Median trace size in bytes.
    pub median_trace_bytes: u32,
    /// The Figure 6 lifetime histogram.
    pub lifetimes: LifetimeHistogram,
}

/// A recorded benchmark: the replayable log plus its characterization.
#[derive(Debug)]
pub struct RecordedRun {
    /// The verbose access log.
    pub log: AccessLog,
    /// Frontend counters from the unbounded run.
    pub frontend: FrontendStats,
    /// Derived characterization.
    pub summary: RunSummary,
}

/// Options controlling a recording.
#[derive(Debug, Clone, Copy)]
pub struct RecorderOptions {
    /// Probability per trace access that an exception fires inside the
    /// trace, pinning it (undeletable) for `pin_window` records.
    pub exception_rate: f64,
    /// How many subsequent records a pinned trace stays pinned.
    pub pin_window: u32,
}

impl Default for RecorderOptions {
    fn default() -> Self {
        RecorderOptions {
            // Exceptions are rare; a small rate still exercises the
            // pseudo-circular pointer-reset machinery thousands of times
            // on large benchmarks.
            exception_rate: 2e-4,
            pin_window: 64,
        }
    }
}

/// Records `profile` with default options.
///
/// # Errors
///
/// Returns [`PlanError`] if the workload cannot be planned.
pub fn record(profile: &WorkloadProfile) -> Result<RecordedRun, PlanError> {
    record_with(profile, RecorderOptions::default())
}

/// The run facts a streaming recording accumulates while records flow
/// through the emit callback: everything [`RunSummary`] and capacity
/// sizing need, *without* the records themselves. Memory is bounded by
/// the live trace set (sizes, lifetimes), never by stream length.
#[derive(Debug, Clone)]
pub struct RecordFacts {
    /// Aggregated frontend counters (peak trace bytes included).
    pub frontend: FrontendStats,
    /// Wall-clock span of the planned run.
    pub duration: gencache_program::Time,
    /// Total log records emitted.
    pub records: u64,
    /// Executions emitted (creations + accesses) — the materialized
    /// log's `access_count()`.
    pub accesses: u64,
    /// The Figure 6 lifetime histogram.
    pub lifetimes: LifetimeHistogram,
    /// Median created-trace size in bytes.
    pub median_trace_bytes: u32,
}

impl RecordFacts {
    /// The paper's standard bounded-cache budget for this recording:
    /// half the unbounded peak, at least one byte.
    pub fn capacity(&self) -> u64 {
        (self.frontend.peak_trace_bytes / 2).max(1)
    }

    /// Builds the same [`RunSummary`] the materialized path derives from
    /// its [`AccessLog`].
    pub fn summary(&self, profile: &WorkloadProfile) -> RunSummary {
        let stats = &self.frontend;
        let expansion_pct = if stats.footprint_bytes > 0 {
            stats.peak_cache_bytes as f64 / stats.footprint_bytes as f64 * 100.0
        } else {
            0.0
        };
        let insertion_rate_kbps =
            stats.trace_bytes_created as f64 / 1024.0 / self.duration.as_secs_f64();
        let unmapped_frac = if stats.trace_bytes_created > 0 {
            stats.trace_bytes_invalidated as f64 / stats.trace_bytes_created as f64
        } else {
            0.0
        };
        RunSummary {
            name: profile.name.clone(),
            duration_secs: profile.duration_secs,
            footprint_bytes: stats.footprint_bytes,
            max_cache_bytes: stats.peak_cache_bytes,
            peak_trace_bytes: stats.peak_trace_bytes,
            code_expansion_pct: expansion_pct,
            insertion_rate_kbps,
            unmapped_frac,
            traces_created: stats.traces_created,
            trace_accesses: stats.trace_accesses + stats.traces_created,
            median_trace_bytes: self.median_trace_bytes,
            lifetimes: self.lifetimes,
        }
    }
}

/// Runs the recording and hands every [`LogRecord`] to `emit` the moment
/// it is produced, instead of materializing a log. Recording is fully
/// deterministic, so two invocations emit byte-identical record streams
/// — which is what lets a streamed pipeline probe the run facts in one
/// pass and replay in a second without ever holding the log.
///
/// # Errors
///
/// Returns [`PlanError`] if the workload cannot be planned.
pub fn record_stream_with(
    profile: &WorkloadProfile,
    options: RecorderOptions,
    emit: &mut dyn FnMut(LogRecord),
) -> Result<RecordFacts, PlanError> {
    let plan = ExecutionPlan::from_profile(profile)?;
    // One frontend per guest thread — DynamoRIO's caches are
    // thread-private, so each thread independently discovers trace heads
    // and builds its own (possibly duplicated) traces for shared code.
    // Trace ids are namespaced per thread so the merged log stays unique.
    let threads = profile.threads.max(1);
    let mut engines: Vec<Engine> = (0..threads)
        .map(|_| Engine::new(plan.image().clone()))
        .collect();
    let remap = |thread: u32, id: TraceId| -> TraceId {
        TraceId::new((u64::from(thread) << 48) | id.as_u64())
    };
    let mut lifetimes = LifetimeTracker::new();
    let mut rng = StdRng::seed_from_u64(profile.seed ^ 0x9e37_79b9_7f4a_7c15);
    // (trace, emitted-record index at which to unpin)
    let mut pinned: Vec<(TraceId, usize)> = Vec::new();
    // Peak of summed live trace bytes across engines.
    let mut peak_trace_bytes = 0u64;
    // Streaming replacements for the materialized log's derived views:
    // a record counter standing in for `records.len()` and the created
    // sizes feeding the median (O(traces created), not O(records)).
    let mut emitted: usize = 0;
    let mut accesses: u64 = 0;
    let mut trace_sizes: Vec<u32> = Vec::new();

    for ev in plan.stream() {
        let thread = ev.thread.min(threads - 1);
        // Module unloads affect every thread's caches.
        let targets: &mut [Engine] =
            if matches!(ev.event, gencache_workloads::WorkloadEvent::Unload { .. }) {
                &mut engines[..]
            } else {
                std::slice::from_mut(&mut engines[thread as usize])
            };
        let broadcast = targets.len() > 1;
        for (offset, engine) in targets.iter_mut().enumerate() {
            // Under an unload broadcast the slice spans all engines in
            // thread order; otherwise it holds only the event's thread.
            let t = if broadcast { offset as u32 } else { thread };
            engine.on_event(ev, &mut |fe| match fe {
                FrontendEvent::TraceCreated { trace } => {
                    let id = remap(t, trace.id());
                    lifetimes.record(id, trace.created());
                    let mut rec = trace.record();
                    rec.id = id;
                    trace_sizes.push(rec.size_bytes);
                    accesses += 1;
                    emitted += 1;
                    emit(LogRecord::Create {
                        record: rec,
                        time: trace.created(),
                    });
                }
                FrontendEvent::TraceAccess { id, time } => {
                    let id = remap(t, id);
                    lifetimes.record(id, time);
                    accesses += 1;
                    emitted += 1;
                    emit(LogRecord::Access { id, time });
                    if options.exception_rate > 0.0 && rng.gen_bool(options.exception_rate) {
                        emitted += 1;
                        emit(LogRecord::Pin { id });
                        pinned.push((id, emitted + options.pin_window as usize));
                    }
                }
                FrontendEvent::TracesInvalidated { ids, time } => {
                    for id in ids {
                        emitted += 1;
                        emit(LogRecord::Invalidate {
                            id: remap(t, id),
                            time,
                        });
                    }
                }
            });
        }
        let live: u64 = engines.iter().map(|e| e.stats().live_trace_bytes).sum();
        peak_trace_bytes = peak_trace_bytes.max(live);
        // Expire pin windows.
        while let Some(&(id, deadline)) = pinned.first() {
            if emitted >= deadline {
                emitted += 1;
                emit(LogRecord::Unpin { id });
                pinned.remove(0);
            } else {
                break;
            }
        }
    }
    // Unpin anything still pinned at exit.
    for (id, _) in pinned {
        emitted += 1;
        emit(LogRecord::Unpin { id });
    }

    // Aggregate frontend stats across threads.
    let mut stats = FrontendStats::default();
    for engine in &engines {
        let s = engine.stats();
        stats.exec_events += s.exec_events;
        stats.bb_blocks += s.bb_blocks;
        stats.bb_bytes += s.bb_bytes;
        stats.traces_created += s.traces_created;
        stats.trace_bytes_created += s.trace_bytes_created;
        stats.live_trace_bytes += s.live_trace_bytes;
        stats.trace_accesses += s.trace_accesses;
        stats.traces_invalidated += s.traces_invalidated;
        stats.trace_bytes_invalidated += s.trace_bytes_invalidated;
        stats.trace_exits += s.trace_exits;
        stats.context_switches += s.context_switches;
        // The *footprint* is shared program code: take the maximum over
        // threads rather than summing duplicate executions (a lower
        // bound on the process-wide unique code; exact union tracking
        // is not worth the per-event cost, and the paper's figures all
        // use single-threaded recordings).
        stats.footprint_bytes = stats.footprint_bytes.max(s.footprint_bytes);
        stats.peak_cache_bytes += s.peak_cache_bytes;
    }
    stats.peak_trace_bytes = peak_trace_bytes;

    let duration = plan.duration();
    // Same median as `AccessLog::median_trace_bytes` on the full log.
    let median_trace_bytes = if trace_sizes.is_empty() {
        0
    } else {
        trace_sizes.sort_unstable();
        trace_sizes[trace_sizes.len() / 2]
    };

    Ok(RecordFacts {
        frontend: stats,
        duration,
        records: emitted as u64,
        accesses,
        lifetimes: lifetimes.histogram(duration),
        median_trace_bytes,
    })
}

/// Records `profile` with explicit options, materializing the full
/// [`AccessLog`]. This is a thin collector over [`record_stream_with`],
/// so the two paths cannot drift.
///
/// # Errors
///
/// Returns [`PlanError`] if the workload cannot be planned.
pub fn record_with(
    profile: &WorkloadProfile,
    options: RecorderOptions,
) -> Result<RecordedRun, PlanError> {
    let mut records: Vec<LogRecord> = Vec::new();
    let facts = record_stream_with(profile, options, &mut |record| records.push(record))?;
    let log = AccessLog {
        benchmark: profile.name.clone(),
        records,
        duration: facts.duration,
        peak_trace_bytes: facts.frontend.peak_trace_bytes,
    };
    let summary = facts.summary(profile);
    Ok(RecordedRun {
        log,
        frontend: facts.frontend,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_workloads::{Suite, WorkloadProfile};

    fn profile() -> WorkloadProfile {
        WorkloadProfile::builder("rectest", Suite::Interactive)
            .footprint_kb(48)
            .phases(4)
            .dlls(3, 0.7)
            .duration_secs(10.0)
            .build()
    }

    #[test]
    fn recording_produces_traces_and_accesses() {
        let run = record(&profile()).unwrap();
        assert!(run.summary.traces_created > 10);
        assert!(run.log.access_count() > run.summary.traces_created);
        assert!(run.summary.peak_trace_bytes > 0);
        assert!(run.summary.max_cache_bytes >= run.summary.peak_trace_bytes);
    }

    #[test]
    fn recording_is_deterministic() {
        let a = record(&profile()).unwrap();
        let b = record(&profile()).unwrap();
        assert_eq!(a.log.records.len(), b.log.records.len());
        assert_eq!(a.summary.max_cache_bytes, b.summary.max_cache_bytes);
    }

    #[test]
    fn dll_churn_shows_up_as_invalidations() {
        let run = record(&profile()).unwrap();
        assert!(
            run.summary.unmapped_frac > 0.0,
            "70% DLL unload should invalidate some traces"
        );
        assert!(run.log.invalidated_bytes() > 0);
    }

    #[test]
    fn expansion_is_substantial() {
        let run = record(&profile()).unwrap();
        // Helper inlining should expand code well past 150%.
        assert!(
            run.summary.code_expansion_pct > 150.0,
            "expansion {:.0}% too small",
            run.summary.code_expansion_pct
        );
    }

    #[test]
    fn pins_are_balanced_by_unpins() {
        let opts = RecorderOptions {
            exception_rate: 0.05,
            pin_window: 10,
        };
        let run = record_with(&profile(), opts).unwrap();
        let pins = run
            .log
            .records
            .iter()
            .filter(|r| matches!(r, LogRecord::Pin { .. }))
            .count();
        let unpins = run
            .log
            .records
            .iter()
            .filter(|r| matches!(r, LogRecord::Unpin { .. }))
            .count();
        assert!(pins > 0, "high exception rate must pin traces");
        assert_eq!(pins, unpins);
    }

    #[test]
    fn multithreaded_recording_duplicates_shared_traces() {
        // Duplication requires each thread to be individually hot on the
        // shared code: a thread only builds its own trace after crossing
        // the 50-execution threshold by itself. Give the shared regions
        // enough revisits that every thread qualifies.
        let hot = WorkloadProfile::builder("rectest-mt", Suite::Interactive)
            .footprint_kb(48)
            .phases(6)
            .dlls(3, 0.7)
            .hot_revisits(14)
            .duration_secs(10.0)
            .build();
        let single = record(&hot).unwrap();
        let mut mt = hot.clone();
        mt.threads = 4;
        let multi = record(&mt).unwrap();
        // Thread-private frontends each build their own copy of the
        // shared (persistent) hot code, so more traces and bytes exist.
        assert!(
            multi.summary.traces_created > single.summary.traces_created,
            "expected duplication: {} vs {}",
            multi.summary.traces_created,
            single.summary.traces_created
        );
        assert!(multi.frontend.trace_bytes_created > single.frontend.trace_bytes_created);
        // The shared program footprint does not multiply: the aggregate
        // is the largest per-thread footprint, a lower bound on the
        // process-wide unique code (threads split the phase-local code).
        assert!(multi.summary.footprint_bytes <= single.summary.footprint_bytes);
        // Trace ids are namespaced per thread: all unique.
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for r in &multi.log.records {
            if let LogRecord::Create { record, .. } = r {
                assert!(seen.insert(record.id), "duplicate trace id {}", record.id);
            }
        }
    }

    #[test]
    fn multithreaded_recording_is_deterministic_and_replayable() {
        let mut p = profile();
        p.threads = 3;
        let a = record(&p).unwrap();
        let b = record(&p).unwrap();
        assert_eq!(a.log.records.len(), b.log.records.len());
        assert_eq!(a.summary.peak_trace_bytes, b.summary.peak_trace_bytes);
        // The merged log replays cleanly into the standard comparison.
        let c = crate::compare_figure9(&a.log);
        assert_eq!(c.unified.metrics.accesses, a.log.access_count());
    }

    #[test]
    fn unloads_invalidate_across_threads() {
        let mut p = profile(); // dlls(3, 0.7): DLL churn present
        p.threads = 2;
        let run = record(&p).unwrap();
        assert!(
            run.summary.unmapped_frac > 0.0,
            "unload must reach the owning thread's engine"
        );
    }

    #[test]
    fn lifetimes_are_u_shaped() {
        let run = record(&profile()).unwrap();
        let h = run.summary.lifetimes;
        assert!(h.total() > 0);
        assert!(
            h.is_u_shaped(),
            "lifetime histogram should be U-shaped: {:?}",
            h.fractions()
        );
    }
}
