//! The verbose access log: the paper's evaluation methodology.
//!
//! "DynamoRIO executed our benchmarks using an unbounded code cache, and
//! we used the verbose log of cache accesses to drive our cache
//! simulator" (Section 6). [`AccessLog`] is that log: an ordered record of
//! trace creations, trace-cache accesses, unmap invalidations, and
//! undeletable-trace windows, replayable into any [`CacheModel`].
//!
//! [`CacheModel`]: gencache_core::CacheModel

use gencache_cache::{TraceId, TraceRecord};
use gencache_program::Time;
use serde::{Deserialize, Serialize};

/// One entry of the verbose log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// A trace was generated for the first time (and begins executing).
    Create {
        /// The new trace's identity, size, and head address.
        record: TraceRecord,
        /// Generation time.
        time: Time,
    },
    /// Execution entered an existing trace at its head.
    Access {
        /// The accessed trace.
        id: TraceId,
        /// Access time.
        time: Time,
    },
    /// The program unmapped memory: this trace is stale and must be
    /// deleted from any cache holding it.
    Invalidate {
        /// The stale trace.
        id: TraceId,
        /// Unmap time.
        time: Time,
    },
    /// The trace became temporarily undeletable (e.g. an exception is
    /// being handled inside it, Section 4.2).
    Pin {
        /// The pinned trace.
        id: TraceId,
    },
    /// The trace is deletable again.
    Unpin {
        /// The unpinned trace.
        id: TraceId,
    },
}

/// A complete recorded run, ready for replay.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AccessLog {
    /// Benchmark name the log was recorded from.
    pub benchmark: String,
    /// Ordered log records.
    pub records: Vec<LogRecord>,
    /// Total run duration (Equation 2's denominator).
    pub duration: Time,
    /// Peak bytes simultaneously live in the unbounded trace cache —
    /// the `maxCache` that sizes every bounded simulation.
    pub peak_trace_bytes: u64,
}

impl AccessLog {
    /// Number of trace executions (creations count as the first one).
    pub fn access_count(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| matches!(r, LogRecord::Create { .. } | LogRecord::Access { .. }))
            .count() as u64
    }

    /// Number of distinct traces created.
    pub fn trace_count(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| matches!(r, LogRecord::Create { .. }))
            .count() as u64
    }

    /// Total bytes of created traces (insertion volume; with the run
    /// duration this yields the Figure 3 insertion rate).
    pub fn created_bytes(&self) -> u64 {
        self.records
            .iter()
            .filter_map(|r| match r {
                LogRecord::Create { record, .. } => Some(u64::from(record.size_bytes)),
                _ => None,
            })
            .sum()
    }

    /// Bytes of traces deleted because of unmapped memory (Figure 4's
    /// numerator). Requires size lookup through creation records.
    pub fn invalidated_bytes(&self) -> u64 {
        let mut sizes = std::collections::HashMap::new();
        let mut total = 0u64;
        for r in &self.records {
            match r {
                LogRecord::Create { record, .. } => {
                    sizes.insert(record.id, u64::from(record.size_bytes));
                }
                LogRecord::Invalidate { id, .. } => {
                    total += sizes.get(id).copied().unwrap_or(0);
                }
                _ => {}
            }
        }
        total
    }

    /// Median created-trace size in bytes (the paper's cost-model anchor
    /// was a 242-byte median trace). Zero if no traces were created.
    pub fn median_trace_bytes(&self) -> u32 {
        let mut sizes: Vec<u32> = self
            .records
            .iter()
            .filter_map(|r| match r {
                LogRecord::Create { record, .. } => Some(record.size_bytes),
                _ => None,
            })
            .collect();
        if sizes.is_empty() {
            return 0;
        }
        sizes.sort_unstable();
        sizes[sizes.len() / 2]
    }
}

impl AccessLog {
    /// Serializes the log as JSON to `path`. Verbose logs are reused
    /// across simulations exactly as in the paper's methodology.
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let writer = std::io::BufWriter::new(file);
        serde_json::to_writer(writer, self).map_err(std::io::Error::other)
    }

    /// Loads a log previously written by [`AccessLog::save_json`].
    ///
    /// # Errors
    ///
    /// Returns any I/O or deserialization error.
    pub fn load_json(path: impl AsRef<std::path::Path>) -> std::io::Result<AccessLog> {
        let file = std::fs::File::open(path)?;
        let reader = std::io::BufReader::new(file);
        serde_json::from_reader(reader).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_program::Addr;

    fn sample() -> AccessLog {
        let rec = |id: u64, size: u32| TraceRecord::new(TraceId::new(id), size, Addr::new(id));
        AccessLog {
            benchmark: "t".into(),
            records: vec![
                LogRecord::Create {
                    record: rec(1, 100),
                    time: Time::ZERO,
                },
                LogRecord::Access {
                    id: TraceId::new(1),
                    time: Time::from_micros(1),
                },
                LogRecord::Create {
                    record: rec(2, 300),
                    time: Time::from_micros(2),
                },
                LogRecord::Pin {
                    id: TraceId::new(2),
                },
                LogRecord::Unpin {
                    id: TraceId::new(2),
                },
                LogRecord::Invalidate {
                    id: TraceId::new(1),
                    time: Time::from_micros(3),
                },
                LogRecord::Create {
                    record: rec(3, 200),
                    time: Time::from_micros(4),
                },
            ],
            duration: Time::from_micros(10),
            peak_trace_bytes: 500,
        }
    }

    #[test]
    fn counters() {
        let log = sample();
        assert_eq!(log.access_count(), 4);
        assert_eq!(log.trace_count(), 3);
        assert_eq!(log.created_bytes(), 600);
        assert_eq!(log.invalidated_bytes(), 100);
        assert_eq!(log.median_trace_bytes(), 200);
    }

    #[test]
    fn empty_log_is_safe() {
        let log = AccessLog::default();
        assert_eq!(log.access_count(), 0);
        assert_eq!(log.median_trace_bytes(), 0);
        assert_eq!(log.invalidated_bytes(), 0);
    }

    #[test]
    fn file_roundtrip() {
        let log = sample();
        let dir = std::env::temp_dir().join("gencache-log-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.json");
        log.save_json(&path).unwrap();
        let back = AccessLog::load_json(&path).unwrap();
        assert_eq!(back.records.len(), log.records.len());
        assert_eq!(back.benchmark, "t");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn serde_roundtrip() {
        let log = sample();
        let json = serde_json::to_string(&log).unwrap();
        let back: AccessLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.records.len(), log.records.len());
        assert_eq!(back.peak_trace_bytes, 500);
    }
}
