//! A bounded multi-producer single-consumer channel on pure `std`.
//!
//! The ROADMAP's production-scale north star needs two things the
//! materialized pipeline cannot give: a record path whose peak memory is
//! independent of stream length, and a service ingest path that applies
//! backpressure to fast producers instead of buffering without bound.
//! Both reduce to the same primitive — a *bounded* channel — which the
//! container's offline build cannot take from crates.io, so this module
//! provides one on `Mutex` + `Condvar` alone (the same vendored-stand-in
//! policy as `vendor/`). Unlike `std::sync::mpsc::sync_channel` it
//! exposes [`Sender::len`] for live queue-depth introspection (the serve
//! daemon's `/stats` and backpressure decisions) and a non-panicking
//! [`Sender::try_send`] suitable for a 429-style `busy` reply.
//!
//! Semantics:
//!
//! * [`bounded(depth)`](bounded) creates a channel holding at most
//!   `depth` in-flight items (`depth >= 1`).
//! * [`Sender::send`] blocks while the queue is full; it fails only when
//!   the receiver is gone (items would never be drained).
//! * [`Receiver::recv`] blocks while the queue is empty; it returns
//!   `None` once every sender is dropped *and* the queue is drained, so
//!   a consumer loop is `while let Some(x) = rx.recv()`.
//! * Senders clone for MPSC fan-in; the receiver is unique.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Why a [`Sender::send`] failed: the receiver was dropped, so the item
/// could never be consumed. Carries the item back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiver dropped; channel closed")
    }
}

/// Why a [`Sender::try_send`] failed.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity right now; the caller should shed load
    /// (e.g. reply `busy`) instead of blocking.
    Full(T),
    /// The receiver was dropped; no send can ever succeed again.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "channel full"),
            TrySendError::Disconnected(_) => write!(f, "receiver dropped; channel closed"),
        }
    }
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    depth: usize,
    state: Mutex<State<T>>,
    /// Signalled when an item is pushed or the last sender leaves.
    not_empty: Condvar,
    /// Signalled when an item is popped or the receiver leaves.
    not_full: Condvar,
}

/// The producing half of a bounded channel; clone freely for MPSC.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half of a bounded channel; unique.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel holding at most `depth` items (clamped to
/// at least 1).
pub fn bounded<T>(depth: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        depth: depth.max(1),
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until the queue has room, then enqueues `item`.
    ///
    /// # Errors
    ///
    /// Returns the item back if the receiver was dropped.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().expect("channel lock never poisoned");
        loop {
            if !state.receiver_alive {
                return Err(SendError(item));
            }
            if state.queue.len() < self.shared.depth {
                state.queue.push_back(item);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .expect("channel lock never poisoned");
        }
    }

    /// Enqueues `item` if there is room right now, without blocking.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] when the queue is at capacity (shed load),
    /// [`TrySendError::Disconnected`] when the receiver is gone.
    pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().expect("channel lock never poisoned");
        if !state.receiver_alive {
            return Err(TrySendError::Disconnected(item));
        }
        if state.queue.len() >= self.shared.depth {
            return Err(TrySendError::Full(item));
        }
        state.queue.push_back(item);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Items currently queued (a live snapshot; another thread may change
    /// it immediately). Powers queue-depth stats and backpressure
    /// decisions.
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("channel lock never poisoned")
            .queue
            .len()
    }

    /// Whether the queue is empty right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's capacity.
    pub fn depth(&self) -> usize {
        self.shared.depth
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .expect("channel lock never poisoned")
            .senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel lock never poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            // Wake a receiver blocked in recv so it can observe the close.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender")
            .field("depth", &self.shared.depth)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

impl<T> Receiver<T> {
    /// Blocks until an item arrives, returning `None` once every sender
    /// is dropped and the queue is drained.
    pub fn recv(&mut self) -> Option<T> {
        let mut state = self.shared.state.lock().expect("channel lock never poisoned");
        loop {
            if let Some(item) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if state.senders == 0 {
                return None;
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .expect("channel lock never poisoned");
        }
    }

    /// Pops an item if one is queued right now, without blocking.
    pub fn try_recv(&mut self) -> Option<T> {
        let mut state = self.shared.state.lock().expect("channel lock never poisoned");
        let item = state.queue.pop_front();
        if item.is_some() {
            self.shared.not_full.notify_one();
        }
        item
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("channel lock never poisoned")
            .queue
            .len()
    }

    /// Whether the queue is empty right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel lock never poisoned");
        state.receiver_alive = false;
        state.queue.clear();
        // Wake every sender blocked in send so they can fail fast.
        self.shared.not_full.notify_all();
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver")
            .field("depth", &self.shared.depth)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

/// An iterator draining the channel until every sender is gone.
impl<T> Iterator for Receiver<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn items_arrive_in_order() {
        let (tx, mut rx) = bounded(4);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100u64 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..100u64 {
                assert_eq!(rx.recv(), Some(i));
            }
            assert_eq!(rx.recv(), None, "sender dropped, queue drained");
        });
    }

    #[test]
    fn bounded_depth_applies_backpressure() {
        let (tx, mut rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.try_recv(), Some(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.by_ref().take(2).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn queue_never_exceeds_depth_under_load() {
        let depth = 3;
        let (tx, rx) = bounded(depth);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let tx2 = tx.clone();
            drop(tx);
            s.spawn(move || {
                for i in 0..500u64 {
                    tx2.send(i).unwrap();
                }
            });
            let mut rx = rx;
            let mut seen = 0u64;
            while let Some(_item) = rx.recv() {
                peak.fetch_max(rx.len() + 1, Ordering::Relaxed);
                seen += 1;
                if seen.is_multiple_of(7) {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
            assert_eq!(seen, 500);
        });
        assert!(
            peak.load(Ordering::Relaxed) <= depth + 1,
            "queue grew past its bound: {}",
            peak.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn mpsc_fan_in_delivers_everything() {
        let (tx, rx) = bounded(8);
        let total: u64 = std::thread::scope(|s| {
            for t in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..50u64 {
                        tx.send(t * 1000 + i).unwrap();
                    }
                });
            }
            drop(tx);
            rx.map(|_| 1u64).sum()
        });
        assert_eq!(total, 200);
    }

    #[test]
    fn dropped_receiver_fails_senders() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
        assert!(matches!(tx.try_send(9), Err(TrySendError::Disconnected(9))));
    }

    #[test]
    fn blocked_sender_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        std::thread::scope(|s| {
            let handle = s.spawn(|| tx.send(2));
            std::thread::sleep(Duration::from_millis(20));
            drop(rx);
            assert!(handle.join().unwrap().is_err());
        });
    }
}
