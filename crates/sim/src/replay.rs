//! Replaying a recorded log into bounded cache models, and the standard
//! unified-vs-generational comparison of Section 6.

use std::collections::HashMap;

use gencache_cache::{TraceId, TraceRecord};
use gencache_program::Time;
use gencache_core::{
    overhead_ratio, CacheModel, CostLedger, GenerationalConfig, GenerationalModel, ModelMetrics,
    UnifiedModel,
};
use serde::{Deserialize, Serialize};

use crate::log::{AccessLog, LogRecord};
use crate::progress::{ProgressMeter, PROGRESS_BATCH};

/// Per-stream replay state: the trace catalog (sizes and head addresses
/// resolved from creation records) and the standing clock for untimed
/// pin records.
///
/// One cursor [`step`](ReplayCursor::step)s through a record stream
/// exactly once, and the resolved [`ReplayStep`] can then
/// [`drive`](ReplayStep::drive) *any number of models* — this is what
/// lets the streamed record path feed one bounded-channel pass into the
/// whole Figure 9 model set without materializing the log, while
/// [`replay_into`] stays a thin loop over the same logic.
#[derive(Debug, Default)]
pub struct ReplayCursor {
    catalog: HashMap<TraceId, TraceRecord>,
    // Pin records carry no timestamp; the clock of the most recent timed
    // record stands in for them.
    now: Time,
}

/// One log record resolved against the [`ReplayCursor`] catalog and
/// clock, ready to drive a model.
#[derive(Debug, Clone, Copy)]
pub enum ReplayStep {
    /// Present the trace for execution (creations and accesses alike: a
    /// trace is executed as soon as it is generated).
    Access(TraceRecord, Time),
    /// Force deletion of an unmapped trace.
    Unmap(TraceId, Time),
    /// Toggle the trace's undeletable window.
    Pin(TraceId, bool, Time),
}

impl ReplayCursor {
    /// A fresh cursor at time zero with an empty catalog.
    pub fn new() -> Self {
        ReplayCursor::default()
    }

    /// Resolves the next `record` of the stream into a driveable step,
    /// updating the catalog and the standing clock.
    pub fn step(&mut self, record: &LogRecord) -> ReplayStep {
        match *record {
            LogRecord::Create { record, time } => {
                self.catalog.insert(record.id, record);
                self.now = time;
                ReplayStep::Access(record, time)
            }
            LogRecord::Access { id, time } => {
                let rec = self
                    .catalog
                    .get(&id)
                    .expect("access to a trace never created; corrupt log");
                self.now = time;
                ReplayStep::Access(*rec, time)
            }
            LogRecord::Invalidate { id, time } => {
                self.now = time;
                ReplayStep::Unmap(id, time)
            }
            LogRecord::Pin { id } => ReplayStep::Pin(id, true, self.now),
            LogRecord::Unpin { id } => ReplayStep::Pin(id, false, self.now),
        }
    }
}

impl ReplayStep {
    /// Applies this step to one model. A step may drive any number of
    /// models; they all observe the identical frontend request.
    pub fn drive(&self, model: &mut dyn CacheModel) {
        match *self {
            ReplayStep::Access(record, time) => {
                model.on_access(record, time);
            }
            ReplayStep::Unmap(id, time) => {
                model.on_unmap(id, time);
            }
            ReplayStep::Pin(id, pinned, now) => {
                model.on_pin(id, pinned, now);
            }
        }
    }
}

/// Replays `log` into `model`, returning nothing; inspect the model's
/// metrics and ledger afterwards.
///
/// Creations and accesses both present the trace for execution (a trace
/// is executed as soon as it is generated); invalidations force deletion;
/// pin/unpin windows mark traces undeletable.
pub fn replay_into(log: &AccessLog, model: &mut dyn CacheModel) {
    let mut cursor = ReplayCursor::new();
    for record in &log.records {
        cursor.step(record).drive(model);
    }
}

/// [`replay_into`] with a shared [`ProgressMeter`] heartbeat.
///
/// Progress is flushed into the meter every [`PROGRESS_BATCH`] records
/// (and once at the end), so the shared-atomic traffic stays negligible
/// even with many workers replaying concurrently.
pub fn replay_into_metered(log: &AccessLog, model: &mut dyn CacheModel, meter: &ProgressMeter) {
    let mut cursor = ReplayCursor::new();
    let mut pending = 0u64;
    for record in &log.records {
        cursor.step(record).drive(model);
        pending += 1;
        if pending == PROGRESS_BATCH {
            meter.add(pending);
            pending = 0;
        }
    }
    if pending > 0 {
        meter.add(pending);
    }
}

/// The result of replaying one log into one model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayResult {
    /// Model description.
    pub model: String,
    /// Hit/miss counters.
    pub metrics: ModelMetrics,
    /// Management-instruction costs.
    pub ledger: CostLedger,
}

impl ReplayResult {
    /// Miss rate of this replay.
    pub fn miss_rate(&self) -> f64 {
        self.metrics.miss_rate()
    }
}

/// The Section 6 comparison: a unified pseudo-circular cache sized at
/// `0.5 × maxCache` versus generational layouts of identical total size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Comparison {
    /// Benchmark name.
    pub benchmark: String,
    /// Total cache budget in bytes (`0.5 × maxCache`).
    pub capacity: u64,
    /// The unified baseline result.
    pub unified: ReplayResult,
    /// One result per generational configuration, in input order.
    pub generational: Vec<ReplayResult>,
}

impl Comparison {
    /// Miss-rate reduction of generational configuration `i` relative to
    /// the unified baseline (Figure 9): positive is better.
    pub fn miss_rate_reduction(&self, i: usize) -> f64 {
        let u = self.unified.miss_rate();
        if u == 0.0 {
            0.0
        } else {
            (u - self.generational[i].miss_rate()) / u
        }
    }

    /// Absolute misses eliminated by configuration `i` (Figure 10); may
    /// be negative if the generational scheme missed more.
    pub fn misses_eliminated(&self, i: usize) -> i64 {
        self.unified.metrics.misses as i64 - self.generational[i].metrics.misses as i64
    }

    /// Equation 3 overhead ratio for configuration `i` (Figure 11);
    /// below 1.0 means the generational scheme is cheaper.
    pub fn overhead_ratio(&self, i: usize) -> f64 {
        overhead_ratio(&self.generational[i].ledger, &self.unified.ledger)
    }
}

/// Replays `log` against the unified baseline and each generational
/// configuration, all sharing the same total capacity.
///
/// Capacity follows the paper: half the cache size the benchmark needed
/// to avoid management entirely.
pub fn compare(log: &AccessLog, configs: &[GenerationalConfig]) -> Comparison {
    let meter = ProgressMeter::disabled("replay", 0);
    compare_metered(log, configs, &meter)
}

/// [`compare`] with a shared [`ProgressMeter`]: each of the
/// `1 + configs.len()` model replays reports per-record progress, so a
/// suite driver can show a live heartbeat across its whole fan-out.
pub fn compare_metered(
    log: &AccessLog,
    configs: &[GenerationalConfig],
    meter: &ProgressMeter,
) -> Comparison {
    let capacity = (log.peak_trace_bytes / 2).max(1);

    let mut unified = UnifiedModel::new(capacity);
    replay_into_metered(log, &mut unified, meter);
    let unified_result = ReplayResult {
        model: unified.name(),
        metrics: *unified.metrics(),
        ledger: *unified.ledger(),
    };

    let mut generational = Vec::with_capacity(configs.len());
    for config in configs {
        debug_assert_eq!(
            config.total_bytes(),
            capacity,
            "configs must share the budget"
        );
        let mut model = GenerationalModel::new(*config);
        replay_into_metered(log, &mut model, meter);
        generational.push(ReplayResult {
            model: model.name(),
            metrics: *model.metrics(),
            ledger: *model.ledger(),
        });
    }

    Comparison {
        benchmark: log.benchmark.clone(),
        capacity,
        unified: unified_result,
        generational,
    }
}

/// Convenience: the three Figure 9 configurations over the log's standard
/// capacity.
pub fn compare_figure9(log: &AccessLog) -> Comparison {
    let meter = ProgressMeter::disabled("replay", 0);
    compare_figure9_metered(log, &meter)
}

/// [`compare_figure9`] with a shared [`ProgressMeter`] heartbeat.
pub fn compare_figure9_metered(log: &AccessLog, meter: &ProgressMeter) -> Comparison {
    let capacity = (log.peak_trace_bytes / 2).max(1);
    compare_metered(log, &GenerationalConfig::figure9_configs(capacity), meter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_program::{Addr, Time};

    /// A synthetic log with heavy churn over long-lived traces: the
    /// textbook case where generational management wins.
    fn u_shaped_log() -> AccessLog {
        let mut records = Vec::new();
        let rec =
            |id: u64, size: u32| TraceRecord::new(TraceId::new(id), size, Addr::new(0x1000 + id));
        let mut t = 0u64;
        let mut now = move || {
            t += 1;
            Time::from_micros(t)
        };

        // 60 long-lived traces created up front (roughly the long-lived
        // share Figure 6 reports).
        for id in 0..60 {
            records.push(LogRecord::Create {
                record: rec(id, 200),
                time: now(),
            });
        }
        // 10 phases of 4 rounds each: every round creates a handful of
        // short-lived traces (one access each) and then re-executes the
        // long-lived set — interleaved, the way an event loop's dispatch
        // code keeps re-running between bursts of fresh code. The
        // interleaving matters: a long-lived trace evicted into the small
        // probation cache must be re-executed before short-trace churn
        // pushes it out again.
        let mut next_short = 1000u64;
        for _phase in 0..10u64 {
            for _round in 0..4 {
                for _ in 0..8 {
                    let id = next_short;
                    next_short += 1;
                    records.push(LogRecord::Create {
                        record: rec(id, 200),
                        time: now(),
                    });
                    records.push(LogRecord::Access {
                        id: TraceId::new(id),
                        time: now(),
                    });
                }
                for id in 0..60 {
                    records.push(LogRecord::Access {
                        id: TraceId::new(id),
                        time: now(),
                    });
                }
            }
        }

        let peak = (60 + 320) * 200; // all traces live at once (unbounded)
        AccessLog {
            benchmark: "synthetic-u".into(),
            records,
            duration: Time::from_secs_f64(1.0),
            peak_trace_bytes: peak,
        }
    }

    #[test]
    fn generational_beats_unified_on_u_shaped_churn() {
        let log = u_shaped_log();
        let comparison = compare_figure9(&log);
        let best = comparison.miss_rate_reduction(1); // 45-10-45 on-hit(1)
        assert!(
            best > 0.05,
            "expected a clear miss-rate win, got {best:.3} \
             (unified {:.3} vs gen {:.3})",
            comparison.unified.miss_rate(),
            comparison.generational[1].miss_rate()
        );
        assert!(comparison.misses_eliminated(1) > 0);
        assert!(comparison.overhead_ratio(1) < 1.0);
    }

    #[test]
    fn replay_is_deterministic() {
        let log = u_shaped_log();
        let a = compare_figure9(&log);
        let b = compare_figure9(&log);
        assert_eq!(a.unified.metrics, b.unified.metrics);
        assert_eq!(a.generational[0].metrics, b.generational[0].metrics);
    }

    #[test]
    fn all_models_see_identical_access_streams() {
        let log = u_shaped_log();
        let c = compare_figure9(&log);
        assert_eq!(c.unified.metrics.accesses, log.access_count());
        for g in &c.generational {
            assert_eq!(g.metrics.accesses, log.access_count());
        }
    }

    #[test]
    fn invalidations_apply_to_all_models() {
        let mut log = u_shaped_log();
        // Invalidate the long-lived traces midway.
        log.records.push(LogRecord::Invalidate {
            id: TraceId::new(0),
            time: Time::from_secs_f64(0.9),
        });
        let c = compare_figure9(&log);
        assert!(c.unified.metrics.unmap_deletions <= 1);
        for g in &c.generational {
            assert!(g.metrics.unmap_deletions <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "never created")]
    fn corrupt_log_panics() {
        let log = AccessLog {
            benchmark: "bad".into(),
            records: vec![LogRecord::Access {
                id: TraceId::new(9),
                time: Time::ZERO,
            }],
            duration: Time::from_secs_f64(1.0),
            peak_trace_bytes: 100,
        };
        let mut model = UnifiedModel::new(50);
        replay_into(&log, &mut model);
    }
}
