//! Offline what-if simulation: driving hypothetical cache
//! configurations from a frontend trace recovered out of an exported
//! event stream.
//!
//! The paper's methodology records the frontend once and replays it
//! into every layout under study; the event export preserves that
//! frontend stream (including [`Noop`](gencache_obs::CacheEvent::Noop)
//! records for requests the recorded layout could not honor), so the
//! `simulate` tool can answer "what would the miss rate and Table 2
//! Minstr have been under layout X?" without re-recording. This module
//! is the engine behind it: [`trace_to_log`] rebuilds a replayable
//! [`AccessLog`] from a recovered [`SimTrace`], [`SimSpec`] names any
//! configuration — unified, generational with arbitrary proportions and
//! promotion rule, or one of the local replacement policies — and
//! [`simulate_grid`] fans a spec grid across worker threads producing
//! the same report documents the live export path emits.

use gencache_cache::{
    ClockCache, CodeCache, FlushCache, LruCache, PhaseDetector, PreemptiveFlushCache,
    PseudoCircularCache, TraceRecord, UnboundedCache,
};
use gencache_core::{
    AdaptiveModel, CacheModel, Candidate, CandidateSet, GenerationalConfig, GenerationalModel,
    PromotionPolicy, Proportions, SwitchReport, UnifiedModel,
};
use gencache_obs::{
    CostObserver, CostReport, MetricsObserver, MetricsReport, NextUseIndex, Observer,
    RegretObserver, RegretReport, SimTrace, TraceOp, WindowObserver, WindowReport, TOP_REGRET,
};
use gencache_program::{Addr, Time};

use crate::log::{AccessLog, LogRecord};
use crate::replay::{replay_into, ReplayResult};
use crate::telemetry::ModelSpec;

/// Rebuilds a replayable [`AccessLog`] from a recovered frontend trace.
///
/// Code addresses are not recoverable from an event stream — and never
/// influence cache management — so each trace gets a deterministic
/// synthesized head address. Everything the replay machinery consumes
/// (ids, sizes, timestamps, op order) round-trips exactly.
pub fn trace_to_log(
    trace: &SimTrace,
    benchmark: impl Into<String>,
    duration_us: u64,
    peak_trace_bytes: u64,
) -> AccessLog {
    let records = trace
        .ops
        .iter()
        .map(|op| match *op {
            TraceOp::Create { id, bytes, time } => LogRecord::Create {
                record: TraceRecord::new(id, bytes, Addr::new(id.as_u64())),
                time,
            },
            TraceOp::Access { id, time } => LogRecord::Access { id, time },
            TraceOp::Invalidate { id, time } => LogRecord::Invalidate { id, time },
            TraceOp::Pin { id } => LogRecord::Pin { id },
            TraceOp::Unpin { id } => LogRecord::Unpin { id },
        })
        .collect();
    AccessLog {
        benchmark: benchmark.into(),
        records,
        duration: Time::from_micros(duration_us),
        peak_trace_bytes,
    }
}

/// A local replacement policy evaluated inside the unified-model cost
/// accounting (the Section 4 ablation set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalPolicy {
    /// FIFO around a circular buffer (the paper's default).
    PseudoCircular,
    /// Least-recently-used.
    Lru,
    /// CLOCK second-chance.
    Clock,
    /// Flush everything when full.
    FlushOnFull,
    /// Flush on detected phase change.
    PreemptiveFlush,
    /// No bound at all (never misses after creation).
    Unbounded,
}

impl LocalPolicy {
    /// All six policies, in display order.
    pub const ALL: [LocalPolicy; 6] = [
        LocalPolicy::PseudoCircular,
        LocalPolicy::Lru,
        LocalPolicy::Clock,
        LocalPolicy::FlushOnFull,
        LocalPolicy::PreemptiveFlush,
        LocalPolicy::Unbounded,
    ];

    /// The policy's spec-label name.
    pub fn name(self) -> &'static str {
        match self {
            LocalPolicy::PseudoCircular => "pseudo-circular",
            LocalPolicy::Lru => "lru",
            LocalPolicy::Clock => "clock",
            LocalPolicy::FlushOnFull => "flush-on-full",
            LocalPolicy::PreemptiveFlush => "preemptive-flush",
            LocalPolicy::Unbounded => "unbounded",
        }
    }

    /// Builds the policy's cache at `capacity` bytes (ignored by
    /// [`LocalPolicy::Unbounded`]).
    pub fn build(self, capacity: u64) -> Box<dyn CodeCache> {
        match self {
            LocalPolicy::PseudoCircular => Box::new(PseudoCircularCache::new(capacity)),
            LocalPolicy::Lru => Box::new(LruCache::new(capacity)),
            LocalPolicy::Clock => Box::new(ClockCache::new(capacity)),
            LocalPolicy::FlushOnFull => Box::new(FlushCache::new(capacity)),
            LocalPolicy::PreemptiveFlush => Box::new(PreemptiveFlushCache::new(
                capacity,
                PhaseDetector::default(),
            )),
            LocalPolicy::Unbounded => Box::new(UnboundedCache::new()),
        }
    }
}

/// One hypothetical configuration the simulator can drive.
// The Adaptive variant inlines its fixed-size candidate roster because
// SimSpec must stay Copy for the par_map fan-out; boxing would lose that.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimSpec {
    /// A configuration the live export path also knows: the unified
    /// baseline or a generational hierarchy.
    Model(ModelSpec),
    /// A local replacement policy in unified cost accounting.
    Local(LocalPolicy),
    /// The adaptive policy engine auditioning a candidate set of
    /// generational configurations online.
    Adaptive(CandidateSet),
}

impl SimSpec {
    /// The canonical label for this spec — the same strings the live
    /// `--events-out` / `--metrics-out` exports use for their model
    /// sections, so simulated and recorded documents line up.
    pub fn label(&self) -> String {
        match *self {
            SimSpec::Model(ModelSpec::Unified) => "unified".to_string(),
            SimSpec::Model(ModelSpec::Generational {
                proportions,
                policy,
            }) => format!("gen-{proportions}@{}", policy_label(policy)),
            SimSpec::Local(policy) => policy.name().to_string(),
            SimSpec::Adaptive(set) => set.label(),
        }
    }
}

fn policy_label(policy: PromotionPolicy) -> String {
    match policy {
        PromotionPolicy::OnHit { hits } => format!("hit{hits}"),
        PromotionPolicy::OnEviction { threshold } => format!("evict{threshold}"),
    }
}

/// Parses a spec label back into a [`SimSpec`].
///
/// Accepted forms:
///
/// * `unified` — the pseudo-circular unified baseline;
/// * a local policy name (`lru`, `clock`, `flush-on-full`,
///   `preemptive-flush`, `pseudo-circular`, `unbounded`);
/// * `N-P-S@POLICY` (optionally prefixed `gen-`) — a generational
///   hierarchy splitting the budget N%/P%/S% (normalized, so `33-33-33`
///   means exact thirds) with promotion rule `hitK` or `evictK`, e.g.
///   `45-10-45@hit1` or `gen-30-20-50@evict5`;
/// * `adaptive` — the adaptive policy engine over its default §6
///   candidate roster;
/// * `adaptive:BODY+BODY+…` — the adaptive engine over an explicit
///   candidate list, each `BODY` an `N-P-S@POLICY` form as above (up to
///   [`gencache_core::MAX_CANDIDATES`]), index 0 initial, e.g.
///   `adaptive:45-10-45@hit1+25-50-25@evict5`.
pub fn parse_spec(label: &str) -> Result<SimSpec, String> {
    if label == "unified" {
        return Ok(SimSpec::Model(ModelSpec::Unified));
    }
    if let Some(policy) = LocalPolicy::ALL.iter().find(|p| p.name() == label) {
        return Ok(SimSpec::Local(*policy));
    }
    if label == "adaptive" {
        return Ok(SimSpec::Adaptive(CandidateSet::default_set()));
    }
    if let Some(list) = label.strip_prefix("adaptive:") {
        let candidates: Vec<Candidate> = list
            .split('+')
            .map(|body| {
                let (proportions, policy) = parse_gen_body(label, body)?;
                Ok(Candidate::new(proportions, policy))
            })
            .collect::<Result<_, String>>()?;
        return CandidateSet::new(&candidates).map(SimSpec::Adaptive);
    }
    let body = label.strip_prefix("gen-").unwrap_or(label);
    let (proportions, policy) = parse_gen_body(label, body)?;
    Ok(SimSpec::Model(ModelSpec::Generational {
        proportions,
        policy,
    }))
}

/// Parses one `N-P-S@POLICY` body (shared by the `gen-` and
/// `adaptive:` grammars); `label` is only for error messages.
fn parse_gen_body(label: &str, body: &str) -> Result<(Proportions, PromotionPolicy), String> {
    let (props, policy) = body
        .split_once('@')
        .ok_or_else(|| format!("spec {label:?} is not unified, a local policy, or N-P-S@POLICY"))?;
    let parts: Vec<f64> = props
        .split('-')
        .map(|s| {
            s.parse::<f64>()
                .map_err(|_| format!("bad proportion {s:?} in spec {label:?}"))
        })
        .collect::<Result<_, _>>()?;
    let [nursery, probation, persistent] = parts[..] else {
        return Err(format!(
            "spec {label:?} needs exactly three proportions, got {}",
            parts.len()
        ));
    };
    if nursery < 0.0 || probation < 0.0 || persistent < 0.0 {
        return Err(format!("negative proportion in spec {label:?}"));
    }
    let sum = nursery + probation + persistent;
    if sum <= 0.0 {
        return Err(format!("zero-sum proportions in spec {label:?}"));
    }
    let proportions = Proportions::new(nursery / sum, probation / sum, persistent / sum);
    let policy = if let Some(hits) = policy.strip_prefix("hit") {
        PromotionPolicy::OnHit {
            hits: hits
                .parse()
                .map_err(|_| format!("bad hit count in spec {label:?}"))?,
        }
    } else if let Some(threshold) = policy.strip_prefix("evict") {
        PromotionPolicy::OnEviction {
            threshold: threshold
                .parse()
                .map_err(|_| format!("bad eviction threshold in spec {label:?}"))?,
        }
    } else {
        return Err(format!(
            "unknown promotion rule {policy:?} in spec {label:?}; use hitK or evictK"
        ));
    };
    Ok((proportions, policy))
}

/// Replays `log` into the configuration named by `spec` over an
/// explicit `capacity` budget, with `observer` attached.
///
/// With `capacity == (log.peak_trace_bytes / 2).max(1)` — the paper's
/// standard rule — this is behaviorally identical to the live export
/// path's replay, which is what makes simulated reports comparable
/// byte-for-byte.
pub fn replay_sim_observed<O: Observer>(
    log: &AccessLog,
    spec: SimSpec,
    capacity: u64,
    observer: O,
) -> (ReplayResult, O) {
    match spec {
        SimSpec::Model(ModelSpec::Unified) => {
            let mut model = UnifiedModel::observed(capacity, observer);
            replay_into(log, &mut model);
            let result = ReplayResult {
                model: model.name(),
                metrics: *model.metrics(),
                ledger: *model.ledger(),
            };
            (result, model.into_observer())
        }
        SimSpec::Model(ModelSpec::Generational {
            proportions,
            policy,
        }) => {
            let config = GenerationalConfig::new(capacity, proportions, policy);
            let mut model = GenerationalModel::observed(config, observer);
            replay_into(log, &mut model);
            let result = ReplayResult {
                model: model.name(),
                metrics: *model.metrics(),
                ledger: *model.ledger(),
            };
            (result, model.into_observer())
        }
        SimSpec::Local(policy) => {
            let mut model =
                UnifiedModel::with_cache_observed(policy.name(), policy.build(capacity), observer);
            replay_into(log, &mut model);
            let result = ReplayResult {
                model: model.name(),
                metrics: *model.metrics(),
                ledger: *model.ledger(),
            };
            (result, model.into_observer())
        }
        SimSpec::Adaptive(set) => {
            let mut model = AdaptiveModel::observed(set, capacity, observer);
            replay_into(log, &mut model);
            let result = ReplayResult {
                model: model.name(),
                metrics: *model.metrics(),
                ledger: *model.ledger(),
            };
            (result, model.into_observer())
        }
    }
}

/// Replays an adaptive spec and returns the controller's account of the
/// run — epochs, drift detections, probe auditions and committed
/// switches. Returns `None` for non-adaptive specs, which have no
/// controller to narrate.
pub fn simulate_switches(log: &AccessLog, spec: SimSpec, capacity: u64) -> Option<SwitchReport> {
    let SimSpec::Adaptive(set) = spec else {
        return None;
    };
    let mut model = AdaptiveModel::new(set, capacity);
    replay_into(log, &mut model);
    Some(model.switch_report())
}

/// [`replay_sim_observed`] through a [`MetricsObserver`]; `sample_every`
/// as in [`collect_metrics`](crate::collect_metrics).
pub fn simulate_metrics(
    log: &AccessLog,
    spec: SimSpec,
    capacity: u64,
    sample_every: u64,
) -> (ReplayResult, MetricsReport) {
    let (result, observer) =
        replay_sim_observed(log, spec, capacity, MetricsObserver::with_timeline(sample_every));
    (result, observer.report())
}

/// [`replay_sim_observed`] through a [`CostObserver`] with
/// phase-bucketed Table 2 attribution.
pub fn simulate_costs(
    log: &AccessLog,
    spec: SimSpec,
    capacity: u64,
    phases: u32,
) -> (ReplayResult, CostReport) {
    let observer = CostObserver::with_phases(phases, log.duration.as_micros());
    let (result, observer) = replay_sim_observed(log, spec, capacity, observer);
    (result, observer.into_report())
}

/// [`replay_sim_observed`] through a [`RegretObserver`]: every eviction
/// the configuration makes is scored against the Belady alternative the
/// `index` (built over the same frontend trace the log came from)
/// identifies, with the same phase bucketing as [`simulate_costs`].
pub fn simulate_regret(
    log: &AccessLog,
    spec: SimSpec,
    capacity: u64,
    phases: u32,
    index: &NextUseIndex,
) -> (ReplayResult, RegretReport) {
    simulate_regret_top(log, spec, capacity, phases, index, TOP_REGRET)
}

/// [`simulate_regret`] with an explicit contributor cap: the report
/// keeps the `top` highest-regret traces instead of the default
/// [`TOP_REGRET`].
pub fn simulate_regret_top(
    log: &AccessLog,
    spec: SimSpec,
    capacity: u64,
    phases: u32,
    index: &NextUseIndex,
    top: usize,
) -> (ReplayResult, RegretReport) {
    let observer = RegretObserver::with_top(index, phases, log.duration.as_micros(), top);
    let (result, observer) = replay_sim_observed(log, spec, capacity, observer);
    (result, observer.report())
}

/// [`replay_sim_observed`] through a [`WindowObserver`]: the event
/// stream folded into fixed access-count windows with drift
/// annotations. `window_accesses` is the window width; using the same
/// ~64-sample interval rule as the timeline keeps the series
/// deterministic and reproducible offline.
pub fn simulate_windows(
    log: &AccessLog,
    spec: SimSpec,
    capacity: u64,
    window_accesses: u64,
) -> (ReplayResult, WindowReport) {
    let (result, observer) =
        replay_sim_observed(log, spec, capacity, WindowObserver::new(window_accesses));
    (result, observer.report())
}

/// One simulated configuration's full outcome.
#[derive(Debug, Clone)]
pub struct SimulatedSpec {
    /// Canonical spec label (see [`SimSpec::label`]).
    pub label: String,
    /// Replay counters and management-cost ledger.
    pub result: ReplayResult,
    /// The aggregated metrics report, identical in shape to the live
    /// `--metrics-out` sections.
    pub metrics: MetricsReport,
    /// The Table 2 cost attribution.
    pub costs: CostReport,
    /// Decision-level Belady-regret attribution; present only when the
    /// run asked for the oracle (`--oracle`), absent otherwise so
    /// oracle-free documents keep their exact bytes.
    pub regret: Option<RegretReport>,
    /// Windowed time-series telemetry with drift annotations; present
    /// only when the run asked for it (`--windows`), absent otherwise
    /// so window-free documents keep their exact bytes.
    pub windows: Option<WindowReport>,
    /// The adaptive controller's switch narrative; present only for
    /// [`SimSpec::Adaptive`] specs, absent for every static spec so
    /// static documents keep their exact bytes.
    pub switches: Option<SwitchReport>,
}

/// Replay-wide knobs for [`simulate_grid`], shared by every cell.
#[derive(Debug, Clone, Copy)]
pub struct GridOptions<'a> {
    /// Phase count for cost and regret attribution.
    pub phases: u32,
    /// Occupancy sampling stride; also the window width when `windows`
    /// is set.
    pub sample_every: u64,
    /// Worker fan-out; results reassemble in grid order regardless.
    pub jobs: usize,
    /// Additionally score each spec's evictions for Belady regret
    /// against this next-use index.
    pub regret_index: Option<&'a NextUseIndex>,
    /// Attach a windowed time-series report to each spec.
    pub windows: bool,
    /// Explicit window width in accesses; `None` falls back to
    /// `sample_every` (the historical accesses/64 rule).
    pub window_width: Option<u64>,
    /// Regret-contributor cap; `None` keeps the default
    /// [`TOP_REGRET`].
    pub regret_top: Option<usize>,
}

/// Replays `log` against every spec in the grid, fanning the grid
/// across up to `options.jobs` workers. Results are reassembled in
/// grid order, so the output is bit-identical for every `jobs` value.
/// When [`GridOptions::regret_index`] is supplied, each spec's
/// evictions are additionally scored for Belady regret against it;
/// when [`GridOptions::windows`] is set, each spec also gets a
/// windowed time-series report (window width = `sample_every`).
pub fn simulate_grid(
    log: &AccessLog,
    specs: &[SimSpec],
    capacity: u64,
    options: GridOptions<'_>,
) -> Vec<SimulatedSpec> {
    crate::par::par_map(specs, options.jobs, |&spec| {
        let (result, metrics) = simulate_metrics(log, spec, capacity, options.sample_every);
        let (_, costs) = simulate_costs(log, spec, capacity, options.phases);
        let top = options.regret_top.unwrap_or(TOP_REGRET);
        let regret = options
            .regret_index
            .map(|index| simulate_regret_top(log, spec, capacity, options.phases, index, top).1);
        let width = options.window_width.unwrap_or(options.sample_every).max(1);
        let windows = options
            .windows
            .then(|| simulate_windows(log, spec, capacity, width).1);
        let switches = simulate_switches(log, spec, capacity);
        SimulatedSpec {
            label: spec.label(),
            result,
            metrics,
            costs,
            regret,
            windows,
            switches,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_cache::TraceId;

    #[test]
    fn spec_labels_roundtrip() {
        let specs = [
            SimSpec::Model(ModelSpec::Unified),
            SimSpec::Model(ModelSpec::best_generational()),
            SimSpec::Model(ModelSpec::Generational {
                proportions: Proportions::new(0.30, 0.20, 0.50),
                policy: PromotionPolicy::OnEviction { threshold: 5 },
            }),
            SimSpec::Local(LocalPolicy::Lru),
            SimSpec::Local(LocalPolicy::PreemptiveFlush),
            SimSpec::Adaptive(CandidateSet::default_set()),
            SimSpec::Adaptive(
                CandidateSet::new(&[
                    Candidate::new(
                        Proportions::best_overall(),
                        PromotionPolicy::OnHit { hits: 1 },
                    ),
                    Candidate::new(
                        Proportions::probation_heavy(),
                        PromotionPolicy::OnEviction { threshold: 5 },
                    ),
                ])
                .unwrap(),
            ),
        ];
        for spec in specs {
            let label = spec.label();
            let back = parse_spec(&label).unwrap();
            assert_eq!(back, spec, "label {label}");
        }
        assert_eq!(
            SimSpec::Adaptive(CandidateSet::default_set()).label(),
            "adaptive",
            "the default roster canonicalizes to the bare spec name"
        );
        assert_eq!(
            SimSpec::Model(ModelSpec::best_generational()).label(),
            "gen-45-10-45@hit1",
            "must match the live export's model label"
        );
    }

    #[test]
    fn parsed_proportions_match_literals_bitwise() {
        // Byte-for-byte comparability hinges on parsed proportions being
        // the exact doubles the grid constructors produce.
        match parse_spec("45-10-45@hit1").unwrap() {
            SimSpec::Model(ModelSpec::Generational { proportions, .. }) => {
                assert_eq!(proportions, Proportions::best_overall());
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_spec("33-33-33@evict10").unwrap() {
            SimSpec::Model(ModelSpec::Generational { proportions, .. }) => {
                assert_eq!(proportions, Proportions::even_thirds());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_specs_error() {
        for bad in [
            "gen-45-10@hit1",
            "45-10-45",
            "45-10-45@promote1",
            "45-x-45@hit1",
            "0-0-0@hit1",
            "mystery",
        ] {
            assert!(parse_spec(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn trace_to_log_preserves_shape() {
        let trace = SimTrace {
            ops: vec![
                TraceOp::Create {
                    id: TraceId::new(1),
                    bytes: 120,
                    time: Time::ZERO,
                },
                TraceOp::Access {
                    id: TraceId::new(1),
                    time: Time::from_micros(5),
                },
                TraceOp::Pin {
                    id: TraceId::new(1),
                },
                TraceOp::Invalidate {
                    id: TraceId::new(1),
                    time: Time::from_micros(9),
                },
            ],
        };
        let log = trace_to_log(&trace, "w", 1_000, 240);
        assert_eq!(log.access_count(), 2);
        assert_eq!(log.trace_count(), 1);
        assert_eq!(log.peak_trace_bytes, 240);
        assert_eq!(log.duration.as_micros(), 1_000);
        assert!(matches!(
            log.records[3],
            LogRecord::Invalidate { id, .. } if id == TraceId::new(1)
        ));
    }

    #[test]
    fn grid_is_jobs_invariant() {
        let mut ops = vec![];
        for id in 0..12u64 {
            ops.push(TraceOp::Create {
                id: TraceId::new(id),
                bytes: 100,
                time: Time::from_micros(id),
            });
        }
        for round in 0..20u64 {
            for id in 0..12u64 {
                ops.push(TraceOp::Access {
                    id: TraceId::new((id + round) % 12),
                    time: Time::from_micros(100 + round * 12 + id),
                });
            }
        }
        let trace = SimTrace { ops };
        let log = trace_to_log(&trace, "grid", 1_000_000, 1200);
        let index = NextUseIndex::build(&trace);
        let specs = vec![
            SimSpec::Model(ModelSpec::Unified),
            SimSpec::Model(ModelSpec::best_generational()),
            SimSpec::Local(LocalPolicy::Lru),
            SimSpec::Adaptive(CandidateSet::default_set()),
        ];
        let options = |jobs| GridOptions {
            phases: 4,
            sample_every: 16,
            jobs,
            regret_index: Some(&index),
            windows: true,
            window_width: None,
            regret_top: None,
        };
        let serial = simulate_grid(&log, &specs, 600, options(1));
        assert!(
            serial.iter().any(|s| s
                .regret
                .as_ref()
                .is_some_and(|r| r.total.evictions > 0)),
            "a 600-byte budget over 1200 bytes of traces must evict"
        );
        for jobs in [2, 8] {
            let par = simulate_grid(&log, &specs, 600, options(jobs));
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.label, b.label);
                assert_eq!(a.metrics, b.metrics);
                assert_eq!(a.costs, b.costs);
                assert_eq!(a.regret, b.regret);
                assert_eq!(a.windows, b.windows);
                assert_eq!(a.switches, b.switches);
                assert_eq!(a.result.metrics, b.result.metrics);
            }
        }
        assert!(
            serial
                .iter()
                .all(|s| s.switches.is_some() == (s.label == "adaptive")),
            "only adaptive specs carry a switch report"
        );
        assert!(
            serial
                .iter()
                .all(|s| s.windows.as_ref().is_some_and(|w| !w.windows.is_empty())),
            "windowed reports must be populated when requested"
        );
        let bare = simulate_grid(
            &log,
            &specs,
            600,
            GridOptions {
                regret_index: None,
                windows: false,
                ..options(1)
            },
        );
        assert!(bare.iter().all(|s| s.regret.is_none() && s.windows.is_none()));
    }
}
