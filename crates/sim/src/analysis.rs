//! Reuse-distance analysis of recorded trace-access logs (extension).
//!
//! The *byte-weighted stack distance* of an access is the total size of
//! the distinct traces executed since the previous access to the same
//! trace. Under a fully-associative LRU cache of capacity `C`, an access
//! hits exactly when its stack distance is ≤ `C` (Mattson et al., 1970) —
//! so a single pass over the log yields the whole miss-rate-versus-
//! capacity curve. This is the analytical backbone behind the paper's
//! empirical observations: U-shaped lifetimes produce a reuse-distance
//! distribution with a heavy near tail (nursery hits), a hole in the
//! middle, and a far spike at the long-lived working set — which is why
//! splitting the cache by generation beats any single-pool policy.
//!
//! Distances are computed in O(n log n) with a Fenwick tree over access
//! positions.

use std::collections::HashMap;

use gencache_cache::TraceId;
use serde::{Deserialize, Serialize};

use crate::log::{AccessLog, LogRecord};

/// A Fenwick (binary indexed) tree over byte weights.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Adds `delta` at 1-based position `i`.
    fn add(&mut self, mut i: usize, delta: i64) {
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `1..=i`.
    fn prefix(&self, mut i: usize) -> u64 {
        let mut sum = 0u64;
        while i > 0 {
            sum = sum.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

/// The byte-weighted reuse-distance profile of one log.
///
/// # Examples
///
/// ```
/// use gencache_cache::{TraceId, TraceRecord};
/// use gencache_program::{Addr, Time};
/// use gencache_sim::{reuse_profile, AccessLog, LogRecord};
///
/// let rec = TraceRecord::new(TraceId::new(1), 100, Addr::new(0x1000));
/// let log = AccessLog {
///     benchmark: "demo".into(),
///     records: vec![
///         LogRecord::Create { record: rec, time: Time::ZERO },
///         LogRecord::Access { id: rec.id, time: Time::from_micros(1) },
///     ],
///     duration: Time::from_secs_f64(1.0),
///     peak_trace_bytes: 100,
/// };
/// let profile = reuse_profile(&log);
/// // The re-access has distance 0 (nothing ran in between): it hits in
/// // any cache large enough to hold the trace itself.
/// assert_eq!(profile.miss_rate_at(100), 0.5); // only the cold miss
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReuseProfile {
    /// Byte-weighted stack distance per warm access, ascending.
    distances: Vec<u64>,
    /// Cold (first-ever) accesses.
    cold: u64,
    /// Total accesses (cold + warm).
    total: u64,
}

impl ReuseProfile {
    /// Number of accesses profiled.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Number of compulsory (cold) accesses.
    pub fn cold_accesses(&self) -> u64 {
        self.cold
    }

    /// The miss rate a fully-associative LRU cache of `capacity` bytes
    /// would incur on this log: cold misses plus warm accesses whose
    /// stack distance exceeds the capacity.
    pub fn miss_rate_at(&self, capacity: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hits = self.distances.partition_point(|&d| d <= capacity) as u64;
        (self.total - hits) as f64 / self.total as f64
    }

    /// The miss-rate curve at the given capacities.
    pub fn curve(&self, capacities: &[u64]) -> Vec<(u64, f64)> {
        capacities
            .iter()
            .map(|&c| (c, self.miss_rate_at(c)))
            .collect()
    }

    /// The median warm-access stack distance, or `None` with no warm
    /// accesses.
    pub fn median_distance(&self) -> Option<u64> {
        if self.distances.is_empty() {
            None
        } else {
            Some(self.distances[self.distances.len() / 2])
        }
    }

    /// The given percentile (0–100) of warm-access stack distances.
    ///
    /// # Panics
    ///
    /// Panics if `pct` exceeds 100.
    pub fn percentile(&self, pct: u8) -> Option<u64> {
        assert!(pct <= 100, "percentile out of range");
        if self.distances.is_empty() {
            return None;
        }
        let idx = (self.distances.len() - 1) * usize::from(pct) / 100;
        Some(self.distances[idx])
    }
}

/// Computes the byte-weighted reuse-distance profile of `log`.
///
/// Unmap invalidations end a trace's reuse chain: its next execution is
/// compulsory (the code was regenerated), matching how every cache model
/// treats it.
pub fn reuse_profile(log: &AccessLog) -> ReuseProfile {
    let n = log.records.len();
    let mut fenwick = Fenwick::new(n);
    // Trace → (1-based position of last access, size).
    let mut last: HashMap<TraceId, (usize, u32)> = HashMap::new();
    let mut sizes: HashMap<TraceId, u32> = HashMap::new();
    let mut profile = ReuseProfile::default();

    for (idx0, record) in log.records.iter().enumerate() {
        let pos = idx0 + 1;
        match *record {
            LogRecord::Create { record, .. } => {
                sizes.insert(record.id, record.size_bytes);
                profile.total += 1;
                profile.cold += 1;
                fenwick.add(pos, i64::from(record.size_bytes));
                last.insert(record.id, (pos, record.size_bytes));
            }
            LogRecord::Access { id, .. } => {
                profile.total += 1;
                let size = sizes.get(&id).copied().unwrap_or(0);
                match last.get(&id).copied() {
                    Some((prev, prev_size)) => {
                        // Bytes of distinct traces touched strictly
                        // between the two accesses, plus this trace's own
                        // size (it must fit too).
                        let between = fenwick.prefix(pos - 1) - fenwick.prefix(prev);
                        profile.distances.push(between + u64::from(size));
                        fenwick.add(prev, -i64::from(prev_size));
                    }
                    None => {
                        // Chain was cut by an invalidation.
                        profile.cold += 1;
                    }
                }
                fenwick.add(pos, i64::from(size));
                last.insert(id, (pos, size));
            }
            LogRecord::Invalidate { id, .. } => {
                if let Some((prev, prev_size)) = last.remove(&id) {
                    fenwick.add(prev, -i64::from(prev_size));
                }
            }
            LogRecord::Pin { .. } | LogRecord::Unpin { .. } => {}
        }
    }
    profile.distances.sort_unstable();
    profile
}

/// Replays `log` into `model`, sampling resident bytes at `samples`
/// evenly spaced points — the cache-occupancy timeline (rendered with
/// [`crate::report::sparkline`]).
///
/// Returns exactly `samples` values (or fewer for very short logs).
pub fn occupancy_series(
    log: &AccessLog,
    model: &mut dyn gencache_core::CacheModel,
    samples: usize,
) -> Vec<u64> {
    use crate::log::LogRecord;
    let n = log.records.len();
    if n == 0 || samples == 0 {
        return Vec::new();
    }
    let stride = (n / samples).max(1);
    let mut series = Vec::with_capacity(samples);
    let mut catalog: HashMap<TraceId, gencache_cache::TraceRecord> = HashMap::new();
    let mut now = gencache_program::Time::ZERO;
    for (i, record) in log.records.iter().enumerate() {
        match *record {
            LogRecord::Create { record, time } => {
                catalog.insert(record.id, record);
                now = time;
                model.on_access(record, time);
            }
            LogRecord::Access { id, time } => {
                let rec = catalog[&id];
                now = time;
                model.on_access(rec, time);
            }
            LogRecord::Invalidate { id, time } => {
                now = time;
                model.on_unmap(id, time);
            }
            LogRecord::Pin { id } => {
                model.on_pin(id, true, now);
            }
            LogRecord::Unpin { id } => {
                model.on_pin(id, false, now);
            }
        }
        if i % stride == stride - 1 && series.len() < samples {
            series.push(model.resident_bytes());
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_cache::TraceRecord;
    use gencache_program::{Addr, Time};

    fn rec(id: u64, size: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(id), size, Addr::new(0x1000 + id))
    }

    fn log_of(records: Vec<LogRecord>) -> AccessLog {
        AccessLog {
            benchmark: "analysis".into(),
            records,
            duration: Time::from_secs_f64(1.0),
            peak_trace_bytes: 10_000,
        }
    }

    #[test]
    fn immediate_reaccess_has_own_size_distance() {
        let log = log_of(vec![
            LogRecord::Create {
                record: rec(1, 100),
                time: Time::ZERO,
            },
            LogRecord::Access {
                id: TraceId::new(1),
                time: Time::from_micros(1),
            },
        ]);
        let p = reuse_profile(&log);
        assert_eq!(p.total_accesses(), 2);
        assert_eq!(p.cold_accesses(), 1);
        // Distance = its own 100 bytes: hits in any cache ≥ 100 B.
        assert_eq!(p.miss_rate_at(99), 1.0);
        assert_eq!(p.miss_rate_at(100), 0.5);
    }

    #[test]
    fn interleaved_access_counts_distinct_bytes() {
        // A B C A: the re-access of A must skip over B (200) + C (300)
        // plus A itself (100) → distance 600.
        let log = log_of(vec![
            LogRecord::Create {
                record: rec(1, 100),
                time: Time::ZERO,
            },
            LogRecord::Create {
                record: rec(2, 200),
                time: Time::ZERO,
            },
            LogRecord::Create {
                record: rec(3, 300),
                time: Time::ZERO,
            },
            LogRecord::Access {
                id: TraceId::new(1),
                time: Time::from_micros(1),
            },
        ]);
        let p = reuse_profile(&log);
        assert_eq!(p.median_distance(), Some(600));
        assert_eq!(p.miss_rate_at(599), 1.0);
        assert!((p.miss_rate_at(600) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn repeated_interleaving_counts_traces_once() {
        // A B B B A: B's bytes count once, not three times.
        let log = log_of(vec![
            LogRecord::Create {
                record: rec(1, 100),
                time: Time::ZERO,
            },
            LogRecord::Create {
                record: rec(2, 200),
                time: Time::ZERO,
            },
            LogRecord::Access {
                id: TraceId::new(2),
                time: Time::from_micros(1),
            },
            LogRecord::Access {
                id: TraceId::new(2),
                time: Time::from_micros(2),
            },
            LogRecord::Access {
                id: TraceId::new(1),
                time: Time::from_micros(3),
            },
        ]);
        let p = reuse_profile(&log);
        // A's re-access distance: B (200) + A (100) = 300.
        let max = *p.distances.last().unwrap();
        assert_eq!(max, 300);
    }

    #[test]
    fn invalidation_cuts_the_chain() {
        let log = log_of(vec![
            LogRecord::Create {
                record: rec(1, 100),
                time: Time::ZERO,
            },
            LogRecord::Invalidate {
                id: TraceId::new(1),
                time: Time::from_micros(1),
            },
            LogRecord::Access {
                id: TraceId::new(1),
                time: Time::from_micros(2),
            },
        ]);
        let p = reuse_profile(&log);
        assert_eq!(p.cold_accesses(), 2, "post-unmap access is compulsory");
        assert_eq!(p.miss_rate_at(u64::MAX), 1.0);
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let mut records = Vec::new();
        for id in 0..20u64 {
            records.push(LogRecord::Create {
                record: rec(id, 50 + id as u32),
                time: Time::ZERO,
            });
        }
        for round in 0..5u64 {
            for id in 0..20 {
                records.push(LogRecord::Access {
                    id: TraceId::new(id),
                    time: Time::from_micros(round * 20 + id),
                });
            }
        }
        let p = reuse_profile(&log_of(records));
        let caps: Vec<u64> = (0..30).map(|i| i * 100).collect();
        let curve = p.curve(&caps);
        for w in curve.windows(2) {
            assert!(w[0].1 >= w[1].1, "miss rate must not rise with capacity");
        }
        // At infinite capacity only cold misses remain.
        assert!(
            (p.miss_rate_at(u64::MAX) - p.cold_accesses() as f64 / p.total_accesses() as f64).abs()
                < 1e-12
        );
    }

    #[test]
    fn percentiles_and_empty_profile() {
        let p = reuse_profile(&log_of(Vec::new()));
        assert_eq!(p.median_distance(), None);
        assert_eq!(p.percentile(90), None);
        assert_eq!(p.miss_rate_at(0), 0.0);
    }

    /// Cross-validation: the analytic LRU prediction must track a real
    /// LRU cache simulation on the same log (the simulator adds placement
    /// constraints, so allow a coarse tolerance).
    #[test]
    fn prediction_tracks_simulated_lru() {
        use gencache_cache::{CodeCache, LruCache};
        let mut records = Vec::new();
        for id in 0..30u64 {
            records.push(LogRecord::Create {
                record: rec(id, 100),
                time: Time::ZERO,
            });
        }
        for round in 0..20u64 {
            for id in 0..30 {
                records.push(LogRecord::Access {
                    id: TraceId::new(id),
                    time: Time::from_micros(round * 30 + id),
                });
            }
        }
        let log = log_of(records);
        let p = reuse_profile(&log);

        for capacity in [1500u64, 2500, 3500] {
            let predicted = p.miss_rate_at(capacity);
            // Simulate.
            let mut cache = LruCache::new(capacity);
            let mut misses = 0u64;
            let mut total = 0u64;
            for r in &log.records {
                match *r {
                    LogRecord::Create { record, .. } => {
                        total += 1;
                        misses += 1;
                        let _ = cache.insert(record, Time::ZERO);
                    }
                    LogRecord::Access { id, .. } => {
                        total += 1;
                        if !cache.touch(id, Time::ZERO) {
                            misses += 1;
                            let _ = cache.insert(rec(id.as_u64(), 100), Time::ZERO);
                        }
                    }
                    _ => {}
                }
            }
            let simulated = misses as f64 / total as f64;
            assert!(
                (predicted - simulated).abs() < 0.1,
                "capacity {capacity}: predicted {predicted:.3} vs simulated {simulated:.3}"
            );
        }
    }
}
