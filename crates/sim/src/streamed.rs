//! The streamed record path: recorder → bounded channel → replay.
//!
//! The materialized pipeline records a benchmark into a full
//! [`AccessLog`](crate::AccessLog) and replays it afterwards, so its peak
//! memory grows linearly with stream length — the ROADMAP's blocker for
//! production trace volumes. This module removes the log entirely:
//! recording is deterministic, so a [`StreamedRecording`] runs the
//! recorder **twice**. The first pass ([`StreamedRecording::probe`])
//! discards every record and keeps only the [`RecordFacts`] — enough to
//! size the paper's standard capacity (`peak/2`) and build the
//! [`RunSummary`]. Each replay then re-records on a producer thread,
//! pushes records through a [`stream::bounded`] channel, and drives the
//! cache models incrementally on the consumer side. Peak memory is
//! O(channel depth + model state), never O(stream length), at the cost of
//! one extra recording pass per replay — the explicit trade the streamed
//! figure binaries make with `--stream`.
//!
//! One channel pass can drive *many* models at once (via
//! [`ReplayCursor`]), so the Figure 9 four-model comparison still costs a
//! single producer pass.

use gencache_core::{CacheModel, GenerationalConfig, GenerationalModel, UnifiedModel};
use gencache_obs::Observer;
use gencache_workloads::{PlanError, WorkloadProfile};

use crate::log::LogRecord;
use crate::recorder::{record_stream_with, RecordFacts, RecorderOptions, RunSummary};
use crate::replay::{Comparison, ReplayCursor, ReplayResult};
use crate::stream;
use crate::telemetry::ModelSpec;

/// Default bounded-channel depth for streamed replays: deep enough to
/// decouple producer and consumer scheduling hiccups, small enough that
/// the in-flight window stays a few hundred KiB of `LogRecord`s.
pub const DEFAULT_STREAM_DEPTH: usize = 4096;

/// A benchmark recording that never materializes its log.
///
/// Construct with [`probe`](StreamedRecording::probe) (pass 1: facts
/// only), then call [`replay_models`](StreamedRecording::replay_models) /
/// [`replay_observed`](StreamedRecording::replay_observed) /
/// [`compare_figure9`](StreamedRecording::compare_figure9) any number of
/// times — each replay re-records through a bounded channel.
#[derive(Debug, Clone)]
pub struct StreamedRecording {
    profile: WorkloadProfile,
    options: RecorderOptions,
    depth: usize,
    facts: RecordFacts,
    summary: RunSummary,
}

impl StreamedRecording {
    /// Pass 1: records `profile` once, discarding every record, to learn
    /// the run facts (peak trace bytes → capacity, duration, summary).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the workload cannot be planned.
    pub fn probe(
        profile: &WorkloadProfile,
        options: RecorderOptions,
        depth: usize,
    ) -> Result<Self, PlanError> {
        let facts = record_stream_with(profile, options, &mut |_| {})?;
        let summary = facts.summary(profile);
        Ok(StreamedRecording {
            profile: profile.clone(),
            options,
            depth: depth.max(1),
            facts,
            summary,
        })
    }

    /// The recorded workload.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// The probed run facts.
    pub fn facts(&self) -> &RecordFacts {
        &self.facts
    }

    /// The characterization summary — identical to the one the
    /// materialized [`record`](crate::record) path derives from its log.
    pub fn summary(&self) -> &RunSummary {
        &self.summary
    }

    /// The paper's standard bounded budget: half the unbounded peak.
    pub fn capacity(&self) -> u64 {
        self.facts.capacity()
    }

    /// Executions in the stream (creations + accesses) — the
    /// materialized log's `access_count()`.
    pub fn access_count(&self) -> u64 {
        self.facts.accesses
    }

    /// Total records per recording pass.
    pub fn record_count(&self) -> u64 {
        self.facts.records
    }

    /// Pass 2: re-records on a producer thread and drives every model in
    /// `models` from the single bounded-channel stream. Determinism makes
    /// this stream byte-identical to the probed one.
    pub fn replay_models(&self, models: &mut [&mut dyn CacheModel]) {
        let (tx, rx) = stream::bounded::<LogRecord>(self.depth);
        let profile = &self.profile;
        let options = self.options;
        std::thread::scope(|s| {
            let producer = s.spawn(move || {
                // If the consumer disappears (a model panicked), stop
                // forwarding and let the recorder run out quietly; the
                // panic propagates from the consumer side.
                let mut closed = false;
                record_stream_with(profile, options, &mut |record| {
                    if !closed && tx.send(record).is_err() {
                        closed = true;
                    }
                })
                .expect("profile planned successfully during probe");
            });
            let mut rx = rx;
            let mut cursor = ReplayCursor::new();
            while let Some(record) = rx.recv() {
                let step = cursor.step(&record);
                for model in models.iter_mut() {
                    step.drive(*model);
                }
            }
            producer.join().expect("recorder thread panicked");
        });
    }

    /// Streamed counterpart of
    /// [`replay_observed`](crate::replay_observed): replays into the
    /// model described by `spec` with `observer` attached. The observer
    /// runs on the consumer thread, so it needs no `Send` bound.
    pub fn replay_observed<O: Observer>(&self, spec: ModelSpec, observer: O) -> (ReplayResult, O) {
        let capacity = self.capacity();
        match spec.generational_config(capacity) {
            None => {
                let mut model = UnifiedModel::observed(capacity, observer);
                self.replay_models(&mut [&mut model as &mut dyn CacheModel]);
                let result = ReplayResult {
                    model: model.name(),
                    metrics: *model.metrics(),
                    ledger: *model.ledger(),
                };
                (result, model.into_observer())
            }
            Some(config) => {
                let mut model = GenerationalModel::observed(config, observer);
                self.replay_models(&mut [&mut model as &mut dyn CacheModel]);
                let result = ReplayResult {
                    model: model.name(),
                    metrics: *model.metrics(),
                    ledger: *model.ledger(),
                };
                (result, model.into_observer())
            }
        }
    }

    /// Streamed counterpart of [`collect_metrics`](crate::collect_metrics).
    pub fn collect_metrics(
        &self,
        spec: ModelSpec,
        sample_every: u64,
    ) -> (ReplayResult, gencache_obs::MetricsReport) {
        let (result, observer) =
            self.replay_observed(spec, gencache_obs::MetricsObserver::with_timeline(sample_every));
        (result, observer.report())
    }

    /// Streamed counterpart of [`collect_costs`](crate::collect_costs).
    pub fn collect_costs(
        &self,
        spec: ModelSpec,
        phases: u32,
    ) -> (ReplayResult, gencache_obs::CostReport) {
        let observer =
            gencache_obs::CostObserver::with_phases(phases, self.facts.duration.as_micros());
        let (result, observer) = self.replay_observed(spec, observer);
        (result, observer.into_report())
    }

    /// Streamed counterpart of [`collect_sampled`](crate::collect_sampled).
    pub fn collect_sampled(
        &self,
        spec: ModelSpec,
        params: gencache_obs::SamplingParams,
        sample_every: u64,
    ) -> (ReplayResult, gencache_obs::SampledReport) {
        let observer = gencache_obs::SamplingObserver::with_timeline(params, sample_every);
        let (result, observer) = self.replay_observed(spec, observer);
        (result, observer.report())
    }

    /// Streamed counterpart of [`compare_figure9`](crate::compare_figure9):
    /// the unified baseline and the three Figure 9 generational layouts,
    /// all driven from **one** producer pass.
    pub fn compare_figure9(&self) -> Comparison {
        let capacity = self.capacity();
        let configs = GenerationalConfig::figure9_configs(capacity);
        let mut unified = UnifiedModel::new(capacity);
        let mut generational: Vec<GenerationalModel> =
            configs.iter().map(|c| GenerationalModel::new(*c)).collect();

        let mut models: Vec<&mut dyn CacheModel> = Vec::with_capacity(1 + generational.len());
        models.push(&mut unified);
        for model in &mut generational {
            models.push(model);
        }
        self.replay_models(&mut models);

        Comparison {
            benchmark: self.profile.name.clone(),
            capacity,
            unified: ReplayResult {
                model: unified.name(),
                metrics: *unified.metrics(),
                ledger: *unified.ledger(),
            },
            generational: generational
                .iter()
                .map(|model| ReplayResult {
                    model: model.name(),
                    metrics: *model.metrics(),
                    ledger: *model.ledger(),
                })
                .collect(),
        }
    }
}

/// Probes `profile` and runs the streamed Figure 9 comparison in one
/// call, returning the recording for further replays.
///
/// # Errors
///
/// Returns [`PlanError`] if the workload cannot be planned.
pub fn compare_figure9_streamed(
    profile: &WorkloadProfile,
    depth: usize,
) -> Result<(StreamedRecording, Comparison), PlanError> {
    let rec = StreamedRecording::probe(profile, RecorderOptions::default(), depth)?;
    let comparison = rec.compare_figure9();
    Ok((rec, comparison))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::record;
    use crate::replay::compare_figure9;
    use gencache_obs::MetricsObserver;
    use gencache_workloads::Suite;
    use serde::Serialize;

    fn profile() -> WorkloadProfile {
        WorkloadProfile::builder("streamtest", Suite::Interactive)
            .footprint_kb(48)
            .phases(4)
            .dlls(3, 0.7)
            .duration_secs(10.0)
            .build()
    }

    fn doc<T: Serialize>(value: &T) -> String {
        serde_json::to_string(value).expect("serializable")
    }

    #[test]
    fn probed_summary_matches_materialized_summary() {
        let run = record(&profile()).unwrap();
        let rec = StreamedRecording::probe(&profile(), RecorderOptions::default(), 64).unwrap();
        assert_eq!(doc(&rec.summary()), doc(&run.summary));
        assert_eq!(rec.capacity(), (run.log.peak_trace_bytes / 2).max(1));
        assert_eq!(rec.access_count(), run.log.access_count());
        assert_eq!(rec.record_count(), run.log.records.len() as u64);
    }

    #[test]
    fn streamed_figure9_is_bit_identical_to_materialized() {
        let run = record(&profile()).unwrap();
        let materialized = compare_figure9(&run.log);
        let (_, streamed) = compare_figure9_streamed(&profile(), 32).unwrap();
        assert_eq!(doc(&streamed), doc(&materialized));
    }

    #[test]
    fn streamed_observed_replay_matches_materialized() {
        let run = record(&profile()).unwrap();
        let rec = StreamedRecording::probe(&profile(), RecorderOptions::default(), 16).unwrap();
        for spec in [ModelSpec::Unified, ModelSpec::best_generational()] {
            let (res_m, obs_m) =
                crate::telemetry::replay_observed(&run.log, spec, MetricsObserver::with_timeline(64));
            let (res_s, obs_s) = rec.replay_observed(spec, MetricsObserver::with_timeline(64));
            assert_eq!(doc(&res_s), doc(&res_m));
            assert_eq!(obs_s.report(), obs_m.report());
        }
    }

    #[test]
    fn tiny_channel_depth_still_replays_completely() {
        let (rec, comparison) = compare_figure9_streamed(&profile(), 1).unwrap();
        assert_eq!(comparison.unified.metrics.accesses, rec.access_count());
    }
}
