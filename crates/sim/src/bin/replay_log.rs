//! Replays a previously recorded verbose log (see `record_log`) into the
//! Figure 9 cache comparison and prints the results.
//!
//! Usage: `replay_log <log.json>`

use gencache_sim::{compare_figure9, AccessLog};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: replay_log <log.json>");
        std::process::exit(2);
    };
    let log = AccessLog::load_json(&path)?;
    println!(
        "{}: {} records, {} accesses, peak trace cache {} bytes",
        log.benchmark,
        log.records.len(),
        log.access_count(),
        log.peak_trace_bytes
    );
    let c = compare_figure9(&log);
    println!(
        "unified ({} bytes): miss rate {:.3}%",
        c.capacity,
        c.unified.miss_rate() * 100.0
    );
    for i in 0..c.generational.len() {
        println!(
            "{:<44} miss reduction {:+.1}%  overhead ratio {:.1}%",
            c.generational[i].model,
            c.miss_rate_reduction(i) * 100.0,
            c.overhead_ratio(i) * 100.0
        );
    }
    Ok(())
}
