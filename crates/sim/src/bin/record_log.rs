//! Records a benchmark's verbose access log to a JSON file, so bounded
//! cache simulations can be re-run without re-executing the workload —
//! the paper's exact methodology ("the verbose logs generated during
//! execution were reused for all of our simulations").
//!
//! Usage: `record_log <benchmark> <output.json> [scale]`

use gencache_sim::record;
use gencache_workloads::benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let (Some(name), Some(out)) = (args.next(), args.next()) else {
        eprintln!("usage: record_log <benchmark> <output.json> [scale]");
        std::process::exit(2);
    };
    let scale: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(1);

    let Some(mut profile) = benchmark(&name) else {
        eprintln!("unknown benchmark {name:?}; see gencache_workloads::all_benchmarks()");
        std::process::exit(2);
    };
    if scale > 1 {
        profile = profile.scaled_down(scale);
    }

    eprintln!("recording {name} (scale {scale})...");
    let run = record(&profile)?;
    run.log.save_json(&out)?;
    eprintln!(
        "wrote {} records ({} traces, peak trace cache {} bytes) to {out}",
        run.log.records.len(),
        run.summary.traces_created,
        run.log.peak_trace_bytes,
    );
    Ok(())
}
