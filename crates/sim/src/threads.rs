//! Thread-private versus thread-shared code caches (extension).
//!
//! DynamoRIO gives every thread its own basic-block and trace caches —
//! the paper builds on this ("DynamoRIO already supports multiple code
//! caches per thread") and proposes multiple *generational* trace caches
//! per thread. Thread privacy buys lock-free cache access but fragments
//! the capacity budget: a thread with a large working set cannot borrow
//! space from an idle sibling.
//!
//! This module models the trade-off on a recorded log: traces are
//! assigned to threads by the module that produced them (a decent proxy —
//! worker threads run worker-library code), the log is split into
//! per-thread access streams, and each thread gets `1/T` of the capacity
//! budget. Comparing the summed per-thread miss behaviour against one
//! shared cache of the full budget quantifies the fragmentation penalty.

use std::collections::HashMap;

use gencache_core::{CacheModel, GenerationalConfig, GenerationalModel, UnifiedModel};
use gencache_program::Addr;
use serde::{Deserialize, Serialize};

use crate::log::{AccessLog, LogRecord};
use crate::replay::replay_into;

/// Splits `log` into `threads` per-thread logs. Every trace is owned by
/// exactly one thread, chosen by hashing the 16 MB-aligned region of its
/// head address (so a module's traces stay together, approximating
/// threads running distinct libraries). Pin/unpin/invalidate records
/// follow their trace; timestamps and relative order are preserved.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn partition_by_module(log: &AccessLog, threads: u32) -> Vec<AccessLog> {
    assert!(threads > 0, "at least one thread required");
    let assign = |head: Addr| -> usize {
        // 16 MB-aligned region index; the workload planner bases each
        // module at a distinct 16 MB boundary.
        let region = head.as_u64() >> 24;
        (region % u64::from(threads)) as usize
    };

    let mut owner: HashMap<gencache_cache::TraceId, usize> = HashMap::new();
    let mut logs: Vec<AccessLog> = (0..threads)
        .map(|t| AccessLog {
            benchmark: format!("{}/thread{}", log.benchmark, t),
            records: Vec::new(),
            duration: log.duration,
            peak_trace_bytes: 0,
        })
        .collect();

    for record in &log.records {
        let thread = match record {
            LogRecord::Create { record, .. } => {
                let t = assign(record.head);
                owner.insert(record.id, t);
                t
            }
            LogRecord::Access { id, .. }
            | LogRecord::Invalidate { id, .. }
            | LogRecord::Pin { id }
            | LogRecord::Unpin { id } => match owner.get(id) {
                Some(&t) => t,
                None => continue, // record for a never-created trace
            },
        };
        logs[thread].records.push(*record);
    }

    // Per-thread peaks: live bytes high-water mark within each log.
    for thread_log in &mut logs {
        let mut live = 0u64;
        let mut peak = 0u64;
        let mut sizes: HashMap<gencache_cache::TraceId, u64> = HashMap::new();
        for record in &thread_log.records {
            match record {
                LogRecord::Create { record, .. } => {
                    sizes.insert(record.id, u64::from(record.size_bytes));
                    live += u64::from(record.size_bytes);
                    peak = peak.max(live);
                }
                LogRecord::Invalidate { id, .. } => {
                    live -= sizes.get(id).copied().unwrap_or(0);
                }
                _ => {}
            }
        }
        thread_log.peak_trace_bytes = peak;
    }
    logs
}

/// Aggregate outcome of one thread-organization replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ThreadedOutcome {
    /// Threads simulated.
    pub threads: u32,
    /// Total accesses across threads.
    pub accesses: u64,
    /// Total misses across threads.
    pub misses: u64,
    /// Total management instructions across threads.
    pub overhead_instructions: f64,
}

impl ThreadedOutcome {
    /// Aggregate miss rate.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Which cache organization each thread uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThreadCacheKind {
    /// One pseudo-circular cache per thread.
    Unified,
    /// One generational (45-10-45, promote-on-hit-1) hierarchy per thread.
    Generational,
}

/// How the shared capacity budget is divided among thread-private caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetSplit {
    /// Every thread receives `total / threads` — the naive static split.
    Equal,
    /// Each thread receives capacity proportional to its own unbounded
    /// peak — the split an adaptive runtime would converge to.
    PeakProportional,
}

/// Replays `log` under thread-private caches: the log is partitioned
/// across `threads`, and the capacity budget is divided per `split`.
pub fn replay_thread_private(
    log: &AccessLog,
    threads: u32,
    total_capacity: u64,
    kind: ThreadCacheKind,
    split: BudgetSplit,
) -> ThreadedOutcome {
    let logs = partition_by_module(log, threads);
    let peak_sum: u64 = logs.iter().map(|l| l.peak_trace_bytes).sum();
    let mut outcome = ThreadedOutcome {
        threads,
        ..ThreadedOutcome::default()
    };
    for thread_log in &logs {
        let per_thread = match split {
            BudgetSplit::Equal => total_capacity / u64::from(threads),
            BudgetSplit::PeakProportional if peak_sum > 0 => {
                (total_capacity as u128 * u128::from(thread_log.peak_trace_bytes)
                    / u128::from(peak_sum)) as u64
            }
            BudgetSplit::PeakProportional => total_capacity / u64::from(threads),
        }
        .max(1);
        let mut model: Box<dyn CacheModel> = match kind {
            ThreadCacheKind::Unified => Box::new(UnifiedModel::new(per_thread)),
            ThreadCacheKind::Generational => Box::new(GenerationalModel::new(
                GenerationalConfig::figure9_configs(per_thread)[1],
            )),
        };
        replay_into(thread_log, model.as_mut());
        outcome.accesses += model.metrics().accesses;
        outcome.misses += model.metrics().misses;
        outcome.overhead_instructions += model.ledger().total();
    }
    outcome
}

/// Replays `log` under one shared cache of the full budget (the
/// single-threaded baseline, restated in [`ThreadedOutcome`] form).
pub fn replay_thread_shared(
    log: &AccessLog,
    total_capacity: u64,
    kind: ThreadCacheKind,
) -> ThreadedOutcome {
    let mut model: Box<dyn CacheModel> = match kind {
        ThreadCacheKind::Unified => Box::new(UnifiedModel::new(total_capacity)),
        ThreadCacheKind::Generational => Box::new(GenerationalModel::new(
            GenerationalConfig::figure9_configs(total_capacity)[1],
        )),
    };
    replay_into(log, model.as_mut());
    ThreadedOutcome {
        threads: 1,
        accesses: model.metrics().accesses,
        misses: model.metrics().misses,
        overhead_instructions: model.ledger().total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_cache::{TraceId, TraceRecord};
    use gencache_program::Time;

    /// Traces in two distinct 16 MB regions, interleaved.
    fn two_module_log() -> AccessLog {
        let rec = |id: u64, region: u64| {
            TraceRecord::new(
                TraceId::new(id),
                100,
                Addr::new(region << 24 | (id & 0xffff)),
            )
        };
        let mut records = Vec::new();
        for id in 0..8 {
            records.push(LogRecord::Create {
                record: rec(id, id % 2),
                time: Time::from_micros(id),
            });
        }
        for round in 0..20u64 {
            for id in 0..8 {
                records.push(LogRecord::Access {
                    id: TraceId::new(id),
                    time: Time::from_micros(100 + round * 8 + id),
                });
            }
        }
        records.push(LogRecord::Pin {
            id: TraceId::new(0),
        });
        records.push(LogRecord::Unpin {
            id: TraceId::new(0),
        });
        records.push(LogRecord::Invalidate {
            id: TraceId::new(1),
            time: Time::from_micros(999),
        });
        AccessLog {
            benchmark: "threads".into(),
            records,
            duration: Time::from_secs_f64(1.0),
            peak_trace_bytes: 800,
        }
    }

    #[test]
    fn partition_preserves_every_owned_record() {
        let log = two_module_log();
        let parts = partition_by_module(&log, 2);
        assert_eq!(parts.len(), 2);
        let total: usize = parts.iter().map(|p| p.records.len()).sum();
        assert_eq!(total, log.records.len());
        // Both threads own traces (even/odd regions).
        assert!(parts.iter().all(|p| p.trace_count() == 4));
        // Per-thread peaks sum to the whole (no invalidation before peak).
        assert_eq!(
            parts.iter().map(|p| p.peak_trace_bytes).sum::<u64>(),
            log.peak_trace_bytes
        );
    }

    #[test]
    fn partition_keeps_trace_records_together() {
        let log = two_module_log();
        for part in partition_by_module(&log, 2) {
            // Every access in a part refers to a trace created in it.
            let mut created = std::collections::HashSet::new();
            for r in &part.records {
                match r {
                    LogRecord::Create { record, .. } => {
                        created.insert(record.id);
                    }
                    LogRecord::Access { id, .. }
                    | LogRecord::Invalidate { id, .. }
                    | LogRecord::Pin { id }
                    | LogRecord::Unpin { id } => {
                        assert!(created.contains(id));
                    }
                }
            }
        }
    }

    #[test]
    fn single_thread_partition_is_identity() {
        let log = two_module_log();
        let parts = partition_by_module(&log, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].records, log.records);
        assert_eq!(parts[0].peak_trace_bytes, log.peak_trace_bytes);
    }

    #[test]
    fn private_caches_never_beat_shared_on_balanced_load() {
        let log = two_module_log();
        let capacity = 500; // forces some eviction pressure
        let shared = replay_thread_shared(&log, capacity, ThreadCacheKind::Unified);
        let private = replay_thread_private(
            &log,
            2,
            capacity,
            ThreadCacheKind::Unified,
            BudgetSplit::Equal,
        );
        assert_eq!(shared.accesses, private.accesses);
        // With a balanced split, halved private caches can at best match
        // the shared cache.
        assert!(private.misses >= shared.misses);
        assert!(private.miss_rate() >= shared.miss_rate());
    }

    #[test]
    fn generational_kind_runs() {
        let log = two_module_log();
        let out = replay_thread_private(
            &log,
            2,
            2000,
            ThreadCacheKind::Generational,
            BudgetSplit::PeakProportional,
        );
        assert_eq!(out.threads, 2);
        assert!(out.accesses > 0);
        assert!(out.overhead_instructions > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = partition_by_module(&AccessLog::default(), 0);
    }
}
