//! Trace linking analysis (extension).
//!
//! Real dynamic optimizers *link* traces: when one trace's exit branch
//! targets another resident trace, the exit is patched to jump directly
//! there, skipping the two context switches through the dispatcher. The
//! catch — and the reason linking interacts with cache management — is
//! that evicting a trace requires severing every link into it, and a
//! regenerated trace starts unlinked. A cache organization that churns
//! long-lived traces therefore pays twice: once to regenerate the trace
//! and again in dispatcher transitions until its links re-form.
//!
//! This module replays a recorded log while tracking the link graph over
//! a cache model's resident set, quantifying how many inter-trace
//! transitions run linked versus through the dispatcher.

use std::collections::{HashMap, HashSet};

use gencache_cache::TraceId;
use gencache_core::{CacheModel, GenerationalModel, UnifiedModel};
use gencache_program::Time;
use serde::{Deserialize, Serialize};

use crate::log::{AccessLog, LogRecord};

/// Outcome counters of a linking-aware replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkReport {
    /// Consecutive trace-to-trace transitions observed.
    pub transitions: u64,
    /// Transitions that followed an established link (no dispatcher).
    pub linked: u64,
    /// Transitions through the dispatcher (missing or severed link).
    pub unlinked: u64,
    /// Links patched in.
    pub links_created: u64,
    /// Links severed because an endpoint left the cache.
    pub links_severed: u64,
}

impl LinkReport {
    /// Fraction of transitions that ran linked; zero when none occurred.
    pub fn linked_fraction(&self) -> f64 {
        if self.transitions == 0 {
            0.0
        } else {
            self.linked as f64 / self.transitions as f64
        }
    }

    /// Dispatcher context switches incurred: two per unlinked transition
    /// (trace → dispatcher → trace).
    pub fn context_switches(&self) -> u64 {
        2 * self.unlinked
    }
}

/// A cache model whose per-trace residency epoch can be queried, so the
/// link graph can detect evictions lazily.
pub trait LinkableModel: CacheModel {
    /// When the trace's *current* residency began, or `None` if absent.
    /// A re-inserted trace reports its latest insertion time, which
    /// invalidates links created against an earlier residency.
    fn resident_since(&self, id: TraceId) -> Option<Time>;
}

impl LinkableModel for UnifiedModel {
    fn resident_since(&self, id: TraceId) -> Option<Time> {
        self.cache().entry(id).map(|e| e.insert_time)
    }
}

impl LinkableModel for GenerationalModel {
    fn resident_since(&self, id: TraceId) -> Option<Time> {
        // Promotion relocates the trace but re-links it as part of the
        // move (Section 5.4's fix-up includes exit branches), so the
        // *nursery* insertion epoch is what matters; we approximate it by
        // the earliest insert time across the hierarchy.
        [self.nursery(), self.probation(), self.persistent()]
            .into_iter()
            .filter_map(|c| gencache_cache::CodeCache::entry(c, id))
            .map(|e| e.insert_time)
            .min()
    }
}

/// Replays `log` into `model` while simulating trace linking.
///
/// A link `a → b` is created the first time `b` executes directly after
/// `a` with both resident; it is considered severed when either endpoint
/// has been evicted (and possibly re-inserted) since creation.
pub fn replay_with_linking(log: &AccessLog, model: &mut dyn LinkableModel) -> LinkReport {
    let mut report = LinkReport::default();
    // Established links with the endpoint epochs they were created at.
    let mut links: HashMap<(TraceId, TraceId), (Time, Time)> = HashMap::new();
    let mut catalog = HashMap::new();
    let mut prev: Option<TraceId> = None;
    // Clock for untimed pin records: the most recent timed record.
    let mut now = Time::ZERO;

    for record in &log.records {
        match *record {
            LogRecord::Create { record, time } => {
                catalog.insert(record.id, record);
                now = time;
                model.on_access(record, time);
                prev = Some(record.id);
            }
            LogRecord::Access { id, time } => {
                let rec = catalog[&id];
                now = time;
                // Epochs *before* this access services (a miss will
                // re-insert and change the epoch).
                let to_epoch_before = model.resident_since(id);
                model.on_access(rec, time);

                if let Some(from) = prev {
                    if from != id {
                        report.transitions += 1;
                        let from_epoch = model.resident_since(from);
                        let link_ok = match (links.get(&(from, id)), from_epoch, to_epoch_before) {
                            (Some(&(fe, te)), Some(cur_fe), Some(cur_te)) => {
                                fe == cur_fe && te == cur_te
                            }
                            _ => false,
                        };
                        if link_ok {
                            report.linked += 1;
                        } else {
                            report.unlinked += 1;
                            if links.remove(&(from, id)).is_some() {
                                report.links_severed += 1;
                            }
                            // Patch a fresh link if both ends are now
                            // resident.
                            if let (Some(fe), Some(te)) = (from_epoch, model.resident_since(id)) {
                                links.insert((from, id), (fe, te));
                                report.links_created += 1;
                            }
                        }
                    } else {
                        // Self-transition (the trace looped back into
                        // itself): always intra-trace, never dispatched.
                    }
                }
                prev = Some(id);
            }
            LogRecord::Invalidate { id, time } => {
                now = time;
                model.on_unmap(id, time);
                let stale: Vec<(TraceId, TraceId)> = links
                    .keys()
                    .filter(|(a, b)| *a == id || *b == id)
                    .copied()
                    .collect();
                for key in stale {
                    links.remove(&key);
                    report.links_severed += 1;
                }
                if prev == Some(id) {
                    prev = None;
                }
            }
            LogRecord::Pin { id } => {
                model.on_pin(id, true, now);
            }
            LogRecord::Unpin { id } => {
                model.on_pin(id, false, now);
            }
        }
    }

    // Defensive: the link map only ever holds pairs of once-resident
    // traces.
    debug_assert!(links
        .keys()
        .flat_map(|(a, b)| [a, b])
        .collect::<HashSet<_>>()
        .iter()
        .all(|id| catalog.contains_key(id)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_cache::TraceRecord;
    use gencache_program::Addr;

    fn rec(id: u64) -> TraceRecord {
        TraceRecord::new(TraceId::new(id), 100, Addr::new(0x1000 + id))
    }

    fn log_of(records: Vec<LogRecord>) -> AccessLog {
        AccessLog {
            benchmark: "link-test".into(),
            records,
            duration: Time::from_secs_f64(1.0),
            peak_trace_bytes: 10_000,
        }
    }

    #[test]
    fn alternating_traces_link_after_first_pass() {
        let mut records = vec![
            LogRecord::Create {
                record: rec(1),
                time: Time::from_micros(1),
            },
            LogRecord::Create {
                record: rec(2),
                time: Time::from_micros(2),
            },
        ];
        for i in 0..10u64 {
            records.push(LogRecord::Access {
                id: TraceId::new(1),
                time: Time::from_micros(10 + 2 * i),
            });
            records.push(LogRecord::Access {
                id: TraceId::new(2),
                time: Time::from_micros(11 + 2 * i),
            });
        }
        let log = log_of(records);
        let mut model = UnifiedModel::new(10_000);
        let report = replay_with_linking(&log, &mut model);
        // Transitions: 2→1 (after creates: create2 then access1) plus the
        // alternation; first 1→2 and 2→1 are unlinked, later ones linked.
        assert!(report.linked > 0);
        assert_eq!(report.links_created, 2); // 1→2 and 2→1
        assert!(report.linked_fraction() > 0.8, "{report:?}");
        assert_eq!(report.linked + report.unlinked, report.transitions);
    }

    #[test]
    fn eviction_severs_links() {
        // Cache fits exactly one 100-byte trace: every transition evicts,
        // so no link can ever be used.
        let mut records = vec![
            LogRecord::Create {
                record: rec(1),
                time: Time::from_micros(1),
            },
            LogRecord::Create {
                record: rec(2),
                time: Time::from_micros(2),
            },
        ];
        for i in 0..6u64 {
            records.push(LogRecord::Access {
                id: TraceId::new(1),
                time: Time::from_micros(10 + 2 * i),
            });
            records.push(LogRecord::Access {
                id: TraceId::new(2),
                time: Time::from_micros(11 + 2 * i),
            });
        }
        let log = log_of(records);
        let mut model = UnifiedModel::new(150);
        let report = replay_with_linking(&log, &mut model);
        assert_eq!(report.linked, 0, "{report:?}");
        assert_eq!(report.context_switches(), 2 * report.transitions);
    }

    #[test]
    fn unmap_severs_links_immediately() {
        let records = vec![
            LogRecord::Create {
                record: rec(1),
                time: Time::from_micros(1),
            },
            LogRecord::Create {
                record: rec(2),
                time: Time::from_micros(2),
            },
            LogRecord::Access {
                id: TraceId::new(1),
                time: Time::from_micros(3),
            },
            LogRecord::Access {
                id: TraceId::new(2),
                time: Time::from_micros(4),
            },
            LogRecord::Invalidate {
                id: TraceId::new(2),
                time: Time::from_micros(5),
            },
            LogRecord::Access {
                id: TraceId::new(1),
                time: Time::from_micros(6),
            },
        ];
        let log = log_of(records);
        let mut model = UnifiedModel::new(10_000);
        let report = replay_with_linking(&log, &mut model);
        assert!(report.links_severed >= 1);
    }

    #[test]
    fn generational_model_is_linkable() {
        use gencache_core::{GenerationalConfig, PromotionPolicy, Proportions};
        let records = vec![
            LogRecord::Create {
                record: rec(1),
                time: Time::from_micros(1),
            },
            LogRecord::Access {
                id: TraceId::new(1),
                time: Time::from_micros(2),
            },
        ];
        let log = log_of(records);
        let mut model = GenerationalModel::new(GenerationalConfig::new(
            10_000,
            Proportions::best_overall(),
            PromotionPolicy::OnHit { hits: 1 },
        ));
        let report = replay_with_linking(&log, &mut model);
        assert_eq!(report.transitions, 0); // single trace, self-transitions only
        assert!(model.resident_since(TraceId::new(1)).is_some());
    }

    #[test]
    fn empty_log_yields_empty_report() {
        let log = log_of(Vec::new());
        let mut model = UnifiedModel::new(1000);
        let report = replay_with_linking(&log, &mut model);
        assert_eq!(report, LinkReport::default());
        assert_eq!(report.linked_fraction(), 0.0);
    }
}
