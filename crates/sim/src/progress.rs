//! A rate-limited stderr progress heartbeat for long replays.
//!
//! Suite runs at small `--jobs` counts can take minutes with no output;
//! [`ProgressMeter`] gives the operator a records-replayed/total heartbeat
//! without perturbing the measurement. It is lock-free (two atomics), all
//! printing is rate-limited to one line per interval, and a disabled
//! meter reduces to a relaxed atomic add — cheap enough to leave in the
//! replay hot path unconditionally.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How many log records a replay loop accumulates locally before
/// flushing them into the shared meter. Keeps the shared-counter
/// traffic negligible at high worker counts.
pub const PROGRESS_BATCH: u64 = 4096;

/// A shared, thread-safe progress counter that prints a heartbeat line
/// to stderr at most once per interval.
///
/// ```
/// use gencache_sim::ProgressMeter;
///
/// let meter = ProgressMeter::disabled("replay", 1000);
/// meter.add(250);
/// assert_eq!(meter.done(), 250);
/// ```
#[derive(Debug)]
pub struct ProgressMeter {
    label: String,
    total: u64,
    done: AtomicU64,
    started: Instant,
    /// Milliseconds-since-start of the last heartbeat print; workers race
    /// on it with compare-exchange so exactly one wins each interval.
    last_print_ms: AtomicU64,
    interval: Duration,
    enabled: bool,
}

impl ProgressMeter {
    /// A live meter expecting `total` units of work, printing at most
    /// every 500 ms.
    pub fn new(label: impl Into<String>, total: u64) -> Self {
        ProgressMeter::with_interval(label, total, Duration::from_millis(500))
    }

    /// A live meter with an explicit heartbeat interval.
    pub fn with_interval(label: impl Into<String>, total: u64, interval: Duration) -> Self {
        ProgressMeter {
            label: label.into(),
            total,
            done: AtomicU64::new(0),
            started: Instant::now(),
            last_print_ms: AtomicU64::new(0),
            interval,
            enabled: true,
        }
    }

    /// A meter that counts but never prints — the default when
    /// `--progress` is not given, so call sites need no branching.
    pub fn disabled(label: impl Into<String>, total: u64) -> Self {
        ProgressMeter {
            enabled: false,
            ..ProgressMeter::new(label, total)
        }
    }

    /// Records `n` more completed units; prints a heartbeat if the
    /// interval has elapsed since the last one.
    pub fn add(&self, n: u64) {
        let done = self.done.fetch_add(n, Ordering::Relaxed) + n;
        if !self.enabled {
            return;
        }
        let elapsed = self.started.elapsed();
        let elapsed_ms = elapsed.as_millis() as u64;
        let last = self.last_print_ms.load(Ordering::Relaxed);
        if elapsed_ms.saturating_sub(last) < self.interval.as_millis() as u64 {
            return;
        }
        // One worker wins the interval; losers skip silently.
        if self
            .last_print_ms
            .compare_exchange(last, elapsed_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.print_line(done, elapsed);
        }
    }

    /// Units completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// The expected total.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Prints a final summary line (unconditionally, if the meter is
    /// enabled). Call once when the run completes.
    pub fn finish(&self) {
        if self.enabled {
            self.print_line(self.done(), self.started.elapsed());
        }
    }

    fn print_line(&self, done: u64, elapsed: Duration) {
        let percent = if self.total > 0 {
            done as f64 / self.total as f64 * 100.0
        } else {
            100.0
        };
        let rate = if elapsed.as_secs_f64() > 0.0 {
            done as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        };
        eprintln!(
            "[{}] {done}/{} records ({percent:.1}%) in {:.1}s — {:.0} rec/s",
            self.label,
            self.total,
            elapsed.as_secs_f64(),
            rate,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_across_threads() {
        let meter = ProgressMeter::disabled("test", 8 * 1000);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..10 {
                        meter.add(100);
                    }
                });
            }
        });
        assert_eq!(meter.done(), 8000);
        assert_eq!(meter.total(), 8000);
    }

    #[test]
    fn live_meter_rate_limits_prints() {
        // Interval of one hour: only the explicit finish() line may print.
        // We can't capture stderr here, but we can at least drive the
        // code path and confirm the counter stays exact.
        let meter = ProgressMeter::with_interval("test", 100, Duration::from_secs(3600));
        for _ in 0..100 {
            meter.add(1);
        }
        meter.finish();
        assert_eq!(meter.done(), 100);
    }
}
