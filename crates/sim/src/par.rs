//! Parallel fan-out on `std::thread::scope` — no external dependencies.
//!
//! The replay engine is embarrassingly parallel at two grains: grid
//! points within one benchmark's [`sweep`](crate::sweep), and whole
//! benchmarks within a suite run. Both fan out through [`par_map`]:
//! workers claim items from a shared atomic cursor, but every result is
//! written to the slot of its *input* index, so output order equals
//! input order regardless of scheduling and the results are
//! bit-identical to a serial run. Simulation itself never shares mutable
//! state — each worker replays against its own cache models, reading a
//! shared immutable [`AccessLog`](crate::AccessLog).
//!
//! Worker count resolution (see [`effective_jobs`]): explicit request
//! (a binary's `--jobs N`) → `GENCACHE_JOBS` environment variable →
//! the machine's available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Resolves a worker count: an explicit request (e.g. a `--jobs` flag)
/// wins, then the `GENCACHE_JOBS` environment variable, then the
/// machine's available parallelism. Zero and unparsable values are
/// ignored; the result is always at least 1.
pub fn effective_jobs(requested: Option<usize>) -> usize {
    requested
        .filter(|&j| j > 0)
        .or_else(|| {
            std::env::var("GENCACHE_JOBS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&j: &usize| j > 0)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Maps `f` over `items` on up to `jobs` scoped threads, returning the
/// results in input order. Deterministic: the output is identical to
/// `items.iter().map(f).collect()` for any `jobs`.
///
/// A panic inside `f` propagates to the caller once all workers stop
/// (the standard `thread::scope` join behaviour).
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_timed(items, jobs, f)
        .into_iter()
        .map(|(r, _)| r)
        .collect()
}

/// Like [`par_map`], but pairs each result with the wall-clock time its
/// shard took, so suite drivers can report per-benchmark timings.
pub fn par_map_timed<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<(R, Duration)>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    let timed = |item: &T| {
        let started = Instant::now();
        let result = f(item);
        (result, started.elapsed())
    };
    if jobs == 1 {
        return items.iter().map(timed).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<(R, Duration)>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock().expect("no poisoned slot") = Some(timed(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("no poisoned slot")
                .expect("every claimed slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for jobs in [1, 2, 3, 8, 64] {
            assert_eq!(par_map(&items, jobs, |&x| x * x + 1), serial);
        }
    }

    #[test]
    fn par_map_handles_empty_and_oversubscribed_input() {
        let empty: Vec<u64> = Vec::new();
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(par_map(&[7u64], 8, |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_timed_reports_a_duration_per_item() {
        let out = par_map_timed(&[1u64, 2, 3], 2, |&x| x * 10);
        assert_eq!(out.len(), 3);
        assert_eq!(
            out.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn effective_jobs_precedence() {
        // All env manipulation lives in this one test so concurrently
        // running tests never observe a transient GENCACHE_JOBS value.
        std::env::remove_var("GENCACHE_JOBS");
        assert_eq!(effective_jobs(Some(3)), 3);
        assert!(effective_jobs(None) >= 1);
        std::env::set_var("GENCACHE_JOBS", "5");
        assert_eq!(effective_jobs(None), 5);
        assert_eq!(effective_jobs(Some(2)), 2, "explicit request beats env");
        std::env::set_var("GENCACHE_JOBS", "0");
        assert!(effective_jobs(None) >= 1, "zero is ignored");
        std::env::set_var("GENCACHE_JOBS", "not-a-number");
        assert!(effective_jobs(None) >= 1, "garbage is ignored");
        std::env::remove_var("GENCACHE_JOBS");
    }
}
