//! A CLOCK (second-chance) local policy.
//!
//! CLOCK approximates LRU at FIFO cost: each entry carries a reference
//! bit, set on every execution. The eviction pointer sweeps the arena as
//! in the circular buffer, but an entry whose bit is set gets a *second
//! chance* — its bit is cleared and the pointer resets past it, exactly
//! the mechanism the pseudo-circular policy already uses for pinned
//! traces. This policy is an extension beyond the paper: it probes how
//! much of LRU's temporal-locality benefit survives when grafted onto the
//! paper's pointer machinery.

use std::collections::HashSet;

use gencache_program::Time;

use crate::arena::Arena;
use crate::cache::{CodeCache, FragmentationReport, InsertError, InsertReport};
use crate::record::{EntryInfo, Evicted, EvictionCause, TraceId, TraceRecord};
use crate::stats::CacheStats;

/// A fixed-capacity code cache managed by CLOCK (second-chance) eviction.
///
/// # Examples
///
/// ```
/// use gencache_cache::{ClockCache, CodeCache, TraceId, TraceRecord};
/// use gencache_program::{Addr, Time};
///
/// let mut cache = ClockCache::new(100);
/// cache.insert(TraceRecord::new(TraceId::new(1), 50, Addr::new(0x1)), Time::ZERO)?;
/// cache.insert(TraceRecord::new(TraceId::new(2), 50, Addr::new(0x2)), Time::ZERO)?;
/// // Touch trace 1: its reference bit protects it for one sweep.
/// cache.touch(TraceId::new(1), Time::from_micros(1));
/// let report = cache.insert(
///     TraceRecord::new(TraceId::new(3), 50, Addr::new(0x3)),
///     Time::from_micros(2),
/// )?;
/// assert_eq!(report.evicted[0].id(), TraceId::new(2));
/// # Ok::<(), gencache_cache::InsertError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClockCache {
    arena: Arena,
    capacity: u64,
    pointer: u64,
    /// Entries whose reference bit is currently set.
    referenced: HashSet<TraceId>,
    stats: CacheStats,
}

impl ClockCache {
    /// Creates a cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        ClockCache {
            arena: Arena::new(),
            capacity,
            pointer: 0,
            referenced: HashSet::new(),
            stats: CacheStats::default(),
        }
    }

    /// The current sweep-pointer offset, for tests and diagnostics.
    pub fn pointer(&self) -> u64 {
        self.pointer
    }

    /// Clears unpinned, unreferenced entries overlapping `[start, end)`.
    /// Returns the first protected entry found (pinned, or referenced
    /// with `honor_bits`), which the caller must skip past.
    fn evict_window(
        &mut self,
        start: u64,
        end: u64,
        honor_bits: bool,
        evicted: &mut Vec<Evicted>,
    ) -> Option<EntryInfo> {
        loop {
            let id = self.arena.first_overlapping(start, end)?;
            let info = *self.arena.entry(id).expect("resident");
            if info.pinned {
                return Some(info);
            }
            if honor_bits && self.referenced.remove(&id) {
                // Second chance: the bit is now cleared; protect the entry
                // for this sweep only.
                return Some(info);
            }
            self.referenced.remove(&id);
            self.arena.remove(id);
            self.stats
                .on_remove(u64::from(info.size_bytes()), EvictionCause::Capacity);
            evicted.push(Evicted {
                entry: info,
                cause: EvictionCause::Capacity,
            });
        }
    }
}

impl CodeCache for ClockCache {
    fn capacity(&self) -> Option<u64> {
        Some(self.capacity)
    }

    fn used_bytes(&self) -> u64 {
        self.arena.used_bytes()
    }

    fn len(&self) -> usize {
        self.arena.len()
    }

    fn contains(&self, id: TraceId) -> bool {
        self.arena.contains(id)
    }

    fn entry(&self, id: TraceId) -> Option<EntryInfo> {
        self.arena.entry(id).copied()
    }

    fn touch(&mut self, id: TraceId, now: Time) -> bool {
        match self.arena.entry_mut(id) {
            Some(e) => {
                e.access_count += 1;
                e.last_access = now;
                self.referenced.insert(id);
                self.stats.hits += 1;
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, rec: TraceRecord, now: Time) -> Result<InsertReport, InsertError> {
        let size = u64::from(rec.size_bytes);
        if size > self.capacity {
            return Err(InsertError::TraceTooLarge {
                size: rec.size_bytes,
                capacity: self.capacity,
            });
        }
        if self.arena.contains(rec.id) {
            return Err(InsertError::AlreadyResident(rec.id));
        }

        let mut evicted = Vec::new();
        let mut p = self.pointer;
        let mut wraps = 0u32;
        let mut pointer_resets = 0u32;
        // After two full sweeps every reference bit has been cleared;
        // stop honoring them so the insert cannot starve.
        loop {
            let honor_bits = wraps < 2;
            if p + size > self.capacity {
                self.evict_window(p, self.capacity, honor_bits, &mut evicted);
                p = 0;
                wraps += 1;
                if wraps > 4 {
                    return Err(InsertError::NoSpace {
                        size: rec.size_bytes,
                        pinned_bytes: self.arena.pinned_bytes(),
                    });
                }
                continue;
            }
            match self.evict_window(p, p + size, honor_bits, &mut evicted) {
                None => break,
                Some(protected) => {
                    p = protected.end_offset();
                    pointer_resets += 1;
                }
            }
        }

        self.arena.place(rec, p, now);
        self.pointer = p + size;
        self.stats.on_insert(size, self.arena.used_bytes());
        self.stats.debug_assert_identity(self.arena.len() as u64);
        Ok(InsertReport {
            evicted,
            offset: p,
            pointer_resets,
        })
    }

    fn remove(&mut self, id: TraceId, cause: EvictionCause) -> Option<EntryInfo> {
        let info = self.arena.remove(id)?;
        self.referenced.remove(&id);
        self.stats.on_remove(u64::from(info.size_bytes()), cause);
        self.stats.debug_assert_identity(self.arena.len() as u64);
        Some(info)
    }

    fn set_pinned(&mut self, id: TraceId, pinned: bool) -> bool {
        match self.arena.entry_mut(id) {
            Some(e) => {
                e.pinned = pinned;
                true
            }
            None => false,
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn fragmentation(&self) -> FragmentationReport {
        self.arena.fragmentation(self.capacity)
    }

    fn trace_ids(&self) -> Vec<TraceId> {
        self.arena.ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_program::Addr;

    fn rec(id: u64, size: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(id), size, Addr::new(0x1000 + id * 0x100))
    }

    fn ids(report: &InsertReport) -> Vec<u64> {
        report.evicted.iter().map(|e| e.id().as_u64()).collect()
    }

    #[test]
    fn behaves_as_fifo_without_touches() {
        let mut c = ClockCache::new(100);
        c.insert(rec(1, 50), Time::ZERO).unwrap();
        c.insert(rec(2, 50), Time::ZERO).unwrap();
        let report = c.insert(rec(3, 50), Time::ZERO).unwrap();
        assert_eq!(ids(&report), vec![1]);
    }

    #[test]
    fn referenced_entry_gets_second_chance() {
        let mut c = ClockCache::new(100);
        c.insert(rec(1, 50), Time::ZERO).unwrap();
        c.insert(rec(2, 50), Time::ZERO).unwrap();
        c.touch(TraceId::new(1), Time::from_micros(1));
        // Trace 1's bit protects it; trace 2 is evicted instead.
        let report = c.insert(rec(3, 50), Time::from_micros(2)).unwrap();
        assert_eq!(ids(&report), vec![2]);
        assert!(c.contains(TraceId::new(1)));
        // The bit was consumed: the next pressure evicts trace 1.
        let report = c.insert(rec(4, 50), Time::from_micros(3)).unwrap();
        assert_eq!(ids(&report), vec![1]);
    }

    #[test]
    fn all_referenced_still_converges() {
        let mut c = ClockCache::new(100);
        for id in 1..=4 {
            c.insert(rec(id, 25), Time::ZERO).unwrap();
            c.touch(TraceId::new(id), Time::from_micros(id));
        }
        // Every bit is set; the sweep clears them and still finds room.
        let report = c.insert(rec(9, 50), Time::from_micros(9)).unwrap();
        assert!(!report.evicted.is_empty());
        assert!(c.contains(TraceId::new(9)));
    }

    #[test]
    fn pinned_entries_never_evicted() {
        let mut c = ClockCache::new(100);
        c.insert(rec(1, 50), Time::ZERO).unwrap();
        c.insert(rec(2, 50), Time::ZERO).unwrap();
        c.set_pinned(TraceId::new(1), true);
        let report = c.insert(rec(3, 50), Time::ZERO).unwrap();
        assert_eq!(ids(&report), vec![2]);
        assert!(c.contains(TraceId::new(1)));
    }

    #[test]
    fn fully_pinned_reports_no_space() {
        let mut c = ClockCache::new(100);
        c.insert(rec(1, 100), Time::ZERO).unwrap();
        c.set_pinned(TraceId::new(1), true);
        assert!(matches!(
            c.insert(rec(2, 50), Time::ZERO),
            Err(InsertError::NoSpace {
                pinned_bytes: 100,
                ..
            })
        ));
    }

    #[test]
    fn forced_removal_clears_reference_bit() {
        let mut c = ClockCache::new(100);
        c.insert(rec(1, 50), Time::ZERO).unwrap();
        c.touch(TraceId::new(1), Time::ZERO);
        c.remove(TraceId::new(1), EvictionCause::Unmapped).unwrap();
        assert!(!c.contains(TraceId::new(1)));
        // Reinsert works and behaves as unreferenced.
        c.insert(rec(1, 50), Time::ZERO).unwrap();
        c.insert(rec(2, 50), Time::ZERO).unwrap();
        let report = c.insert(rec(3, 50), Time::ZERO).unwrap();
        assert_eq!(ids(&report), vec![1]);
    }

    #[test]
    fn basic_errors() {
        let mut c = ClockCache::new(50);
        assert!(matches!(
            c.insert(rec(1, 51), Time::ZERO),
            Err(InsertError::TraceTooLarge { .. })
        ));
        c.insert(rec(1, 10), Time::ZERO).unwrap();
        assert!(matches!(
            c.insert(rec(1, 10), Time::ZERO),
            Err(InsertError::AlreadyResident(_))
        ));
    }
}
