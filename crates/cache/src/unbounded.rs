//! An unbounded code cache: the management-free default of DynamoRIO.
//!
//! Nothing is ever evicted for capacity; the cache simply grows. The paper
//! uses an unbounded run to measure each benchmark's *maximum code cache
//! size* (Figure 1) and to record the access log that drives the bounded
//! cache simulations.

use gencache_program::Time;

use crate::arena::Arena;
use crate::cache::{CodeCache, FragmentationReport, InsertError, InsertReport};
use crate::record::{EntryInfo, EvictionCause, TraceId, TraceRecord};
use crate::stats::CacheStats;

/// A code cache with no capacity limit.
///
/// # Examples
///
/// ```
/// use gencache_cache::{CodeCache, TraceId, TraceRecord, UnboundedCache};
/// use gencache_program::{Addr, Time};
///
/// let mut cache = UnboundedCache::new();
/// for i in 0..1000 {
///     let rec = TraceRecord::new(TraceId::new(i), 100, Addr::new(0x1000 + i));
///     assert!(cache.insert(rec, Time::ZERO)?.evicted.is_empty());
/// }
/// assert_eq!(cache.used_bytes(), 100_000);
/// assert_eq!(cache.capacity(), None);
/// # Ok::<(), gencache_cache::InsertError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct UnboundedCache {
    arena: Arena,
    cursor: u64,
    stats: CacheStats,
}

impl UnboundedCache {
    /// Creates an empty unbounded cache.
    pub fn new() -> Self {
        UnboundedCache::default()
    }
}

impl CodeCache for UnboundedCache {
    fn capacity(&self) -> Option<u64> {
        None
    }

    fn used_bytes(&self) -> u64 {
        self.arena.used_bytes()
    }

    fn len(&self) -> usize {
        self.arena.len()
    }

    fn contains(&self, id: TraceId) -> bool {
        self.arena.contains(id)
    }

    fn entry(&self, id: TraceId) -> Option<EntryInfo> {
        self.arena.entry(id).copied()
    }

    fn touch(&mut self, id: TraceId, now: Time) -> bool {
        match self.arena.entry_mut(id) {
            Some(e) => {
                e.access_count += 1;
                e.last_access = now;
                self.stats.hits += 1;
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, rec: TraceRecord, now: Time) -> Result<InsertReport, InsertError> {
        if self.arena.contains(rec.id) {
            return Err(InsertError::AlreadyResident(rec.id));
        }
        let offset = self.cursor;
        self.arena.place(rec, offset, now);
        self.cursor += u64::from(rec.size_bytes);
        self.stats
            .on_insert(u64::from(rec.size_bytes), self.arena.used_bytes());
        self.stats.debug_assert_identity(self.arena.len() as u64);
        Ok(InsertReport::new(Vec::new(), offset))
    }

    fn remove(&mut self, id: TraceId, cause: EvictionCause) -> Option<EntryInfo> {
        let info = self.arena.remove(id)?;
        self.stats.on_remove(u64::from(info.size_bytes()), cause);
        self.stats.debug_assert_identity(self.arena.len() as u64);
        Some(info)
    }

    fn set_pinned(&mut self, id: TraceId, pinned: bool) -> bool {
        match self.arena.entry_mut(id) {
            Some(e) => {
                e.pinned = pinned;
                true
            }
            None => false,
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn fragmentation(&self) -> FragmentationReport {
        // Free space is unbounded; report only interior holes up to the
        // allocation watermark.
        self.arena.fragmentation(self.arena.high_watermark())
    }

    fn trace_ids(&self) -> Vec<TraceId> {
        self.arena.ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_program::Addr;

    fn rec(id: u64, size: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(id), size, Addr::new(0x1000 + id * 0x100))
    }

    #[test]
    fn never_evicts() {
        let mut c = UnboundedCache::new();
        for i in 0..100 {
            assert!(c
                .insert(rec(i, 1000), Time::ZERO)
                .unwrap()
                .evicted
                .is_empty());
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.used_bytes(), 100_000);
        assert_eq!(c.stats().peak_used_bytes, 100_000);
    }

    #[test]
    fn peak_survives_unmap_deletions() {
        let mut c = UnboundedCache::new();
        c.insert(rec(1, 500), Time::ZERO).unwrap();
        c.insert(rec(2, 500), Time::ZERO).unwrap();
        c.remove(TraceId::new(1), EvictionCause::Unmapped).unwrap();
        c.insert(rec(3, 100), Time::ZERO).unwrap();
        // Peak was 1000 even though current use is 600.
        assert_eq!(c.stats().peak_used_bytes, 1000);
        assert_eq!(c.used_bytes(), 600);
    }

    #[test]
    fn holes_reported_up_to_watermark() {
        let mut c = UnboundedCache::new();
        c.insert(rec(1, 100), Time::ZERO).unwrap();
        c.insert(rec(2, 100), Time::ZERO).unwrap();
        c.remove(TraceId::new(1), EvictionCause::Unmapped).unwrap();
        let frag = c.fragmentation();
        assert_eq!(frag.free_bytes, 100);
        assert_eq!(frag.gap_count, 1);
    }

    #[test]
    fn duplicate_rejected() {
        let mut c = UnboundedCache::new();
        c.insert(rec(1, 10), Time::ZERO).unwrap();
        assert!(matches!(
            c.insert(rec(1, 10), Time::ZERO),
            Err(InsertError::AlreadyResident(_))
        ));
    }

    #[test]
    fn touch_and_pin() {
        let mut c = UnboundedCache::new();
        c.insert(rec(1, 10), Time::ZERO).unwrap();
        assert!(c.touch(TraceId::new(1), Time::from_micros(3)));
        assert!(c.set_pinned(TraceId::new(1), true));
        assert_eq!(c.entry(TraceId::new(1)).unwrap().access_count, 1);
        assert!(c.entry(TraceId::new(1)).unwrap().pinned);
    }
}
