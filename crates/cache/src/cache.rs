//! The [`CodeCache`] trait: the interface every local cache implements.

use std::fmt;

use gencache_program::Time;
use serde::{Deserialize, Serialize};

use crate::record::{EntryInfo, Evicted, EvictionCause, TraceId, TraceRecord};
use crate::stats::CacheStats;

/// The result of a successful insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertReport {
    /// Entries the replacement policy evicted to make room, in eviction
    /// order, each tagged with its cause (`Capacity` for pointer-driven
    /// eviction, `Flush` when a flushing policy cleared the cache). The
    /// generational manager promotes capacity victims to the next cache.
    pub evicted: Vec<Evicted>,
    /// Arena offset at which the new trace was placed.
    pub offset: u64,
    /// How many times the replacement pointer was forced past a protected
    /// entry while searching for space (pin skips in the pseudo-circular
    /// policy, second chances in CLOCK). Zero for policies without a
    /// pointer.
    pub pointer_resets: u32,
}

impl InsertReport {
    /// A report with the given victims and offset and no pointer resets.
    pub fn new(evicted: Vec<Evicted>, offset: u64) -> Self {
        InsertReport {
            evicted,
            offset,
            pointer_resets: 0,
        }
    }
}

/// Errors returned by [`CodeCache::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InsertError {
    /// The trace is larger than the whole cache.
    TraceTooLarge {
        /// Size of the rejected trace.
        size: u32,
        /// Cache capacity.
        capacity: u64,
    },
    /// The trace is already resident; use [`CodeCache::touch`] instead.
    AlreadyResident(TraceId),
    /// Not enough evictable space (too many pinned entries).
    NoSpace {
        /// Size of the rejected trace.
        size: u32,
        /// Bytes currently pinned.
        pinned_bytes: u64,
    },
}

impl fmt::Display for InsertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsertError::TraceTooLarge { size, capacity } => {
                write!(f, "trace of {size} bytes exceeds cache capacity {capacity}")
            }
            InsertError::AlreadyResident(id) => write!(f, "trace {id} is already resident"),
            InsertError::NoSpace { size, pinned_bytes } => write!(
                f,
                "no evictable space for {size} bytes ({pinned_bytes} bytes pinned)"
            ),
        }
    }
}

impl std::error::Error for InsertError {}

/// A snapshot of cache fragmentation, from the free-gap structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragmentationReport {
    /// Total free bytes.
    pub free_bytes: u64,
    /// The largest single contiguous free gap.
    pub largest_gap: u64,
    /// Number of disjoint free gaps.
    pub gap_count: usize,
}

impl FragmentationReport {
    /// Fraction of free space that is *unusable* for an allocation the
    /// size of the largest gap: `1 - largest_gap / free_bytes`. Zero when
    /// all free space is one gap (no fragmentation) and approaches one as
    /// free space shatters into many small holes.
    pub fn fragmentation_ratio(&self) -> f64 {
        if self.free_bytes == 0 {
            0.0
        } else {
            1.0 - self.largest_gap as f64 / self.free_bytes as f64
        }
    }
}

/// A software code cache holding variable-size trace bodies.
///
/// Implementations differ only in their *replacement policy*; the storage
/// model (a byte arena with holes) is shared. All caches support the
/// operations the paper's Section 4 requires of a real system:
///
/// * **pinning** (undeletable traces, e.g. during exception handling);
/// * **forced deletion** (program unmapped the source memory);
/// * byte-granular capacity accounting.
pub trait CodeCache: fmt::Debug {
    /// Capacity in bytes, or `None` for an unbounded cache.
    fn capacity(&self) -> Option<u64>;

    /// Bytes currently occupied by resident traces.
    fn used_bytes(&self) -> u64;

    /// Number of resident traces.
    fn len(&self) -> usize;

    /// Returns `true` if no traces are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if the trace is resident.
    fn contains(&self, id: TraceId) -> bool;

    /// Metadata for a resident trace.
    fn entry(&self, id: TraceId) -> Option<EntryInfo>;

    /// Records an execution of a resident trace, updating recency and
    /// access counts. Returns `false` if the trace is not resident.
    fn touch(&mut self, id: TraceId, now: Time) -> bool;

    /// Inserts a trace, evicting according to the policy.
    ///
    /// # Errors
    ///
    /// See [`InsertError`]. On error the cache is unchanged except that
    /// policies are permitted to have already evicted entries while
    /// searching for space; callers treating errors as fatal should not
    /// continue using the cache for simulation.
    fn insert(&mut self, rec: TraceRecord, now: Time) -> Result<InsertReport, InsertError>;

    /// Removes a trace for the given cause (forced unmap deletion or a
    /// management discard). Returns its final metadata, or `None` if not
    /// resident. Pinned traces *can* be removed this way: an unmap makes
    /// the code invalid regardless of pinning.
    fn remove(&mut self, id: TraceId, cause: EvictionCause) -> Option<EntryInfo>;

    /// Marks a trace undeletable (`true`) or deletable (`false`).
    /// Returns `false` if the trace is not resident.
    fn set_pinned(&mut self, id: TraceId, pinned: bool) -> bool;

    /// Lifetime counters.
    fn stats(&self) -> &CacheStats;

    /// Current fragmentation snapshot.
    fn fragmentation(&self) -> FragmentationReport;

    /// Ids of all resident traces (unordered).
    fn trace_ids(&self) -> Vec<TraceId>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragmentation_ratio_extremes() {
        let none = FragmentationReport {
            free_bytes: 100,
            largest_gap: 100,
            gap_count: 1,
        };
        assert_eq!(none.fragmentation_ratio(), 0.0);

        let shattered = FragmentationReport {
            free_bytes: 100,
            largest_gap: 10,
            gap_count: 10,
        };
        assert!((shattered.fragmentation_ratio() - 0.9).abs() < 1e-12);

        let full = FragmentationReport::default();
        assert_eq!(full.fragmentation_ratio(), 0.0);
    }

    #[test]
    fn insert_error_display() {
        let e = InsertError::TraceTooLarge {
            size: 10,
            capacity: 5,
        };
        assert!(e.to_string().contains("exceeds"));
        let e = InsertError::AlreadyResident(TraceId::new(3));
        assert!(e.to_string().contains("T3"));
        let e = InsertError::NoSpace {
            size: 10,
            pinned_bytes: 90,
        };
        assert!(e.to_string().contains("pinned"));
    }
}
