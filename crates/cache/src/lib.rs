//! # gencache-cache
//!
//! The software code-cache substrate for the `gencache` reproduction of
//! *Generational Cache Management of Code Traces in Dynamic Optimization
//! Systems* (Hazelwood & Smith, MICRO 2003).
//!
//! A code cache stores variable-size trace bodies in a contiguous byte
//! arena. This crate provides the storage model (extents, holes,
//! fragmentation) and the *local* replacement policies of Section 4:
//!
//! * [`PseudoCircularCache`] — the paper's policy: a circular FIFO whose
//!   eviction pointer resets past undeletable (pinned) traces;
//! * [`LruCache`] — least-recently-used with first-fit placement, the
//!   classic comparison point (optionally with a compaction pass, the
//!   "defragmentation step" design alternative of Section 4.2);
//! * [`ClockCache`] — CLOCK/second-chance, an extension probing how much
//!   temporal locality survives on FIFO-style pointer machinery;
//! * [`FlushCache`] — whole-cache flush on overflow;
//! * [`PreemptiveFlushCache`] — Dynamo's published policy: flush on a
//!   detected program phase change (trace-creation-rate spike);
//! * [`UnboundedCache`] — no management at all (DynamoRIO's default).
//!
//! All policies implement the [`CodeCache`] trait and support the two
//! real-world complications the paper highlights: **pinned (undeletable)
//! traces** and **program-forced deletions** when guest memory is
//! unmapped.
//!
//! ```
//! use gencache_cache::{CodeCache, EvictionCause, PseudoCircularCache,
//!                      TraceId, TraceRecord};
//! use gencache_program::{Addr, Time};
//!
//! let mut cache = PseudoCircularCache::new(4096);
//! cache.insert(TraceRecord::new(TraceId::new(7), 242, Addr::new(0x40_1000)),
//!              Time::ZERO)?;
//! cache.touch(TraceId::new(7), Time::from_micros(10));
//!
//! // The program unmapped the DLL this trace came from:
//! let gone = cache.remove(TraceId::new(7), EvictionCause::Unmapped).unwrap();
//! assert_eq!(gone.access_count, 1);
//! # Ok::<(), gencache_cache::InsertError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arena;
mod cache;
mod clock;
mod flush;
mod lru;
mod preemptive;
mod pseudo_circular;
mod record;
mod stats;
mod unbounded;

pub use cache::{CodeCache, FragmentationReport, InsertError, InsertReport};
pub use clock::ClockCache;
pub use flush::FlushCache;
pub use lru::LruCache;
pub use preemptive::{PhaseDetector, PreemptiveFlushCache};
pub use pseudo_circular::PseudoCircularCache;
pub use record::{EntryInfo, Evicted, EvictionCause, TraceId, TraceRecord};
pub use stats::CacheStats;
pub use unbounded::UnboundedCache;
