//! Dynamo's preemptive flushing policy (Bala et al., HPL-1999-77 [2]).
//!
//! Dynamo observed that a sharp *rise in trace creation rate* signals a
//! program phase change: the cached working set is going stale, so the
//! most profitable reaction is to flush the whole cache pre-emptively and
//! let the new phase's hot code repopulate it. This differs from
//! [`FlushCache`](crate::FlushCache), which only flushes when forced by
//! capacity.
//!
//! The detector here follows the published heuristic's shape: track the
//! insertion rate over a sliding window of recent insertions; when the
//! current window's rate exceeds the long-run average by a configurable
//! factor, flush.

use std::collections::VecDeque;

use gencache_program::Time;

use crate::arena::Arena;
use crate::cache::{CodeCache, FragmentationReport, InsertError, InsertReport};
use crate::record::{EntryInfo, Evicted, EvictionCause, TraceId, TraceRecord};
use crate::stats::CacheStats;

/// Configuration of the phase-change detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseDetector {
    /// Number of recent insertions forming the detection window.
    pub window: usize,
    /// Flush when the window's insertion rate exceeds the long-run
    /// average rate by this factor.
    pub spike_factor: f64,
    /// Minimum insertions before the detector may fire (warm-up).
    pub min_insertions: u64,
}

impl Default for PhaseDetector {
    fn default() -> Self {
        PhaseDetector {
            window: 32,
            spike_factor: 3.0,
            min_insertions: 128,
        }
    }
}

/// A code cache flushed pre-emptively on detected phase changes, and as
/// a fallback when an insertion cannot fit.
///
/// # Examples
///
/// ```
/// use gencache_cache::{CodeCache, PhaseDetector, PreemptiveFlushCache,
///                      TraceId, TraceRecord};
/// use gencache_program::{Addr, Time};
///
/// let mut cache = PreemptiveFlushCache::new(1 << 16, PhaseDetector::default());
/// let rec = TraceRecord::new(TraceId::new(1), 242, Addr::new(0x1000));
/// cache.insert(rec, Time::ZERO)?;
/// assert!(cache.contains(TraceId::new(1)));
/// # Ok::<(), gencache_cache::InsertError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PreemptiveFlushCache {
    arena: Arena,
    capacity: u64,
    cursor: u64,
    detector: PhaseDetector,
    /// Timestamps of the most recent insertions (the detection window).
    recent: VecDeque<Time>,
    first_insert: Option<Time>,
    insertions: u64,
    flushes: u64,
    stats: CacheStats,
}

impl PreemptiveFlushCache {
    /// Creates a cache of `capacity` bytes with the given detector.
    pub fn new(capacity: u64, detector: PhaseDetector) -> Self {
        PreemptiveFlushCache {
            arena: Arena::new(),
            capacity,
            cursor: 0,
            detector,
            recent: VecDeque::with_capacity(detector.window + 1),
            first_insert: None,
            insertions: 0,
            flushes: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of flushes performed (preemptive and capacity-forced).
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// Returns `true` if the detector currently sees a phase change:
    /// the recent-window insertion rate is `spike_factor`× the long-run
    /// rate.
    fn phase_change_detected(&self, now: Time) -> bool {
        if self.insertions < self.detector.min_insertions
            || self.recent.len() < self.detector.window
        {
            return false;
        }
        let Some(first) = self.first_insert else {
            return false;
        };
        let total_span = now.saturating_micros_since(first);
        if total_span == 0 {
            return false;
        }
        let long_run_rate = self.insertions as f64 / total_span as f64;
        let window_start = *self.recent.front().expect("window nonempty");
        let window_span = now.saturating_micros_since(window_start).max(1);
        let window_rate = self.recent.len() as f64 / window_span as f64;
        window_rate > long_run_rate * self.detector.spike_factor
    }

    /// Flushes all unpinned entries (stats: flush evictions) and resets
    /// the allocation cursor.
    fn flush(&mut self) -> Vec<Evicted> {
        let victims: Vec<TraceId> = self
            .arena
            .iter_by_offset()
            .filter(|e| !e.pinned)
            .map(|e| e.id())
            .collect();
        let mut flushed = Vec::with_capacity(victims.len());
        for id in victims {
            let info = self.arena.remove(id).expect("resident");
            self.stats
                .on_remove(u64::from(info.size_bytes()), EvictionCause::Flush);
            flushed.push(Evicted {
                entry: info,
                cause: EvictionCause::Flush,
            });
        }
        self.cursor = 0;
        self.flushes += 1;
        flushed
    }

    fn find_slot(&self, mut at: u64, size: u64) -> Option<u64> {
        loop {
            if at + size > self.capacity {
                return None;
            }
            match self.arena.first_overlapping(at, at + size) {
                None => return Some(at),
                Some(id) => {
                    let e = self.arena.entry(id).expect("resident");
                    if !e.pinned {
                        return None;
                    }
                    at = e.end_offset();
                }
            }
        }
    }
}

impl CodeCache for PreemptiveFlushCache {
    fn capacity(&self) -> Option<u64> {
        Some(self.capacity)
    }

    fn used_bytes(&self) -> u64 {
        self.arena.used_bytes()
    }

    fn len(&self) -> usize {
        self.arena.len()
    }

    fn contains(&self, id: TraceId) -> bool {
        self.arena.contains(id)
    }

    fn entry(&self, id: TraceId) -> Option<EntryInfo> {
        self.arena.entry(id).copied()
    }

    fn touch(&mut self, id: TraceId, now: Time) -> bool {
        match self.arena.entry_mut(id) {
            Some(e) => {
                e.access_count += 1;
                e.last_access = now;
                self.stats.hits += 1;
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, rec: TraceRecord, now: Time) -> Result<InsertReport, InsertError> {
        let size = u64::from(rec.size_bytes);
        if size > self.capacity {
            return Err(InsertError::TraceTooLarge {
                size: rec.size_bytes,
                capacity: self.capacity,
            });
        }
        if self.arena.contains(rec.id) {
            return Err(InsertError::AlreadyResident(rec.id));
        }

        // Update the phase detector first: the new insertion is part of
        // the burst we are trying to detect.
        self.insertions += 1;
        self.first_insert.get_or_insert(now);
        self.recent.push_back(now);
        while self.recent.len() > self.detector.window {
            self.recent.pop_front();
        }

        let mut evicted = Vec::new();
        if self.phase_change_detected(now) {
            evicted = self.flush();
        }

        let offset = match self.find_slot(self.cursor, size) {
            Some(offset) => offset,
            None => {
                // Capacity-forced fallback flush.
                evicted.extend(self.flush());
                match self.find_slot(0, size) {
                    Some(offset) => offset,
                    None => {
                        return Err(InsertError::NoSpace {
                            size: rec.size_bytes,
                            pinned_bytes: self.arena.used_bytes(),
                        });
                    }
                }
            }
        };

        self.arena.place(rec, offset, now);
        self.cursor = offset + size;
        self.stats.on_insert(size, self.arena.used_bytes());
        self.stats.debug_assert_identity(self.arena.len() as u64);
        Ok(InsertReport::new(evicted, offset))
    }

    fn remove(&mut self, id: TraceId, cause: EvictionCause) -> Option<EntryInfo> {
        let info = self.arena.remove(id)?;
        self.stats.on_remove(u64::from(info.size_bytes()), cause);
        self.stats.debug_assert_identity(self.arena.len() as u64);
        Some(info)
    }

    fn set_pinned(&mut self, id: TraceId, pinned: bool) -> bool {
        match self.arena.entry_mut(id) {
            Some(e) => {
                e.pinned = pinned;
                true
            }
            None => false,
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn fragmentation(&self) -> FragmentationReport {
        self.arena.fragmentation(self.capacity)
    }

    fn trace_ids(&self) -> Vec<TraceId> {
        self.arena.ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_program::Addr;

    fn rec(id: u64, size: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(id), size, Addr::new(0x1000 + id * 0x100))
    }

    fn detector() -> PhaseDetector {
        PhaseDetector {
            window: 8,
            spike_factor: 3.0,
            min_insertions: 16,
        }
    }

    #[test]
    fn steady_rate_never_flushes_preemptively() {
        let mut c = PreemptiveFlushCache::new(1 << 20, detector());
        // One insertion per 100 µs, uniformly: no spike.
        for i in 0..200u64 {
            c.insert(rec(i, 100), Time::from_micros(i * 100)).unwrap();
        }
        assert_eq!(c.flush_count(), 0);
        assert_eq!(c.len(), 200);
    }

    #[test]
    fn insertion_burst_triggers_phase_flush() {
        let mut c = PreemptiveFlushCache::new(1 << 20, detector());
        // Warm up slowly…
        for i in 0..32u64 {
            c.insert(rec(i, 100), Time::from_micros(i * 1000)).unwrap();
        }
        assert_eq!(c.flush_count(), 0);
        // …then a phase change: a dense burst of new traces.
        for i in 0..16u64 {
            c.insert(rec(1000 + i, 100), Time::from_micros(32_000 + i))
                .unwrap();
        }
        assert!(c.flush_count() >= 1, "burst should flush pre-emptively");
        // The old phase's traces are gone.
        assert!(!c.contains(TraceId::new(0)));
    }

    #[test]
    fn capacity_overflow_still_flushes() {
        let mut c = PreemptiveFlushCache::new(
            300,
            PhaseDetector {
                min_insertions: u64::MAX, // detector disabled
                ..detector()
            },
        );
        c.insert(rec(1, 150), Time::ZERO).unwrap();
        c.insert(rec(2, 150), Time::ZERO).unwrap();
        let report = c.insert(rec(3, 150), Time::ZERO).unwrap();
        assert_eq!(report.evicted.len(), 2);
        assert_eq!(c.flush_count(), 1);
    }

    #[test]
    fn pinned_traces_survive_phase_flush() {
        let mut c = PreemptiveFlushCache::new(1 << 20, detector());
        for i in 0..32u64 {
            c.insert(rec(i, 100), Time::from_micros(i * 1000)).unwrap();
        }
        c.set_pinned(TraceId::new(5), true);
        for i in 0..16u64 {
            c.insert(rec(1000 + i, 100), Time::from_micros(32_000 + i))
                .unwrap();
        }
        assert!(c.flush_count() >= 1);
        assert!(c.contains(TraceId::new(5)), "pinned trace must survive");
    }

    #[test]
    fn detector_needs_warmup() {
        let mut c = PreemptiveFlushCache::new(1 << 20, detector());
        // A burst right at the start must NOT flush (min_insertions).
        for i in 0..15u64 {
            c.insert(rec(i, 100), Time::from_micros(i)).unwrap();
        }
        assert_eq!(c.flush_count(), 0);
    }
}
