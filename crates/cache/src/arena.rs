//! Internal arena bookkeeping shared by the placement-based caches.
//!
//! A code cache is a contiguous region of memory holding variable-size
//! trace bodies. The simulator does not store actual code bytes; it tracks
//! entry *extents* so that placement, holes, and fragmentation behave
//! exactly as they would in a real cache.

use std::collections::{BTreeMap, HashMap};

use gencache_program::Time;

use crate::cache::FragmentationReport;
use crate::record::{EntryInfo, TraceId, TraceRecord};

/// Extent bookkeeping for one cache region.
///
/// Invariants (checked in debug builds, exercised by property tests):
/// * entry extents never overlap;
/// * `used` equals the sum of resident entry sizes;
/// * `by_offset` and `entries` index the same set of traces.
#[derive(Debug, Clone, Default)]
pub(crate) struct Arena {
    by_offset: BTreeMap<u64, TraceId>,
    entries: HashMap<TraceId, EntryInfo>,
    used: u64,
}

impl Arena {
    pub(crate) fn new() -> Self {
        Arena::default()
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn used_bytes(&self) -> u64 {
        self.used
    }

    pub(crate) fn contains(&self, id: TraceId) -> bool {
        self.entries.contains_key(&id)
    }

    pub(crate) fn entry(&self, id: TraceId) -> Option<&EntryInfo> {
        self.entries.get(&id)
    }

    pub(crate) fn entry_mut(&mut self, id: TraceId) -> Option<&mut EntryInfo> {
        self.entries.get_mut(&id)
    }

    /// Places `rec` at `offset`, which the caller must have verified free.
    pub(crate) fn place(&mut self, rec: TraceRecord, offset: u64, now: Time) -> EntryInfo {
        debug_assert!(
            self.first_overlapping(offset, offset + u64::from(rec.size_bytes))
                .is_none(),
            "placement overlaps a live entry"
        );
        debug_assert!(
            !self.entries.contains_key(&rec.id),
            "trace already resident"
        );
        let info = EntryInfo {
            record: rec,
            offset,
            pinned: false,
            access_count: 0,
            insert_time: now,
            last_access: now,
        };
        self.by_offset.insert(offset, rec.id);
        self.entries.insert(rec.id, info);
        self.used += u64::from(rec.size_bytes);
        info
    }

    /// Removes an entry, returning its final metadata.
    pub(crate) fn remove(&mut self, id: TraceId) -> Option<EntryInfo> {
        let info = self.entries.remove(&id)?;
        self.by_offset.remove(&info.offset);
        self.used -= u64::from(info.record.size_bytes);
        Some(info)
    }

    /// Moves a resident entry to `new_offset`, preserving all metadata
    /// (access counts, pin state, timestamps). The caller must have
    /// verified the destination free of *other* entries.
    pub(crate) fn move_entry(&mut self, id: TraceId, new_offset: u64) {
        let Some(info) = self.entries.get_mut(&id) else {
            panic!("move of non-resident trace {id}");
        };
        let old_offset = info.offset;
        if old_offset == new_offset {
            return;
        }
        info.offset = new_offset;
        self.by_offset.remove(&old_offset);
        self.by_offset.insert(new_offset, id);
    }

    /// The first entry (in offset order) whose extent overlaps
    /// `[start, end)`.
    pub(crate) fn first_overlapping(&self, start: u64, end: u64) -> Option<TraceId> {
        if start >= end {
            return None;
        }
        if let Some((_, id)) = self.by_offset.range(..start).next_back() {
            if self.entries[id].end_offset() > start {
                return Some(*id);
            }
        }
        self.by_offset.range(start..end).next().map(|(_, id)| *id)
    }

    /// Free gaps within `[0, capacity)`, as `(offset, len)` pairs in offset
    /// order. Used for first-fit placement and fragmentation reporting.
    pub(crate) fn free_gaps(&self, capacity: u64) -> Vec<(u64, u64)> {
        let mut gaps = Vec::new();
        let mut cursor = 0u64;
        for (&offset, id) in &self.by_offset {
            if offset > cursor {
                gaps.push((cursor, offset - cursor));
            }
            cursor = cursor.max(self.entries[id].end_offset());
        }
        if capacity > cursor {
            gaps.push((cursor, capacity - cursor));
        }
        gaps
    }

    /// Fragmentation snapshot over `[0, capacity)`.
    pub(crate) fn fragmentation(&self, capacity: u64) -> FragmentationReport {
        let gaps = self.free_gaps(capacity);
        FragmentationReport {
            free_bytes: gaps.iter().map(|(_, len)| len).sum(),
            largest_gap: gaps.iter().map(|&(_, len)| len).max().unwrap_or(0),
            gap_count: gaps.len(),
        }
    }

    /// Total bytes currently pinned (undeletable).
    pub(crate) fn pinned_bytes(&self) -> u64 {
        self.iter_by_offset()
            .filter(|e| e.pinned)
            .map(|e| u64::from(e.size_bytes()))
            .sum()
    }

    /// Iterates over entries in offset order.
    pub(crate) fn iter_by_offset(&self) -> impl Iterator<Item = &EntryInfo> {
        self.by_offset.values().map(move |id| &self.entries[id])
    }

    /// All resident trace ids (unordered).
    pub(crate) fn ids(&self) -> Vec<TraceId> {
        self.entries.keys().copied().collect()
    }

    /// One past the highest used offset (the bump-allocation watermark).
    pub(crate) fn high_watermark(&self) -> u64 {
        self.by_offset
            .iter()
            .next_back()
            .map(|(_, id)| self.entries[id].end_offset())
            .unwrap_or(0)
    }

    /// Debug-only structural validation.
    #[cfg(test)]
    pub(crate) fn check_invariants(&self) {
        assert_eq!(self.by_offset.len(), self.entries.len());
        let mut prev_end = 0u64;
        let mut total = 0u64;
        for (&offset, id) in &self.by_offset {
            let e = &self.entries[id];
            assert_eq!(e.offset, offset);
            assert!(offset >= prev_end, "entries overlap");
            prev_end = e.end_offset();
            total += u64::from(e.record.size_bytes);
        }
        assert_eq!(total, self.used);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_program::Addr;

    fn rec(id: u64, size: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(id), size, Addr::new(0x1000 + id))
    }

    #[test]
    fn place_and_remove() {
        let mut a = Arena::new();
        a.place(rec(1, 100), 0, Time::ZERO);
        a.place(rec(2, 50), 100, Time::ZERO);
        a.check_invariants();
        assert_eq!(a.used_bytes(), 150);
        assert_eq!(a.len(), 2);
        let removed = a.remove(TraceId::new(1)).unwrap();
        assert_eq!(removed.offset, 0);
        assert_eq!(a.used_bytes(), 50);
        a.check_invariants();
        assert!(a.remove(TraceId::new(1)).is_none());
    }

    #[test]
    fn overlap_queries() {
        let mut a = Arena::new();
        a.place(rec(1, 100), 0, Time::ZERO); // [0,100)
        a.place(rec(2, 50), 200, Time::ZERO); // [200,250)
        assert_eq!(a.first_overlapping(50, 60), Some(TraceId::new(1)));
        assert_eq!(a.first_overlapping(100, 200), None);
        assert_eq!(a.first_overlapping(150, 220), Some(TraceId::new(2)));
        assert_eq!(a.first_overlapping(0, 0), None);
    }

    #[test]
    fn free_gap_computation() {
        let mut a = Arena::new();
        assert_eq!(a.free_gaps(100), vec![(0, 100)]);
        a.place(rec(1, 20), 10, Time::ZERO); // [10,30)
        a.place(rec(2, 30), 50, Time::ZERO); // [50,80)
        assert_eq!(a.free_gaps(100), vec![(0, 10), (30, 20), (80, 20)]);
        a.remove(TraceId::new(1)).unwrap();
        assert_eq!(a.free_gaps(100), vec![(0, 50), (80, 20)]);
    }

    #[test]
    fn watermark_tracks_highest_end() {
        let mut a = Arena::new();
        assert_eq!(a.high_watermark(), 0);
        a.place(rec(1, 20), 10, Time::ZERO);
        a.place(rec(2, 5), 100, Time::ZERO);
        assert_eq!(a.high_watermark(), 105);
        a.remove(TraceId::new(2)).unwrap();
        assert_eq!(a.high_watermark(), 30);
    }

    #[test]
    fn iteration_in_offset_order() {
        let mut a = Arena::new();
        a.place(rec(2, 5), 100, Time::ZERO);
        a.place(rec(1, 20), 10, Time::ZERO);
        let order: Vec<_> = a.iter_by_offset().map(|e| e.id()).collect();
        assert_eq!(order, vec![TraceId::new(1), TraceId::new(2)]);
    }
}
