//! A least-recently-used local policy, for comparison with the paper's
//! pseudo-circular buffer.
//!
//! Prior work (Hazelwood & Smith, INTERACT 2002 [12]) found LRU inferior
//! to a circular buffer for code caches: because evicted entries are
//! scattered across the arena rather than contiguous at a pointer, LRU
//! introduces fragmentation and requires a placement search. This
//! implementation models those costs faithfully: insertion evicts
//! least-recently-used entries one at a time until a *contiguous*
//! first-fit gap exists.

use std::collections::{BTreeSet, HashMap};

use gencache_program::Time;

use crate::arena::Arena;
use crate::cache::{CodeCache, FragmentationReport, InsertError, InsertReport};
use crate::record::{EntryInfo, Evicted, EvictionCause, TraceId, TraceRecord};
use crate::stats::CacheStats;

/// A fixed-capacity code cache managed by LRU replacement with first-fit
/// placement.
///
/// # Examples
///
/// ```
/// use gencache_cache::{CodeCache, LruCache, TraceId, TraceRecord};
/// use gencache_program::{Addr, Time};
///
/// let mut cache = LruCache::new(100);
/// cache.insert(TraceRecord::new(TraceId::new(1), 60, Addr::new(0x1)), Time::ZERO)?;
/// cache.insert(TraceRecord::new(TraceId::new(2), 30, Addr::new(0x2)), Time::ZERO)?;
/// // Touching trace 1 protects it; the next insert evicts trace 2.
/// cache.touch(TraceId::new(1), Time::from_micros(10));
/// let report = cache.insert(
///     TraceRecord::new(TraceId::new(3), 40, Addr::new(0x3)),
///     Time::from_micros(20),
/// )?;
/// assert_eq!(report.evicted[0].id(), TraceId::new(2));
/// # Ok::<(), gencache_cache::InsertError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LruCache {
    arena: Arena,
    capacity: u64,
    /// Recency index: `(tick of last use, id)`; the smallest element is the
    /// least recently used. Ticks are unique per operation so ties cannot
    /// occur.
    recency: BTreeSet<(u64, TraceId)>,
    /// Each resident trace's current tick, so its `recency` key can be
    /// located in O(log n).
    id_ticks: HashMap<TraceId, u64>,
    tick: u64,
    stats: CacheStats,
    /// Auto-defragment on placement failure once the fragmentation ratio
    /// exceeds this threshold; `None` disables compaction.
    defrag_threshold: Option<f64>,
    defrag_runs: u64,
    defrag_moved_bytes: u64,
}

impl LruCache {
    /// Creates a cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        LruCache {
            arena: Arena::new(),
            capacity,
            recency: BTreeSet::new(),
            id_ticks: HashMap::new(),
            tick: 0,
            stats: CacheStats::default(),
            defrag_threshold: None,
            defrag_runs: 0,
            defrag_moved_bytes: 0,
        }
    }

    /// Enables automatic compaction: when an insertion finds no
    /// contiguous gap and the fragmentation ratio exceeds `threshold`,
    /// the cache is defragmented before any eviction. This is the
    /// "defragmentation step" design alternative of Section 4.2 — it
    /// saves evictions at the price of relocating (and re-fixing-up)
    /// live traces.
    pub fn with_defrag_threshold(capacity: u64, threshold: f64) -> Self {
        let mut cache = LruCache::new(capacity);
        cache.defrag_threshold = Some(threshold);
        cache
    }

    /// Number of compaction passes run so far.
    pub fn defrag_runs(&self) -> u64 {
        self.defrag_runs
    }

    /// Total bytes relocated by compaction passes (each relocated byte
    /// implies fix-up work, costed like a promotion by callers).
    pub fn defrag_moved_bytes(&self) -> u64 {
        self.defrag_moved_bytes
    }

    /// Compacts entries toward offset zero, coalescing free gaps.
    /// Pinned (undeletable) traces cannot be moved — an exception may
    /// resume inside them — so they stay put and compaction packs the
    /// movable entries around them. Returns the number of bytes moved.
    pub fn defragment(&mut self) -> u64 {
        let order: Vec<(TraceId, u64, u32, bool)> = self
            .arena
            .iter_by_offset()
            .map(|e| (e.id(), e.offset, e.size_bytes(), e.pinned))
            .collect();
        let mut cursor = 0u64;
        let mut moved = 0u64;
        for (id, offset, size, pinned) in order {
            if pinned {
                // An immovable barrier: skip past it. Entries before it
                // were already packed below `offset`, so no overlap.
                cursor = offset + u64::from(size);
                continue;
            }
            if offset != cursor {
                self.arena.move_entry(id, cursor);
                moved += u64::from(size);
            }
            cursor += u64::from(size);
        }
        self.defrag_runs += 1;
        self.defrag_moved_bytes += moved;
        moved
    }

    /// Marks `id` as most recently used.
    fn bump_recency(&mut self, id: TraceId) {
        if let Some(t) = self.id_ticks.remove(&id) {
            self.recency.remove(&(t, id));
        }
        self.tick += 1;
        self.recency.insert((self.tick, id));
        self.id_ticks.insert(id, self.tick);
    }

    fn remove_from_recency(&mut self, id: TraceId) {
        if let Some(t) = self.id_ticks.remove(&id) {
            self.recency.remove(&(t, id));
        }
    }

    /// First-fit search: the lowest-offset free gap of at least `size`.
    fn first_fit(&self, size: u64) -> Option<u64> {
        self.arena
            .free_gaps(self.capacity)
            .into_iter()
            .find(|&(_, len)| len >= size)
            .map(|(offset, _)| offset)
    }

    /// The least-recently-used unpinned entry.
    fn lru_victim(&self) -> Option<TraceId> {
        self.recency
            .iter()
            .map(|&(_, id)| id)
            .find(|id| self.arena.entry(*id).is_some_and(|e| !e.pinned))
    }
}

impl CodeCache for LruCache {
    fn capacity(&self) -> Option<u64> {
        Some(self.capacity)
    }

    fn used_bytes(&self) -> u64 {
        self.arena.used_bytes()
    }

    fn len(&self) -> usize {
        self.arena.len()
    }

    fn contains(&self, id: TraceId) -> bool {
        self.arena.contains(id)
    }

    fn entry(&self, id: TraceId) -> Option<EntryInfo> {
        self.arena.entry(id).copied()
    }

    fn touch(&mut self, id: TraceId, now: Time) -> bool {
        match self.arena.entry_mut(id) {
            Some(e) => {
                e.access_count += 1;
                e.last_access = now;
            }
            None => return false,
        }
        self.bump_recency(id);
        self.stats.hits += 1;
        true
    }

    fn insert(&mut self, rec: TraceRecord, now: Time) -> Result<InsertReport, InsertError> {
        let size = u64::from(rec.size_bytes);
        if size > self.capacity {
            return Err(InsertError::TraceTooLarge {
                size: rec.size_bytes,
                capacity: self.capacity,
            });
        }
        if self.arena.contains(rec.id) {
            return Err(InsertError::AlreadyResident(rec.id));
        }

        let mut evicted = Vec::new();
        // Compaction can run at most once per insertion: if it fails to
        // produce a big-enough gap (pinned barriers), fall through to
        // eviction instead of compacting forever.
        let mut defrag_tried = false;
        let offset = loop {
            if let Some(offset) = self.first_fit(size) {
                break offset;
            }
            // Free space may be sufficient but shattered: compact first
            // when configured to, instead of evicting live traces.
            if let Some(threshold) = self.defrag_threshold {
                let frag = self.fragmentation();
                if !defrag_tried
                    && frag.free_bytes >= size
                    && frag.fragmentation_ratio() > threshold
                {
                    defrag_tried = true;
                    self.defragment();
                    continue;
                }
            }
            let Some(victim) = self.lru_victim() else {
                return Err(InsertError::NoSpace {
                    size: rec.size_bytes,
                    pinned_bytes: self.arena.pinned_bytes(),
                });
            };
            let info = self.arena.remove(victim).expect("victim resident");
            self.remove_from_recency(victim);
            self.stats
                .on_remove(u64::from(info.size_bytes()), EvictionCause::Capacity);
            evicted.push(Evicted {
                entry: info,
                cause: EvictionCause::Capacity,
            });
        };

        self.arena.place(rec, offset, now);
        self.bump_recency(rec.id);
        self.stats.on_insert(size, self.arena.used_bytes());
        self.stats.debug_assert_identity(self.arena.len() as u64);
        Ok(InsertReport::new(evicted, offset))
    }

    fn remove(&mut self, id: TraceId, cause: EvictionCause) -> Option<EntryInfo> {
        let info = self.arena.remove(id)?;
        self.remove_from_recency(id);
        self.stats.on_remove(u64::from(info.size_bytes()), cause);
        self.stats.debug_assert_identity(self.arena.len() as u64);
        Some(info)
    }

    fn set_pinned(&mut self, id: TraceId, pinned: bool) -> bool {
        match self.arena.entry_mut(id) {
            Some(e) => {
                e.pinned = pinned;
                true
            }
            None => false,
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn fragmentation(&self) -> FragmentationReport {
        self.arena.fragmentation(self.capacity)
    }

    fn trace_ids(&self) -> Vec<TraceId> {
        self.arena.ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_program::Addr;

    fn rec(id: u64, size: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(id), size, Addr::new(0x1000 + id * 0x100))
    }

    fn ids(report: &InsertReport) -> Vec<u64> {
        report.evicted.iter().map(|e| e.id().as_u64()).collect()
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(100);
        c.insert(rec(1, 40), Time::ZERO).unwrap();
        c.insert(rec(2, 40), Time::ZERO).unwrap();
        // Refresh trace 1 so trace 2 becomes the LRU victim.
        c.touch(TraceId::new(1), Time::from_micros(1));
        let report = c.insert(rec(3, 40), Time::from_micros(2)).unwrap();
        assert_eq!(ids(&report), vec![2]);
        assert!(c.contains(TraceId::new(1)));
    }

    #[test]
    fn insertion_counts_as_use() {
        let mut c = LruCache::new(100);
        c.insert(rec(1, 50), Time::ZERO).unwrap();
        c.insert(rec(2, 50), Time::ZERO).unwrap();
        // Without touches, trace 1 (inserted first) is the victim.
        let report = c.insert(rec(3, 50), Time::ZERO).unwrap();
        assert_eq!(ids(&report), vec![1]);
    }

    #[test]
    fn may_evict_multiple_for_contiguity() {
        let mut c = LruCache::new(100);
        c.insert(rec(1, 30), Time::ZERO).unwrap(); // [0,30)
        c.insert(rec(2, 30), Time::ZERO).unwrap(); // [30,60)
        c.insert(rec(3, 40), Time::ZERO).unwrap(); // [60,100)
                                                   // A 50-byte insert needs two adjacent victims: 1 and 2 are the two
                                                   // least recently used and happen to be adjacent.
        let report = c.insert(rec(4, 50), Time::ZERO).unwrap();
        assert_eq!(ids(&report), vec![1, 2]);
        assert_eq!(report.offset, 0);
    }

    #[test]
    fn lru_fragmentation_from_scattered_evictions() {
        let mut c = LruCache::new(120);
        c.insert(rec(1, 40), Time::ZERO).unwrap(); // [0,40)
        c.insert(rec(2, 40), Time::ZERO).unwrap(); // [40,80)
        c.insert(rec(3, 40), Time::ZERO).unwrap(); // [80,120)
                                                   // Make trace 2 the MRU; victims 1 then 3 leave *two* scattered
                                                   // holes when a 41-byte insert cannot use either alone.
        c.touch(TraceId::new(2), Time::from_micros(1));
        c.touch(TraceId::new(1), Time::from_micros(2));
        // LRU order now: 3, 2(?) — actually 3 is oldest, then 2, then 1.
        let report = c.insert(rec(4, 41), Time::from_micros(3)).unwrap();
        // Victim 3 leaves [80,120): 40 bytes, not enough. Victim 2 leaves
        // [40,120): 80 bytes, enough; placed at 40.
        assert_eq!(ids(&report), vec![3, 2]);
        assert_eq!(report.offset, 40);
    }

    #[test]
    fn pinned_entries_skipped() {
        let mut c = LruCache::new(100);
        c.insert(rec(1, 50), Time::ZERO).unwrap();
        c.insert(rec(2, 50), Time::ZERO).unwrap();
        c.set_pinned(TraceId::new(1), true);
        let report = c.insert(rec(3, 50), Time::ZERO).unwrap();
        assert_eq!(ids(&report), vec![2]);
        assert!(c.contains(TraceId::new(1)));
    }

    #[test]
    fn no_space_when_all_pinned() {
        let mut c = LruCache::new(100);
        c.insert(rec(1, 100), Time::ZERO).unwrap();
        c.set_pinned(TraceId::new(1), true);
        assert!(matches!(
            c.insert(rec(2, 10), Time::ZERO),
            Err(InsertError::NoSpace {
                pinned_bytes: 100,
                ..
            })
        ));
    }

    #[test]
    fn forced_removal_cleans_recency() {
        let mut c = LruCache::new(100);
        c.insert(rec(1, 40), Time::ZERO).unwrap();
        c.remove(TraceId::new(1), EvictionCause::Unmapped).unwrap();
        assert!(!c.contains(TraceId::new(1)));
        // Reinsertion works fine after the indices were cleaned.
        c.insert(rec(1, 40), Time::ZERO).unwrap();
        assert!(c.touch(TraceId::new(1), Time::ZERO));
    }

    #[test]
    fn basic_errors() {
        let mut c = LruCache::new(50);
        assert!(matches!(
            c.insert(rec(1, 51), Time::ZERO),
            Err(InsertError::TraceTooLarge { .. })
        ));
        c.insert(rec(1, 10), Time::ZERO).unwrap();
        assert!(matches!(
            c.insert(rec(1, 10), Time::ZERO),
            Err(InsertError::AlreadyResident(_))
        ));
    }

    #[test]
    fn holes_are_reused_first_fit() {
        let mut c = LruCache::new(100);
        c.insert(rec(1, 30), Time::ZERO).unwrap(); // [0,30)
        c.insert(rec(2, 30), Time::ZERO).unwrap(); // [30,60)
        c.remove(TraceId::new(1), EvictionCause::Unmapped).unwrap();
        // First fit places the new 20-byte trace in the hole at 0.
        let report = c.insert(rec(3, 20), Time::ZERO).unwrap();
        assert!(report.evicted.is_empty());
        assert_eq!(report.offset, 0);
    }
}

#[cfg(test)]
mod defrag_tests {
    use super::*;
    use gencache_program::Addr;

    fn rec(id: u64, size: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(id), size, Addr::new(0x1000 + id * 0x100))
    }

    #[test]
    fn manual_defragment_coalesces_holes() {
        let mut c = LruCache::new(120);
        c.insert(rec(1, 30), Time::ZERO).unwrap(); // [0,30)
        c.insert(rec(2, 30), Time::ZERO).unwrap(); // [30,60)
        c.insert(rec(3, 30), Time::ZERO).unwrap(); // [60,90)
        c.remove(TraceId::new(2), EvictionCause::Unmapped).unwrap();
        assert_eq!(c.fragmentation().gap_count, 2);

        let moved = c.defragment();
        assert_eq!(moved, 30, "trace 3 slides down into the hole");
        let frag = c.fragmentation();
        assert_eq!(frag.gap_count, 1);
        assert_eq!(frag.largest_gap, 60);
        // Metadata survived the move.
        assert_eq!(c.entry(TraceId::new(3)).unwrap().offset, 30);
        assert_eq!(c.defrag_runs(), 1);
        assert_eq!(c.defrag_moved_bytes(), 30);
    }

    #[test]
    fn pinned_entries_anchor_compaction() {
        let mut c = LruCache::new(200);
        c.insert(rec(1, 30), Time::ZERO).unwrap(); // [0,30)
        c.insert(rec(2, 30), Time::ZERO).unwrap(); // [30,60)
        c.insert(rec(3, 30), Time::ZERO).unwrap(); // [60,90)
        c.insert(rec(4, 30), Time::ZERO).unwrap(); // [90,120)
        c.remove(TraceId::new(1), EvictionCause::Unmapped).unwrap();
        c.remove(TraceId::new(3), EvictionCause::Unmapped).unwrap();
        c.set_pinned(TraceId::new(2), true);

        c.defragment();
        // Trace 2 stayed at 30; trace 4 packed right after it.
        assert_eq!(c.entry(TraceId::new(2)).unwrap().offset, 30);
        assert_eq!(c.entry(TraceId::new(4)).unwrap().offset, 60);
    }

    #[test]
    fn pinned_barrier_cannot_stall_auto_defrag() {
        // Regression: when compaction cannot produce a large-enough gap
        // because a pinned trace splits the free space, insertion must
        // fall back to eviction (or report no-space) rather than
        // compacting forever.
        let mut c = LruCache::with_defrag_threshold(120, 0.1);
        c.insert(rec(1, 40), Time::ZERO).unwrap(); // [0,40)
        c.insert(rec(2, 40), Time::ZERO).unwrap(); // [40,80)
        c.insert(rec(3, 40), Time::ZERO).unwrap(); // [80,120)
        c.remove(TraceId::new(1), EvictionCause::Unmapped).unwrap();
        c.remove(TraceId::new(3), EvictionCause::Unmapped).unwrap();
        c.set_pinned(TraceId::new(2), true);
        // Free space is 80 bytes but pinned trace 2 splits it 40/40; a
        // 60-byte insert cannot fit even after compaction, and the only
        // unpinned candidate set is empty.
        let err = c.insert(rec(9, 60), Time::ZERO).unwrap_err();
        assert!(matches!(
            err,
            InsertError::NoSpace {
                pinned_bytes: 40,
                ..
            }
        ));
        assert_eq!(c.defrag_runs(), 1, "compaction attempted exactly once");
    }

    #[test]
    fn auto_defrag_avoids_evictions() {
        // Two caches under identical load: plain LRU must evict to find
        // contiguous space; the defragmenting one compacts instead.
        let mut plain = LruCache::new(120);
        let mut compacting = LruCache::with_defrag_threshold(120, 0.1);
        for cache in [&mut plain, &mut compacting] {
            cache.insert(rec(1, 40), Time::ZERO).unwrap(); // [0,40)
            cache.insert(rec(2, 40), Time::ZERO).unwrap(); // [40,80)
            cache.insert(rec(3, 40), Time::ZERO).unwrap(); // [80,120)
            cache
                .remove(TraceId::new(1), EvictionCause::Unmapped)
                .unwrap();
            cache
                .remove(TraceId::new(3), EvictionCause::Unmapped)
                .unwrap();
            // Free: [0,40) and [80,120) — 80 bytes, but no 60-byte gap.
        }
        let report = plain.insert(rec(9, 60), Time::ZERO).unwrap();
        assert_eq!(report.evicted.len(), 1, "plain LRU evicts trace 2");

        let report = compacting.insert(rec(9, 60), Time::ZERO).unwrap();
        assert!(report.evicted.is_empty(), "compaction finds the space");
        assert_eq!(compacting.defrag_runs(), 1);
        assert!(compacting.contains(TraceId::new(2)));
    }
}
