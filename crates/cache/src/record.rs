//! Trace identity and cache-entry metadata.

use std::fmt;

use gencache_program::{Addr, Time};
use serde::{Deserialize, Serialize};

/// A unique identifier for a code trace, assigned at trace-generation time
/// and stable for the life of the program run (a regenerated trace after a
/// cache miss keeps its id, because it is the same application code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TraceId(u64);

impl TraceId {
    /// Creates a trace id from a raw value.
    pub const fn new(raw: u64) -> Self {
        TraceId(raw)
    }

    /// The raw numeric value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// What a cache needs to know to store a trace: its identity, its size in
/// bytes (code caches are managed in bytes, not entry counts), and the
/// application address of its entry point (used to find traces whose
/// source memory was unmapped).
///
/// # Examples
///
/// ```
/// use gencache_cache::{TraceId, TraceRecord};
/// use gencache_program::Addr;
///
/// let rec = TraceRecord::new(TraceId::new(7), 242, Addr::new(0x40_1000));
/// assert_eq!(rec.size_bytes, 242);
/// assert_eq!(rec.id.to_string(), "T7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The trace's identity.
    pub id: TraceId,
    /// Encoded size of the trace body in bytes.
    pub size_bytes: u32,
    /// Guest address of the trace head.
    pub head: Addr,
}

impl TraceRecord {
    /// Convenience constructor.
    pub fn new(id: TraceId, size_bytes: u32, head: Addr) -> Self {
        TraceRecord {
            id,
            size_bytes,
            head,
        }
    }
}

/// A live cache entry: the stored trace plus management metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntryInfo {
    /// The stored trace.
    pub record: TraceRecord,
    /// Byte offset of the entry within its cache arena.
    pub offset: u64,
    /// `true` while the trace must not be evicted (e.g. an exception is
    /// being handled inside it — Section 4.2 "undeletable traces").
    pub pinned: bool,
    /// Number of times the entry was executed while resident. Reset when
    /// a trace enters the probation cache — the Figure 8 counter measures
    /// probation-time executions only — but carried cumulatively into the
    /// persistent cache, where it records total hotness.
    pub access_count: u64,
    /// When the entry was inserted. Carried across promotion into the
    /// persistent cache, so lifetimes span the whole hierarchy.
    pub insert_time: Time,
    /// When the entry was last executed in this cache.
    pub last_access: Time,
}

impl EntryInfo {
    /// The entry's size in bytes (shorthand for `record.size_bytes`).
    pub fn size_bytes(&self) -> u32 {
        self.record.size_bytes
    }

    /// The entry's trace id (shorthand for `record.id`).
    pub fn id(&self) -> TraceId {
        self.record.id
    }

    /// One past the entry's final byte offset in the arena.
    pub fn end_offset(&self) -> u64 {
        self.offset + u64::from(self.record.size_bytes)
    }
}

/// Why an entry left a cache. Distinguishing these matters both for stats
/// (Figure 4 separates unmap deletions) and for the generational manager
/// (only capacity evictions are promotion candidates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictionCause {
    /// Evicted by the replacement policy to make room for an insertion.
    Capacity,
    /// Deleted because the program unmapped the memory the trace came from.
    Unmapped,
    /// Deleted by an explicit management decision (e.g. a probation trace
    /// that failed to reach the promotion threshold).
    Discarded,
    /// Removed by a whole-cache flush (flush-on-full or preemptive
    /// phase-change flushing, Section 5.2).
    Flush,
    /// Removed from this cache because it was promoted to another cache
    /// in a generational hierarchy.
    Promoted,
}

/// An entry that was removed from a cache, with the cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evicted {
    /// The removed entry's final metadata.
    pub entry: EntryInfo,
    /// Why it was removed.
    pub cause: EvictionCause,
}

impl Evicted {
    /// The victim's size in bytes (shorthand for `entry.size_bytes()`).
    pub fn size_bytes(&self) -> u32 {
        self.entry.size_bytes()
    }

    /// The victim's trace id (shorthand for `entry.id()`).
    pub fn id(&self) -> TraceId {
        self.entry.id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_display() {
        assert_eq!(TraceId::new(42).to_string(), "T42");
        assert_eq!(TraceId::new(42).as_u64(), 42);
    }

    #[test]
    fn entry_end_offset() {
        let e = EntryInfo {
            record: TraceRecord::new(TraceId::new(1), 100, Addr::new(0x1000)),
            offset: 250,
            pinned: false,
            access_count: 0,
            insert_time: Time::ZERO,
            last_access: Time::ZERO,
        };
        assert_eq!(e.end_offset(), 350);
        assert_eq!(e.size_bytes(), 100);
        assert_eq!(e.id(), TraceId::new(1));
    }
}
