//! The pseudo-circular local replacement policy (Section 4.3).
//!
//! From a distance the cache behaves as a circular FIFO buffer: a single
//! *cache pointer* marks the next insertion point, and inserting a new
//! trace evicts zero or more existing traces that occupy the bytes the new
//! trace needs. Two deviations make it "pseudo":
//!
//! * **Undeletable traces.** When an eviction candidate is pinned, the
//!   pointer resets to just past the pinned trace and the eviction scan
//!   restarts there.
//! * **Program-forced evictions.** Unmap deletions punch holes anywhere in
//!   the buffer; the policy ignores them (no hole list) and simply reuses
//!   the space when the pointer next sweeps past.

use gencache_program::Time;

use crate::arena::Arena;
use crate::cache::{CodeCache, FragmentationReport, InsertError, InsertReport};
use crate::record::{EntryInfo, Evicted, EvictionCause, TraceId, TraceRecord};
use crate::stats::CacheStats;

/// A fixed-capacity code cache managed by the pseudo-circular policy.
///
/// # Examples
///
/// ```
/// use gencache_cache::{CodeCache, PseudoCircularCache, TraceId, TraceRecord};
/// use gencache_program::{Addr, Time};
///
/// let mut cache = PseudoCircularCache::new(1024);
/// let rec = TraceRecord::new(TraceId::new(1), 300, Addr::new(0x1000));
/// let report = cache.insert(rec, Time::ZERO)?;
/// assert!(report.evicted.is_empty());
/// assert!(cache.contains(TraceId::new(1)));
/// # Ok::<(), gencache_cache::InsertError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PseudoCircularCache {
    arena: Arena,
    capacity: u64,
    pointer: u64,
    stats: CacheStats,
}

impl PseudoCircularCache {
    /// Creates a cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        PseudoCircularCache {
            arena: Arena::new(),
            capacity,
            pointer: 0,
            stats: CacheStats::default(),
        }
    }

    /// The current insertion/eviction pointer offset, exposed for tests
    /// and diagnostics.
    pub fn pointer(&self) -> u64 {
        self.pointer
    }

    /// Inserts a trace promoted from another cache, carrying its
    /// accumulated metadata — access count, original insert time, last
    /// access, pin state — instead of starting fresh. This keeps hotness
    /// and lifetime accounting cumulative across a generational
    /// hierarchy: a trace's age runs from its first insertion, not from
    /// its latest promotion.
    pub fn insert_promoted(
        &mut self,
        victim: EntryInfo,
        now: Time,
    ) -> Result<InsertReport, InsertError> {
        let report = self.insert(victim.record, now)?;
        let entry = self
            .arena
            .entry_mut(victim.id())
            .expect("entry was just inserted");
        entry.access_count = victim.access_count;
        entry.insert_time = victim.insert_time;
        entry.last_access = victim.last_access.max(entry.last_access);
        entry.pinned = victim.pinned;
        Ok(report)
    }

    /// Evicts every unpinned entry overlapping `[start, end)`, appending
    /// their metadata to `evicted`. Returns the first *pinned* entry found
    /// in the window, if any (the caller must skip past it).
    fn evict_window(
        &mut self,
        start: u64,
        end: u64,
        evicted: &mut Vec<Evicted>,
    ) -> Option<EntryInfo> {
        loop {
            let id = self.arena.first_overlapping(start, end)?;
            let info = *self.arena.entry(id).expect("resident");
            if info.pinned {
                return Some(info);
            }
            self.arena.remove(id);
            self.stats
                .on_remove(u64::from(info.size_bytes()), EvictionCause::Capacity);
            evicted.push(Evicted {
                entry: info,
                cause: EvictionCause::Capacity,
            });
        }
    }
}

impl CodeCache for PseudoCircularCache {
    fn capacity(&self) -> Option<u64> {
        Some(self.capacity)
    }

    fn used_bytes(&self) -> u64 {
        self.arena.used_bytes()
    }

    fn len(&self) -> usize {
        self.arena.len()
    }

    fn contains(&self, id: TraceId) -> bool {
        self.arena.contains(id)
    }

    fn entry(&self, id: TraceId) -> Option<EntryInfo> {
        self.arena.entry(id).copied()
    }

    fn touch(&mut self, id: TraceId, now: Time) -> bool {
        match self.arena.entry_mut(id) {
            Some(e) => {
                e.access_count += 1;
                e.last_access = now;
                self.stats.hits += 1;
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, rec: TraceRecord, now: Time) -> Result<InsertReport, InsertError> {
        let size = u64::from(rec.size_bytes);
        if size > self.capacity {
            return Err(InsertError::TraceTooLarge {
                size: rec.size_bytes,
                capacity: self.capacity,
            });
        }
        if self.arena.contains(rec.id) {
            return Err(InsertError::AlreadyResident(rec.id));
        }

        let mut evicted = Vec::new();
        let mut p = self.pointer;
        let mut wraps = 0u32;
        let mut pointer_resets = 0u32;
        loop {
            // Wrap when the trace cannot fit between the pointer and the
            // end of the buffer. The (oldest) unpinned tail entries are
            // evicted — they were next in FIFO order anyway — and any
            // pinned tail entries are simply skipped by the wrap. The
            // scan must resume past each pinned entry: stopping at the
            // first one would leave unpinned entries beyond it resident,
            // violating FIFO order (they would be older than everything
            // the wrap is about to displace at the front).
            if p + size > self.capacity {
                let mut scan = p;
                while let Some(pinned) = self.evict_window(scan, self.capacity, &mut evicted) {
                    scan = pinned.end_offset();
                    pointer_resets += 1;
                }
                p = 0;
                wraps += 1;
                if wraps > 2 {
                    return Err(InsertError::NoSpace {
                        size: rec.size_bytes,
                        pinned_bytes: self.arena.pinned_bytes(),
                    });
                }
                continue;
            }
            match self.evict_window(p, p + size, &mut evicted) {
                None => break, // window is free
                Some(pinned) => {
                    // Undeletable trace: reset the pointer to just past it
                    // and restart the eviction scan (Section 4.3).
                    p = pinned.end_offset();
                    pointer_resets += 1;
                }
            }
        }

        self.arena.place(rec, p, now);
        self.pointer = p + size;
        self.stats.on_insert(size, self.arena.used_bytes());
        self.stats.debug_assert_identity(self.arena.len() as u64);
        Ok(InsertReport {
            evicted,
            offset: p,
            pointer_resets,
        })
    }

    fn remove(&mut self, id: TraceId, cause: EvictionCause) -> Option<EntryInfo> {
        let info = self.arena.remove(id)?;
        self.stats.on_remove(u64::from(info.size_bytes()), cause);
        self.stats.debug_assert_identity(self.arena.len() as u64);
        Some(info)
    }

    fn set_pinned(&mut self, id: TraceId, pinned: bool) -> bool {
        match self.arena.entry_mut(id) {
            Some(e) => {
                e.pinned = pinned;
                true
            }
            None => false,
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn fragmentation(&self) -> FragmentationReport {
        self.arena.fragmentation(self.capacity)
    }

    fn trace_ids(&self) -> Vec<TraceId> {
        self.arena.ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_program::Addr;

    fn rec(id: u64, size: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(id), size, Addr::new(0x1000 + id * 0x100))
    }

    fn ids(report: &InsertReport) -> Vec<u64> {
        report.evicted.iter().map(|e| e.id().as_u64()).collect()
    }

    #[test]
    fn fills_without_eviction() {
        let mut c = PseudoCircularCache::new(100);
        assert!(c.insert(rec(1, 40), Time::ZERO).unwrap().evicted.is_empty());
        assert!(c.insert(rec(2, 40), Time::ZERO).unwrap().evicted.is_empty());
        assert_eq!(c.used_bytes(), 80);
        assert_eq!(c.pointer(), 80);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn fifo_eviction_order_on_wrap() {
        let mut c = PseudoCircularCache::new(100);
        c.insert(rec(1, 40), Time::ZERO).unwrap(); // [0,40)
        c.insert(rec(2, 40), Time::ZERO).unwrap(); // [40,80)
                                                   // 30 bytes won't fit in the 20-byte tail: tail is free, no tail
                                                   // entries, wrap to 0 and evict trace 1 (the oldest).
        let report = c.insert(rec(3, 30), Time::ZERO).unwrap();
        assert_eq!(ids(&report), vec![1]);
        assert_eq!(report.offset, 0);
        assert!(c.contains(TraceId::new(2)));
        assert!(c.contains(TraceId::new(3)));
    }

    #[test]
    fn eviction_takes_multiple_victims() {
        let mut c = PseudoCircularCache::new(100);
        c.insert(rec(1, 30), Time::ZERO).unwrap();
        c.insert(rec(2, 30), Time::ZERO).unwrap();
        c.insert(rec(3, 30), Time::ZERO).unwrap();
        // Pointer at 90; a 60-byte insert wraps and must displace 1 and 2.
        let report = c.insert(rec(4, 60), Time::ZERO).unwrap();
        assert_eq!(ids(&report), vec![1, 2]);
        assert_eq!(c.used_bytes(), 90);
    }

    #[test]
    fn exact_fit_at_tail_does_not_wrap() {
        let mut c = PseudoCircularCache::new(100);
        c.insert(rec(1, 60), Time::ZERO).unwrap();
        let report = c.insert(rec(2, 40), Time::ZERO).unwrap();
        assert!(report.evicted.is_empty());
        assert_eq!(report.offset, 60);
        assert_eq!(c.pointer(), 100);
        // Next insert wraps to offset 0.
        let report = c.insert(rec(3, 10), Time::ZERO).unwrap();
        assert_eq!(report.offset, 0);
        assert_eq!(ids(&report), vec![1]);
    }

    #[test]
    fn pinned_trace_resets_pointer() {
        let mut c = PseudoCircularCache::new(100);
        c.insert(rec(1, 30), Time::ZERO).unwrap(); // [0,30)
        c.insert(rec(2, 30), Time::ZERO).unwrap(); // [30,60)
        c.insert(rec(3, 40), Time::ZERO).unwrap(); // [60,100)
        assert!(c.set_pinned(TraceId::new(1), true));
        // Wrap: eviction candidate 1 is pinned, so the pointer resets past
        // it and evicts trace 2 instead.
        let report = c.insert(rec(4, 30), Time::ZERO).unwrap();
        assert_eq!(ids(&report), vec![2]);
        assert_eq!(report.offset, 30);
        assert!(c.contains(TraceId::new(1)), "pinned trace must survive");
    }

    #[test]
    fn pinned_tail_survives_wrap() {
        let mut c = PseudoCircularCache::new(100);
        c.insert(rec(1, 40), Time::ZERO).unwrap(); // [0,40)
        c.insert(rec(2, 60), Time::ZERO).unwrap(); // [40,100)
        c.set_pinned(TraceId::new(2), true);
        // Pointer is at 100 ⇒ wraps; trace 2 occupies the tail but is
        // pinned and must survive; trace 1 is evicted.
        let report = c.insert(rec(3, 40), Time::ZERO).unwrap();
        assert_eq!(ids(&report), vec![1]);
        assert_eq!(report.offset, 0);
        assert!(c.contains(TraceId::new(2)));
    }

    #[test]
    fn wrap_evicts_unpinned_entries_beyond_a_pinned_tail_entry() {
        let mut c = PseudoCircularCache::new(100);
        c.insert(rec(1, 30), Time::ZERO).unwrap(); // [0,30)
        c.insert(rec(2, 50), Time::ZERO).unwrap(); // [30,80)
        c.insert(rec(3, 10), Time::ZERO).unwrap(); // [80,90)
        c.insert(rec(4, 10), Time::ZERO).unwrap(); // [90,100)
                                                   // Wrap once so the pointer lands mid-buffer with entries
                                                   // still occupying the tail behind it.
        let report = c.insert(rec(5, 30), Time::ZERO).unwrap();
        assert_eq!(ids(&report), vec![1]);
        assert_eq!(c.pointer(), 30);
        c.set_pinned(TraceId::new(3), true);
        // 75 bytes do not fit in the 70-byte tail ⇒ wrap. The tail scan
        // hits pinned trace 3 at [80,90); it must keep scanning past it
        // and still evict trace 4 at [90,100).
        let report = c.insert(rec(6, 75), Time::ZERO).unwrap();
        assert_eq!(ids(&report), vec![2, 4, 5]);
        assert_eq!(report.offset, 0);
        assert!(c.contains(TraceId::new(3)), "pinned trace must survive");
        assert!(
            !c.contains(TraceId::new(4)),
            "unpinned tail entry beyond the pinned one must not survive the wrap"
        );
    }

    #[test]
    fn fully_pinned_cache_reports_no_space() {
        let mut c = PseudoCircularCache::new(100);
        c.insert(rec(1, 50), Time::ZERO).unwrap();
        c.insert(rec(2, 50), Time::ZERO).unwrap();
        c.set_pinned(TraceId::new(1), true);
        c.set_pinned(TraceId::new(2), true);
        let err = c.insert(rec(3, 60), Time::ZERO).unwrap_err();
        assert_eq!(
            err,
            InsertError::NoSpace {
                size: 60,
                pinned_bytes: 100
            }
        );
    }

    #[test]
    fn oversized_trace_rejected() {
        let mut c = PseudoCircularCache::new(100);
        assert_eq!(
            c.insert(rec(1, 101), Time::ZERO),
            Err(InsertError::TraceTooLarge {
                size: 101,
                capacity: 100
            })
        );
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut c = PseudoCircularCache::new(100);
        c.insert(rec(1, 10), Time::ZERO).unwrap();
        assert_eq!(
            c.insert(rec(1, 10), Time::ZERO),
            Err(InsertError::AlreadyResident(TraceId::new(1)))
        );
    }

    #[test]
    fn forced_deletion_leaves_hole_that_is_reused() {
        let mut c = PseudoCircularCache::new(100);
        c.insert(rec(1, 30), Time::ZERO).unwrap(); // [0,30)
        c.insert(rec(2, 30), Time::ZERO).unwrap(); // [30,60)
        c.insert(rec(3, 40), Time::ZERO).unwrap(); // [60,100)
                                                   // Unmap deletes trace 1 mid-buffer.
        let removed = c.remove(TraceId::new(1), EvictionCause::Unmapped).unwrap();
        assert_eq!(removed.offset, 0);
        let frag = c.fragmentation();
        assert_eq!(frag.free_bytes, 30);
        assert_eq!(frag.gap_count, 1);
        // Pointer still at 100; the next insert wraps to 0 and reuses the
        // hole without evicting anyone (it fits in the hole).
        let report = c.insert(rec(4, 25), Time::ZERO).unwrap();
        assert!(report.evicted.is_empty());
        assert_eq!(report.offset, 0);
    }

    #[test]
    fn insert_promoted_carries_metadata() {
        let mut donor = PseudoCircularCache::new(100);
        donor.insert(rec(1, 40), Time::ZERO).unwrap();
        donor.touch(TraceId::new(1), Time::from_micros(3));
        donor.touch(TraceId::new(1), Time::from_micros(7));
        let victim = donor.remove(TraceId::new(1), EvictionCause::Promoted).unwrap();

        let mut target = PseudoCircularCache::new(100);
        target
            .insert_promoted(victim, Time::from_micros(10))
            .unwrap();
        let e = target.entry(TraceId::new(1)).unwrap();
        assert_eq!(e.access_count, 2, "access count carried over");
        assert_eq!(e.insert_time, Time::ZERO, "original insert time kept");
        assert_eq!(e.last_access, Time::from_micros(10));
        assert!(!e.pinned);
    }

    #[test]
    fn touch_updates_access_metadata() {
        let mut c = PseudoCircularCache::new(100);
        c.insert(rec(1, 10), Time::ZERO).unwrap();
        assert!(c.touch(TraceId::new(1), Time::from_micros(5)));
        assert!(c.touch(TraceId::new(1), Time::from_micros(9)));
        let e = c.entry(TraceId::new(1)).unwrap();
        assert_eq!(e.access_count, 2);
        assert_eq!(e.last_access, Time::from_micros(9));
        assert!(!c.touch(TraceId::new(2), Time::ZERO));
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn stats_track_causes() {
        let mut c = PseudoCircularCache::new(100);
        c.insert(rec(1, 60), Time::ZERO).unwrap();
        c.insert(rec(2, 60), Time::ZERO).unwrap(); // evicts 1
        c.remove(TraceId::new(2), EvictionCause::Unmapped);
        let s = c.stats();
        assert_eq!(s.insertions, 2);
        assert_eq!(s.capacity_evictions, 1);
        assert_eq!(s.capacity_evicted_bytes, 60);
        assert_eq!(s.unmap_deletions, 1);
        assert_eq!(s.peak_used_bytes, 60);
    }

    #[test]
    fn unpin_allows_eviction_again() {
        let mut c = PseudoCircularCache::new(100);
        c.insert(rec(1, 100), Time::ZERO).unwrap();
        c.set_pinned(TraceId::new(1), true);
        assert!(c.insert(rec(2, 50), Time::ZERO).is_err());
        c.set_pinned(TraceId::new(1), false);
        let report = c.insert(rec(2, 50), Time::ZERO).unwrap();
        assert_eq!(ids(&report), vec![1]);
    }

    #[test]
    fn set_pinned_on_missing_trace_is_false() {
        let mut c = PseudoCircularCache::new(100);
        assert!(!c.set_pinned(TraceId::new(1), true));
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut c = PseudoCircularCache::new(0);
        assert!(matches!(
            c.insert(rec(1, 1), Time::ZERO),
            Err(InsertError::TraceTooLarge { .. })
        ));
    }
}
