//! Per-cache statistics.

use serde::{Deserialize, Serialize};

use crate::record::EvictionCause;

/// Counters maintained by every code cache.
///
/// All byte totals count trace body bytes, matching how the paper sizes
/// its caches. `peak_used_bytes` supplies the *maximum code cache size*
/// metric of Figure 1 when gathered from an unbounded cache.
///
/// # Examples
///
/// ```
/// use gencache_cache::{CodeCache, PseudoCircularCache, TraceId, TraceRecord};
/// use gencache_program::{Addr, Time};
///
/// let mut cache = PseudoCircularCache::new(256);
/// cache.insert(TraceRecord::new(TraceId::new(1), 200, Addr::new(1)), Time::ZERO)?;
/// cache.insert(TraceRecord::new(TraceId::new(2), 200, Addr::new(2)), Time::ZERO)?;
/// let stats = cache.stats();
/// assert_eq!(stats.insertions, 2);
/// assert_eq!(stats.capacity_evictions, 1); // trace 1 made way for 2
/// assert_eq!(stats.peak_used_bytes, 200);
/// # Ok::<(), gencache_cache::InsertError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Successful insertions.
    pub insertions: u64,
    /// Total bytes inserted.
    pub inserted_bytes: u64,
    /// Lookups that found their trace resident ([`CodeCache::touch`]).
    ///
    /// [`CodeCache::touch`]: crate::CodeCache::touch
    pub hits: u64,
    /// Entries evicted by the replacement policy.
    pub capacity_evictions: u64,
    /// Bytes evicted by the replacement policy.
    pub capacity_evicted_bytes: u64,
    /// Entries deleted because their source memory was unmapped.
    pub unmap_deletions: u64,
    /// Bytes deleted due to unmapping.
    pub unmap_deleted_bytes: u64,
    /// Entries removed by a whole-cache flush (flush-on-full and
    /// preemptive flushing policies).
    pub flush_evictions: u64,
    /// Bytes removed by whole-cache flushes.
    pub flush_evicted_bytes: u64,
    /// Entries discarded by explicit management decisions.
    pub discards: u64,
    /// Bytes discarded by explicit management decisions.
    pub discarded_bytes: u64,
    /// Entries removed because they were promoted to another cache.
    pub promotions_out: u64,
    /// Bytes promoted out to another cache.
    pub promoted_out_bytes: u64,
    /// High-water mark of resident bytes.
    pub peak_used_bytes: u64,
}

impl CacheStats {
    /// Records an insertion of `bytes`, updating the peak given the new
    /// resident total `used`.
    pub fn on_insert(&mut self, bytes: u64, used: u64) {
        self.insertions += 1;
        self.inserted_bytes += bytes;
        self.peak_used_bytes = self.peak_used_bytes.max(used);
    }

    /// Records a removal of `bytes` with the given cause.
    pub fn on_remove(&mut self, bytes: u64, cause: EvictionCause) {
        match cause {
            EvictionCause::Capacity => {
                self.capacity_evictions += 1;
                self.capacity_evicted_bytes += bytes;
            }
            EvictionCause::Unmapped => {
                self.unmap_deletions += 1;
                self.unmap_deleted_bytes += bytes;
            }
            EvictionCause::Discarded => {
                self.discards += 1;
                self.discarded_bytes += bytes;
            }
            EvictionCause::Promoted => {
                self.promotions_out += 1;
                self.promoted_out_bytes += bytes;
            }
            EvictionCause::Flush => {
                self.flush_evictions += 1;
                self.flush_evicted_bytes += bytes;
            }
        }
    }

    /// All entries removed for any cause.
    pub fn total_removals(&self) -> u64 {
        self.capacity_evictions
            + self.unmap_deletions
            + self.discards
            + self.promotions_out
            + self.flush_evictions
    }

    /// Debug-checks the conservation identity every cache must maintain:
    /// every inserted entry is either still resident or was removed for
    /// exactly one cause (`insertions == resident + all removals`).
    /// Compiles to nothing in release builds.
    #[inline]
    pub fn debug_assert_identity(&self, resident_entries: u64) {
        debug_assert_eq!(
            self.insertions,
            resident_entries + self.total_removals(),
            "cache stats identity violated: {} insertions != {} resident + {} removals",
            self.insertions,
            resident_entries,
            self.total_removals(),
        );
    }

    /// Fraction of inserted bytes that were later deleted because of
    /// unmapped memory — the per-cache quantity behind Figure 4.
    pub fn unmap_deletion_fraction(&self) -> f64 {
        if self.inserted_bytes == 0 {
            0.0
        } else {
            self.unmap_deleted_bytes as f64 / self.inserted_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_updates_peak() {
        let mut s = CacheStats::default();
        s.on_insert(100, 100);
        s.on_insert(50, 150);
        s.on_remove(100, EvictionCause::Capacity);
        s.on_insert(10, 60);
        assert_eq!(s.peak_used_bytes, 150);
        assert_eq!(s.insertions, 3);
        assert_eq!(s.inserted_bytes, 160);
    }

    #[test]
    fn removal_causes_tracked_separately() {
        let mut s = CacheStats::default();
        s.on_remove(10, EvictionCause::Capacity);
        s.on_remove(20, EvictionCause::Unmapped);
        s.on_remove(30, EvictionCause::Discarded);
        assert_eq!(s.capacity_evicted_bytes, 10);
        assert_eq!(s.unmap_deleted_bytes, 20);
        assert_eq!(s.discarded_bytes, 30);
        assert_eq!(s.total_removals(), 3);
    }

    #[test]
    fn unmap_fraction() {
        let mut s = CacheStats::default();
        assert_eq!(s.unmap_deletion_fraction(), 0.0);
        s.on_insert(100, 100);
        s.on_remove(15, EvictionCause::Unmapped);
        assert!((s.unmap_deletion_fraction() - 0.15).abs() < 1e-12);
    }
}
