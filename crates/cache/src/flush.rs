//! A flush-on-full local policy, modeling Dynamo's preemptive flushing.
//!
//! Dynamo [2, 3] reacted to cache pressure (interpreted as a program phase
//! change) by flushing the *entire* code cache and letting the new phase's
//! hot traces repopulate it. This implementation triggers the flush when
//! an insertion cannot fit, which is the bound that preemptive flushing
//! degenerates to under a fixed cache size; it serves as the historical
//! baseline in the local-policy ablation.

use gencache_program::Time;

use crate::arena::Arena;
use crate::cache::{CodeCache, FragmentationReport, InsertError, InsertReport};
use crate::record::{EntryInfo, Evicted, EvictionCause, TraceId, TraceRecord};
use crate::stats::CacheStats;

/// A fixed-capacity code cache that bump-allocates and flushes everything
/// (except pinned traces) when full.
///
/// # Examples
///
/// ```
/// use gencache_cache::{CodeCache, FlushCache, TraceId, TraceRecord};
/// use gencache_program::{Addr, Time};
///
/// let mut cache = FlushCache::new(100);
/// cache.insert(TraceRecord::new(TraceId::new(1), 60, Addr::new(0x1)), Time::ZERO)?;
/// // Overflow: the whole cache is flushed first.
/// let report = cache.insert(
///     TraceRecord::new(TraceId::new(2), 60, Addr::new(0x2)), Time::ZERO)?;
/// assert_eq!(report.evicted.len(), 1);
/// assert_eq!(cache.len(), 1);
/// # Ok::<(), gencache_cache::InsertError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlushCache {
    arena: Arena,
    capacity: u64,
    cursor: u64,
    stats: CacheStats,
    flushes: u64,
}

impl FlushCache {
    /// Creates a cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        FlushCache {
            arena: Arena::new(),
            capacity,
            cursor: 0,
            stats: CacheStats::default(),
            flushes: 0,
        }
    }

    /// Number of whole-cache flushes performed so far.
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// Flushes all unpinned entries, returning them in offset order with
    /// [`EvictionCause::Flush`], and resets the allocation cursor.
    pub fn flush(&mut self) -> Vec<Evicted> {
        let victims: Vec<TraceId> = self
            .arena
            .iter_by_offset()
            .filter(|e| !e.pinned)
            .map(|e| e.id())
            .collect();
        let mut flushed = Vec::with_capacity(victims.len());
        for id in victims {
            let info = self.arena.remove(id).expect("resident");
            self.stats
                .on_remove(u64::from(info.size_bytes()), EvictionCause::Flush);
            flushed.push(Evicted {
                entry: info,
                cause: EvictionCause::Flush,
            });
        }
        self.cursor = 0;
        self.flushes += 1;
        flushed
    }

    /// Finds a cursor position for `size` bytes, skipping pinned entries.
    /// Returns `None` if no position exists even in an otherwise-empty
    /// cache.
    fn find_slot(&self, mut at: u64, size: u64) -> Option<u64> {
        loop {
            if at + size > self.capacity {
                return None;
            }
            match self.arena.first_overlapping(at, at + size) {
                None => return Some(at),
                Some(id) => {
                    // Only pinned entries survive a flush; anything else in
                    // the way means we are pre-flush and the caller flushes.
                    let e = self.arena.entry(id).expect("resident");
                    if !e.pinned {
                        return None;
                    }
                    at = e.end_offset();
                }
            }
        }
    }
}

impl CodeCache for FlushCache {
    fn capacity(&self) -> Option<u64> {
        Some(self.capacity)
    }

    fn used_bytes(&self) -> u64 {
        self.arena.used_bytes()
    }

    fn len(&self) -> usize {
        self.arena.len()
    }

    fn contains(&self, id: TraceId) -> bool {
        self.arena.contains(id)
    }

    fn entry(&self, id: TraceId) -> Option<EntryInfo> {
        self.arena.entry(id).copied()
    }

    fn touch(&mut self, id: TraceId, now: Time) -> bool {
        match self.arena.entry_mut(id) {
            Some(e) => {
                e.access_count += 1;
                e.last_access = now;
                self.stats.hits += 1;
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, rec: TraceRecord, now: Time) -> Result<InsertReport, InsertError> {
        let size = u64::from(rec.size_bytes);
        if size > self.capacity {
            return Err(InsertError::TraceTooLarge {
                size: rec.size_bytes,
                capacity: self.capacity,
            });
        }
        if self.arena.contains(rec.id) {
            return Err(InsertError::AlreadyResident(rec.id));
        }

        let mut evicted = Vec::new();
        let offset = match self.find_slot(self.cursor, size) {
            Some(offset) => offset,
            None => {
                evicted = self.flush();
                match self.find_slot(0, size) {
                    Some(offset) => offset,
                    None => {
                        let pinned_bytes = self.arena.used_bytes();
                        return Err(InsertError::NoSpace {
                            size: rec.size_bytes,
                            pinned_bytes,
                        });
                    }
                }
            }
        };

        self.arena.place(rec, offset, now);
        self.cursor = offset + size;
        self.stats.on_insert(size, self.arena.used_bytes());
        self.stats.debug_assert_identity(self.arena.len() as u64);
        Ok(InsertReport::new(evicted, offset))
    }

    fn remove(&mut self, id: TraceId, cause: EvictionCause) -> Option<EntryInfo> {
        let info = self.arena.remove(id)?;
        self.stats.on_remove(u64::from(info.size_bytes()), cause);
        self.stats.debug_assert_identity(self.arena.len() as u64);
        Some(info)
    }

    fn set_pinned(&mut self, id: TraceId, pinned: bool) -> bool {
        match self.arena.entry_mut(id) {
            Some(e) => {
                e.pinned = pinned;
                true
            }
            None => false,
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn fragmentation(&self) -> FragmentationReport {
        self.arena.fragmentation(self.capacity)
    }

    fn trace_ids(&self) -> Vec<TraceId> {
        self.arena.ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_program::Addr;

    fn rec(id: u64, size: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(id), size, Addr::new(0x1000 + id * 0x100))
    }

    #[test]
    fn bump_allocation_until_full() {
        let mut c = FlushCache::new(100);
        for i in 0..5 {
            let r = c.insert(rec(i, 20), Time::ZERO).unwrap();
            assert!(r.evicted.is_empty());
            assert_eq!(r.offset, u64::from(i as u32) * 20);
        }
        assert_eq!(c.len(), 5);
        assert_eq!(c.flush_count(), 0);
    }

    #[test]
    fn overflow_flushes_everything() {
        let mut c = FlushCache::new(100);
        for i in 0..5 {
            c.insert(rec(i, 20), Time::ZERO).unwrap();
        }
        let report = c.insert(rec(5, 20), Time::ZERO).unwrap();
        assert_eq!(report.evicted.len(), 5);
        assert_eq!(report.offset, 0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.flush_count(), 1);
        assert_eq!(c.stats().flush_evictions, 5);
        assert_eq!(c.stats().capacity_evictions, 0);
    }

    #[test]
    fn pinned_traces_survive_flush() {
        let mut c = FlushCache::new(100);
        c.insert(rec(1, 40), Time::ZERO).unwrap(); // [0,40)
        c.insert(rec(2, 40), Time::ZERO).unwrap(); // [40,80)
        c.set_pinned(TraceId::new(1), true);
        // 40 bytes won't fit at cursor 80 → flush; trace 1 survives and the
        // new trace lands right after it.
        let report = c.insert(rec(3, 40), Time::ZERO).unwrap();
        assert_eq!(report.evicted.len(), 1);
        assert_eq!(report.evicted[0].id(), TraceId::new(2));
        assert!(c.contains(TraceId::new(1)));
        assert_eq!(report.offset, 40);
    }

    #[test]
    fn no_space_when_pinned_blocks_everything() {
        let mut c = FlushCache::new(100);
        c.insert(rec(1, 80), Time::ZERO).unwrap();
        c.set_pinned(TraceId::new(1), true);
        let err = c.insert(rec(2, 40), Time::ZERO).unwrap_err();
        assert!(matches!(
            err,
            InsertError::NoSpace {
                pinned_bytes: 80,
                ..
            }
        ));
    }

    #[test]
    fn forced_removal_and_hole() {
        let mut c = FlushCache::new(100);
        c.insert(rec(1, 40), Time::ZERO).unwrap();
        c.insert(rec(2, 40), Time::ZERO).unwrap();
        c.remove(TraceId::new(1), EvictionCause::Unmapped).unwrap();
        // Bump allocator does not backfill the hole; next insert goes to 80.
        let report = c.insert(rec(3, 20), Time::ZERO).unwrap();
        assert_eq!(report.offset, 80);
        assert_eq!(c.fragmentation().gap_count, 1);
    }

    #[test]
    fn oversized_and_duplicate_rejected() {
        let mut c = FlushCache::new(50);
        assert!(matches!(
            c.insert(rec(1, 51), Time::ZERO),
            Err(InsertError::TraceTooLarge { .. })
        ));
        c.insert(rec(1, 10), Time::ZERO).unwrap();
        assert!(matches!(
            c.insert(rec(1, 10), Time::ZERO),
            Err(InsertError::AlreadyResident(_))
        ));
    }
}
