//! Property-based tests: structural invariants that must hold for every
//! local cache policy under arbitrary operation sequences.

use gencache_cache::{
    ClockCache, CodeCache, EvictionCause, FlushCache, LruCache, PseudoCircularCache, TraceId,
    TraceRecord, UnboundedCache,
};
use gencache_program::{Addr, Time};
use proptest::prelude::*;

/// A randomly generated cache operation.
#[derive(Debug, Clone)]
enum Op {
    Insert { id: u64, size: u32 },
    Touch { id: u64 },
    Remove { id: u64 },
    Pin { id: u64, pinned: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..40, 1u32..300).prop_map(|(id, size)| Op::Insert { id, size }),
        3 => (0u64..40).prop_map(|id| Op::Touch { id }),
        1 => (0u64..40).prop_map(|id| Op::Remove { id }),
        1 => (0u64..40, any::<bool>()).prop_map(|(id, pinned)| Op::Pin { id, pinned }),
    ]
}

fn rec(id: u64, size: u32) -> TraceRecord {
    TraceRecord::new(TraceId::new(id), size, Addr::new(0x1000 + id * 0x1000))
}

/// Runs an op sequence, checking invariants after every step.
fn run_ops(cache: &mut dyn CodeCache, ops: &[Op]) {
    let mut pinned_now: Vec<u64> = Vec::new();
    for (step, op) in ops.iter().enumerate() {
        let now = Time::from_micros(step as u64);
        match *op {
            Op::Insert { id, size } => {
                if cache.contains(TraceId::new(id)) {
                    continue;
                }
                match cache.insert(rec(id, size), now) {
                    Ok(report) => {
                        // Pinned traces must never appear among victims.
                        for victim in &report.evicted {
                            assert!(!victim.entry.pinned, "pinned trace {} was evicted", victim.id());
                            assert!(
                                !pinned_now.contains(&victim.id().as_u64()),
                                "trace pinned by the driver was evicted"
                            );
                        }
                        assert!(cache.contains(TraceId::new(id)));
                    }
                    Err(_) => {
                        // Errors are allowed (too large / no space); the
                        // trace must simply not be resident.
                        assert!(!cache.contains(TraceId::new(id)));
                    }
                }
            }
            Op::Touch { id } => {
                let resident = cache.contains(TraceId::new(id));
                assert_eq!(cache.touch(TraceId::new(id), now), resident);
            }
            Op::Remove { id } => {
                let resident = cache.contains(TraceId::new(id));
                let removed = cache.remove(TraceId::new(id), EvictionCause::Unmapped);
                assert_eq!(removed.is_some(), resident);
                pinned_now.retain(|&p| p != id);
            }
            Op::Pin { id, pinned } => {
                if cache.set_pinned(TraceId::new(id), pinned) {
                    if pinned {
                        if !pinned_now.contains(&id) {
                            pinned_now.push(id);
                        }
                    } else {
                        pinned_now.retain(|&p| p != id);
                    }
                }
            }
        }
        check_structure(cache);
    }
}

/// Structural invariants visible through the public API.
fn check_structure(cache: &dyn CodeCache) {
    let ids = cache.trace_ids();
    assert_eq!(ids.len(), cache.len());

    // used_bytes equals the sum of resident entry sizes.
    let mut total = 0u64;
    let mut extents: Vec<(u64, u64)> = Vec::new();
    for id in &ids {
        let e = cache.entry(*id).expect("listed id must resolve");
        total += u64::from(e.size_bytes());
        extents.push((e.offset, e.end_offset()));
    }
    assert_eq!(total, cache.used_bytes());

    // No two entries overlap in the arena.
    extents.sort_unstable();
    for w in extents.windows(2) {
        assert!(
            w[0].1 <= w[1].0,
            "entries overlap: [{}, {}) and [{}, {})",
            w[0].0,
            w[0].1,
            w[1].0,
            w[1].1
        );
    }

    // Entries stay within capacity.
    if let Some(cap) = cache.capacity() {
        assert!(cache.used_bytes() <= cap);
        for (_, end) in &extents {
            assert!(*end <= cap, "entry extends past capacity");
        }
    }

    // The fragmentation report is consistent with capacity accounting.
    let frag = cache.fragmentation();
    if let Some(cap) = cache.capacity() {
        assert_eq!(frag.free_bytes, cap - cache.used_bytes());
        assert!(frag.largest_gap <= frag.free_bytes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pseudo_circular_invariants(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        capacity in 300u64..2000,
    ) {
        let mut cache = PseudoCircularCache::new(capacity);
        run_ops(&mut cache, &ops);
    }

    #[test]
    fn lru_invariants(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        capacity in 300u64..2000,
    ) {
        let mut cache = LruCache::new(capacity);
        run_ops(&mut cache, &ops);
    }

    #[test]
    fn flush_invariants(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        capacity in 300u64..2000,
    ) {
        let mut cache = FlushCache::new(capacity);
        run_ops(&mut cache, &ops);
    }

    #[test]
    fn clock_invariants(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        capacity in 300u64..2000,
    ) {
        let mut cache = ClockCache::new(capacity);
        run_ops(&mut cache, &ops);
    }

    #[test]
    fn lru_with_defrag_invariants(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        capacity in 300u64..2000,
    ) {
        let mut cache = LruCache::with_defrag_threshold(capacity, 0.3);
        run_ops(&mut cache, &ops);
    }

    #[test]
    fn unbounded_invariants(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let mut cache = UnboundedCache::new();
        run_ops(&mut cache, &ops);
    }

    /// FIFO property of the pure circular buffer: with no pins, no forced
    /// deletions, and identically sized traces, victims are evicted in
    /// exactly insertion order.
    #[test]
    fn pseudo_circular_is_fifo_without_pins(
        n_inserts in 10u64..100,
        size in 10u32..50,
    ) {
        let capacity = u64::from(size) * 8; // holds exactly 8 traces
        let mut cache = PseudoCircularCache::new(capacity);
        let mut evicted_order = Vec::new();
        for id in 0..n_inserts {
            let report = cache.insert(rec(id, size), Time::ZERO).unwrap();
            evicted_order.extend(report.evicted.iter().map(|e| e.id().as_u64()));
        }
        // Victims must come out in insertion order: 0, 1, 2, ...
        let expected: Vec<u64> = (0..evicted_order.len() as u64).collect();
        prop_assert_eq!(evicted_order, expected);
    }

    /// LRU property: with uniform sizes and no pins, the victim is always
    /// the least recently touched resident trace.
    #[test]
    fn lru_evicts_least_recent(
        touch_seq in proptest::collection::vec(0u64..8, 0..40),
    ) {
        let size = 10u32;
        let mut cache = LruCache::new(u64::from(size) * 8);
        // Fill with traces 0..8, then apply touches, then insert one more.
        for id in 0..8 {
            cache.insert(rec(id, size), Time::ZERO).unwrap();
        }
        let mut order: Vec<u64> = (0..8).collect(); // LRU -> MRU
        for (i, &id) in touch_seq.iter().enumerate() {
            cache.touch(TraceId::new(id), Time::from_micros(i as u64 + 1));
            order.retain(|&x| x != id);
            order.push(id);
        }
        let report = cache.insert(rec(99, size), Time::from_micros(10_000)).unwrap();
        prop_assert_eq!(report.evicted.len(), 1);
        prop_assert_eq!(report.evicted[0].id().as_u64(), order[0]);
    }
}
