//! The dynamic-optimizer frontend: basic-block caching, trace-head
//! counting, and Next-Executed-Tail trace selection (Section 4.1).
//!
//! The engine consumes the workload's block-execution stream and behaves
//! like DynamoRIO's frontend:
//!
//! 1. Every executed basic block is copied into an (unbounded) **basic
//!    block cache** on first execution.
//! 2. Blocks that are targets of backward branches, or exits from existing
//!    traces, are **trace heads**; each execution of a trace head bumps a
//!    counter.
//! 3. When a counter reaches the trace-creation threshold (50), the engine
//!    enters **trace generation mode** and records the next executed tail:
//!    blocks are appended until a backward branch is encountered or the
//!    start of an existing trace is reached.
//! 4. Once a trace exists for a head, executing the head is a **trace
//!    access** — the event stream that drives all cache simulations.
//!    Executing a block that *diverges* from the trace body is a trace
//!    exit, making the divergent block a new trace-head candidate.

use std::collections::HashMap;

use gencache_cache::TraceId;
use gencache_program::{Addr, ModuleId, ProgramImage, Time, TRACE_CREATION_THRESHOLD};
use gencache_workloads::{TimedEvent, WorkloadEvent};
use serde::{Deserialize, Serialize};

use crate::trace::Trace;

/// Upper bound on trace length in blocks, mirroring real systems' caps.
const MAX_TRACE_BLOCKS: usize = 64;

/// What the frontend reports to its consumer (the recorder).
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendEvent {
    /// A new trace was generated and placed in the trace cache.
    TraceCreated {
        /// The freshly built trace.
        trace: Trace,
    },
    /// Execution entered an existing trace at its head.
    TraceAccess {
        /// The accessed trace.
        id: TraceId,
        /// When the access happened.
        time: Time,
    },
    /// A module was unmapped; these traces are now stale and must be
    /// deleted from every code cache immediately.
    TracesInvalidated {
        /// Ids of the invalidated traces.
        ids: Vec<TraceId>,
        /// When the unmap happened.
        time: Time,
    },
}

/// Aggregate counters of one frontend run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontendStats {
    /// Block-execution events processed.
    pub exec_events: u64,
    /// Distinct blocks copied into the basic-block cache.
    pub bb_blocks: u64,
    /// Bytes currently resident in the basic-block cache.
    pub bb_bytes: u64,
    /// Cumulative unique static code executed (the *application
    /// footprint*, Equation 1's denominator; never decreases on unmap).
    pub footprint_bytes: u64,
    /// Traces generated.
    pub traces_created: u64,
    /// Total bytes of generated traces.
    pub trace_bytes_created: u64,
    /// Bytes of traces currently live (not invalidated).
    pub live_trace_bytes: u64,
    /// Peak of `bb_bytes + live_trace_bytes`: the unbounded code cache
    /// size of Figure 1.
    pub peak_cache_bytes: u64,
    /// Peak of `live_trace_bytes` alone: the `maxCache` used to size the
    /// managed trace caches in Section 6 (generational management applies
    /// only to the trace cache).
    pub peak_trace_bytes: u64,
    /// Executions that entered an existing trace.
    pub trace_accesses: u64,
    /// Traces invalidated by unmapped memory.
    pub traces_invalidated: u64,
    /// Bytes of traces invalidated by unmapped memory.
    pub trace_bytes_invalidated: u64,
    /// Trace exits caused by divergence from a trace body.
    pub trace_exits: u64,
    /// Context switches between the dispatcher and cached code: one to
    /// enter a trace, one to leave it (Table 2 charges 25 instructions
    /// each). Without trace linking every trace execution costs two.
    pub context_switches: u64,
}

#[derive(Debug)]
struct TraceGen {
    head: Addr,
    body: Vec<Addr>,
    size_bytes: u32,
    module: ModuleId,
}

/// The frontend engine. Owns a copy of the program image so it can apply
/// unmaps as they stream by.
#[derive(Debug)]
pub struct Engine {
    image: ProgramImage,
    threshold: u32,
    /// Blocks resident in the basic-block cache, with their sizes.
    bb_cache: HashMap<Addr, u32>,
    /// Trace-head candidates and their execution counters.
    head_counters: HashMap<Addr, u32>,
    /// Live traces by head address (one trace per head).
    traces_by_head: HashMap<Addr, Trace>,
    /// Live trace ids → head address, for invalidation bookkeeping.
    heads_by_id: HashMap<TraceId, Addr>,
    /// Execution position inside a trace body, if any.
    in_trace: Option<(TraceId, usize)>,
    /// Active trace-generation recording, if any.
    generating: Option<TraceGen>,
    next_trace_id: u64,
    stats: FrontendStats,
}

impl Engine {
    /// Creates an engine over `image` with the standard trace-creation
    /// threshold of 50.
    pub fn new(image: ProgramImage) -> Self {
        Engine::with_threshold(image, TRACE_CREATION_THRESHOLD)
    }

    /// Creates an engine with a custom trace-creation threshold (for
    /// sensitivity studies).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn with_threshold(image: ProgramImage, threshold: u32) -> Self {
        assert!(threshold > 0, "trace threshold must be nonzero");
        Engine {
            image,
            threshold,
            bb_cache: HashMap::new(),
            head_counters: HashMap::new(),
            traces_by_head: HashMap::new(),
            heads_by_id: HashMap::new(),
            in_trace: None,
            generating: None,
            next_trace_id: 0,
            stats: FrontendStats::default(),
        }
    }

    /// Run counters so far.
    pub fn stats(&self) -> &FrontendStats {
        &self.stats
    }

    /// The number of live traces.
    pub fn live_trace_count(&self) -> usize {
        self.traces_by_head.len()
    }

    /// Looks up a live trace by id.
    pub fn trace(&self, id: TraceId) -> Option<&Trace> {
        self.heads_by_id
            .get(&id)
            .and_then(|head| self.traces_by_head.get(head))
    }

    /// Processes one workload event, reporting frontend events to `sink`.
    pub fn on_event(&mut self, ev: TimedEvent, sink: &mut impl FnMut(FrontendEvent)) {
        match ev.event {
            WorkloadEvent::Exec { addr } => self.on_exec(addr, ev.time, sink),
            WorkloadEvent::Unload { module } => self.on_unload(module, ev.time, sink),
        }
    }

    fn on_exec(&mut self, addr: Addr, now: Time, sink: &mut impl FnMut(FrontendEvent)) {
        self.stats.exec_events += 1;

        // --- Trace generation mode records the executed tail. -----------
        if self.generating.is_some() {
            self.extend_generation(addr, now, sink);
            // Whether or not generation finished, the block itself still
            // executes below only when generation just finished *because
            // of this block being a stop condition*; extend_generation
            // handles the distinction and re-enters on_exec paths itself.
            return;
        }

        // --- Execution inside an existing trace. ------------------------
        if let Some((tid, pos)) = self.in_trace {
            let head = self.heads_by_id[&tid];
            let body = self.traces_by_head[&head].body();
            if pos < body.len() && body[pos] == addr {
                let next = pos + 1;
                self.in_trace = if next < body.len() {
                    Some((tid, next))
                } else {
                    None
                };
                return;
            }
            // Divergence: a trace exit. The divergent block becomes a
            // trace-head candidate (Section 4.1, rule (b)).
            self.in_trace = None;
            self.stats.trace_exits += 1;
            self.head_counters.entry(addr).or_insert(0);
        }

        self.dispatch(addr, now, sink);
    }

    /// Normal dispatch of a block outside any trace context.
    fn dispatch(&mut self, addr: Addr, now: Time, sink: &mut impl FnMut(FrontendEvent)) {
        // Entering an existing trace?
        if let Some(trace) = self.traces_by_head.get(&addr) {
            let tid = trace.id();
            let len = trace.body().len();
            self.stats.trace_accesses += 1;
            self.stats.context_switches += 2; // dispatcher → trace → back
            self.in_trace = if len > 1 { Some((tid, 1)) } else { None };
            sink(FrontendEvent::TraceAccess { id: tid, time: now });
            return;
        }

        let Some(block) = self.image.block_at(addr) else {
            // Executed code in an unmapped region: the workload never does
            // this by construction; ignore defensively.
            return;
        };
        let size = block.size_bytes();
        let backward_target = block.ends_in_backward_branch().then(|| {
            block
                .terminator()
                .direct_target()
                .expect("backward has target")
        });

        // Copy into the basic-block cache on first execution.
        if let std::collections::hash_map::Entry::Vacant(e) = self.bb_cache.entry(addr) {
            e.insert(size);
            self.stats.bb_blocks += 1;
            self.stats.bb_bytes += u64::from(size);
            self.stats.footprint_bytes += u64::from(size);
            self.update_peak();
        }

        // A backward branch marks its target as a trace-head candidate
        // (Section 4.1, rule (a)).
        if let Some(target) = backward_target {
            self.head_counters.entry(target).or_insert(0);
        }

        // Count executions of trace-head candidates and fire generation.
        if let Some(counter) = self.head_counters.get_mut(&addr) {
            *counter += 1;
            if *counter >= self.threshold && !self.traces_by_head.contains_key(&addr) {
                self.begin_generation(addr, size, now, sink);
            }
        }
    }

    fn begin_generation(
        &mut self,
        head: Addr,
        head_size: u32,
        now: Time,
        sink: &mut impl FnMut(FrontendEvent),
    ) {
        let module = self
            .image
            .module_containing(head)
            .expect("head resolved above")
            .id();
        let head_block = self.image.block_at(head).expect("head resolved above");
        let ends_backward = head_block.ends_in_backward_branch();
        self.generating = Some(TraceGen {
            head,
            body: vec![head],
            size_bytes: head_size,
            module,
        });
        // A one-block loop terminates generation immediately.
        if ends_backward {
            self.finish_generation(now, sink);
        }
    }

    fn extend_generation(&mut self, addr: Addr, now: Time, sink: &mut impl FnMut(FrontendEvent)) {
        let generating = self.generating.as_ref().expect("checked by caller");

        // Stop condition: reached the start of an existing trace, or
        // wrapped around to the head being generated.
        if self.traces_by_head.contains_key(&addr) || addr == generating.head {
            self.finish_generation(now, sink);
            // The block still executes normally (it may be a trace access).
            self.dispatch(addr, now, sink);
            return;
        }

        let Some(block) = self.image.block_at(addr) else {
            self.finish_generation(now, sink);
            return;
        };
        let size = block.size_bytes();
        let ends_backward = block.ends_in_backward_branch();

        // The tail block also belongs in the basic-block cache.
        if let std::collections::hash_map::Entry::Vacant(e) = self.bb_cache.entry(addr) {
            e.insert(size);
            self.stats.bb_blocks += 1;
            self.stats.bb_bytes += u64::from(size);
            self.stats.footprint_bytes += u64::from(size);
        }

        let generating = self.generating.as_mut().expect("checked by caller");
        generating.body.push(addr);
        generating.size_bytes += size;
        let full = generating.body.len() >= MAX_TRACE_BLOCKS;

        // Stop condition: a backward branch ends the trace (rule (a)).
        if ends_backward || full {
            self.finish_generation(now, sink);
        }
    }

    fn finish_generation(&mut self, now: Time, sink: &mut impl FnMut(FrontendEvent)) {
        let generating = self.generating.take().expect("generation active");
        let id = TraceId::new(self.next_trace_id);
        self.next_trace_id += 1;
        let trace = Trace::new(
            id,
            generating.head,
            generating.body,
            generating.size_bytes,
            generating.module,
            now,
        );
        self.stats.traces_created += 1;
        self.stats.trace_bytes_created += u64::from(trace.size_bytes());
        self.stats.live_trace_bytes += u64::from(trace.size_bytes());
        self.update_peak();
        self.heads_by_id.insert(id, trace.head());
        self.traces_by_head.insert(trace.head(), trace.clone());
        sink(FrontendEvent::TraceCreated { trace });
    }

    fn on_unload(&mut self, module: ModuleId, now: Time, sink: &mut impl FnMut(FrontendEvent)) {
        let Ok(range) = self.image.unmap(module) else {
            return; // unknown or already unloaded: nothing to invalidate
        };

        // Drop stale basic blocks (their bytes leave the bb cache but stay
        // in the cumulative footprint).
        self.bb_cache.retain(|addr, size| {
            if range.contains(*addr) {
                self.stats.bb_bytes -= u64::from(*size);
                false
            } else {
                true
            }
        });
        self.head_counters.retain(|addr, _| !range.contains(*addr));

        // Invalidate traces whose head lies in the unmapped range. (The
        // workload planner only builds intra-module control flow, so a
        // trace's body blocks always share the head's module.)
        let mut ids = Vec::new();
        self.traces_by_head.retain(|head, trace| {
            if range.contains(*head) {
                ids.push(trace.id());
                self.stats.traces_invalidated += 1;
                self.stats.trace_bytes_invalidated += u64::from(trace.size_bytes());
                self.stats.live_trace_bytes -= u64::from(trace.size_bytes());
                false
            } else {
                true
            }
        });
        // HashMap iteration order is instance-specific; sort so the
        // invalidation event (and thus the recorded log) is deterministic.
        ids.sort_unstable();
        for id in &ids {
            self.heads_by_id.remove(id);
        }
        if let Some((tid, _)) = self.in_trace {
            if ids.contains(&tid) {
                self.in_trace = None;
            }
        }
        if let Some(generating) = &self.generating {
            if range.contains(generating.head) {
                self.generating = None;
            }
        }
        if !ids.is_empty() {
            sink(FrontendEvent::TracesInvalidated { ids, time: now });
        }
    }

    fn update_peak(&mut self) {
        let current = self.stats.bb_bytes + self.stats.live_trace_bytes;
        if current > self.stats.peak_cache_bytes {
            self.stats.peak_cache_bytes = current;
        }
        if self.stats.live_trace_bytes > self.stats.peak_trace_bytes {
            self.stats.peak_trace_bytes = self.stats.live_trace_bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_program::{ModuleBuilder, ModuleKind, Region};

    /// A single-module image with one simple loop region.
    fn loop_image(body_sizes: &[u32]) -> (ProgramImage, Region) {
        let mut b = ModuleBuilder::new(
            ModuleId::new(0),
            "t.exe",
            ModuleKind::Executable,
            Addr::new(0x1000),
            64 * 1024,
        );
        let region = b.add_loop(body_sizes).unwrap();
        let mut image = ProgramImage::new();
        image.map(b.finish()).unwrap();
        (image, region)
    }

    /// Runs `iterations` of the region's loop plus the exit block through
    /// the engine, collecting frontend events.
    fn run_loop(
        engine: &mut Engine,
        region: &Region,
        iterations: u32,
        start_micros: u64,
    ) -> Vec<FrontendEvent> {
        let mut events = Vec::new();
        let mut t = start_micros;
        for _ in 0..iterations {
            for &addr in region.path(0) {
                engine.on_event(
                    TimedEvent::new(Time::from_micros(t), WorkloadEvent::Exec { addr }),
                    &mut |e| events.push(e),
                );
                t += 1;
            }
        }
        engine.on_event(
            TimedEvent::new(
                Time::from_micros(t),
                WorkloadEvent::Exec {
                    addr: region.exit_block,
                },
            ),
            &mut |e| events.push(e),
        );
        events
    }

    #[test]
    fn trace_created_at_threshold() {
        let (image, region) = loop_image(&[20, 20, 26]);
        let mut engine = Engine::with_threshold(image, 10);
        let events = run_loop(&mut engine, &region, 30, 0);

        let created: Vec<&Trace> = events
            .iter()
            .filter_map(|e| match e {
                FrontendEvent::TraceCreated { trace } => Some(trace),
                _ => None,
            })
            .collect();
        assert_eq!(created.len(), 1, "exactly one trace for a simple loop");
        let trace = created[0];
        assert_eq!(trace.head(), region.head);
        assert_eq!(trace.body().len(), 3);
        assert_eq!(trace.size_bytes(), 66);

        // Head executions before creation are not trace accesses; the
        // remaining iterations are.
        let accesses = events
            .iter()
            .filter(|e| matches!(e, FrontendEvent::TraceAccess { .. }))
            .count();
        // The head only becomes a candidate once the loop's backward
        // branch first executes (end of iteration 1), so its counter hits
        // 10 during iteration 11; the body is recorded over iteration 11;
        // iterations 12..=30 access the trace: 19 accesses.
        assert_eq!(accesses, 19);
        assert_eq!(engine.stats().traces_created, 1);
    }

    #[test]
    fn no_trace_below_threshold() {
        let (image, region) = loop_image(&[20, 26]);
        let mut engine = Engine::with_threshold(image, 50);
        let events = run_loop(&mut engine, &region, 49, 0);
        assert!(events.is_empty());
        assert_eq!(engine.stats().traces_created, 0);
        assert_eq!(engine.live_trace_count(), 0);
    }

    #[test]
    fn bb_cache_counts_unique_blocks() {
        let (image, region) = loop_image(&[20, 20, 26]);
        let mut engine = Engine::with_threshold(image, 1000);
        run_loop(&mut engine, &region, 5, 0);
        // 3 body blocks + exit stub.
        assert_eq!(engine.stats().bb_blocks, 4);
        assert_eq!(engine.stats().bb_bytes, 66 + 5);
        assert_eq!(engine.stats().footprint_bytes, 71);
        // Re-running does not grow the bb cache.
        run_loop(&mut engine, &region, 5, 1000);
        assert_eq!(engine.stats().bb_blocks, 4);
    }

    #[test]
    fn one_block_self_loop_traces() {
        let (image, region) = loop_image(&[26]);
        let mut engine = Engine::with_threshold(image, 5);
        let events = run_loop(&mut engine, &region, 10, 0);
        let created = events
            .iter()
            .filter(|e| matches!(e, FrontendEvent::TraceCreated { .. }))
            .count();
        assert_eq!(created, 1);
        let trace = engine.trace(TraceId::new(0)).unwrap();
        assert_eq!(trace.body().len(), 1);
    }

    #[test]
    fn call_loop_trace_inlines_helper() {
        let mut b = ModuleBuilder::new(
            ModuleId::new(0),
            "t.exe",
            ModuleKind::Executable,
            Addr::new(0x1000),
            64 * 1024,
        );
        let helper = b.add_function(&[30, 30]).unwrap();
        let region = b.add_loop_calling(&[20, 20, 26], &[(0, &helper)]).unwrap();
        let mut image = ProgramImage::new();
        image.map(b.finish()).unwrap();

        let mut engine = Engine::with_threshold(image, 5);
        let events = run_loop(&mut engine, &region, 10, 0);
        let trace = events
            .iter()
            .find_map(|e| match e {
                FrontendEvent::TraceCreated { trace } => Some(trace),
                _ => None,
            })
            .expect("trace created");
        // b0, h0, h1, b1, b2: the helper is inlined into the superblock,
        // duplicating its bytes in the trace cache (code expansion).
        assert_eq!(trace.body().len(), 5);
        assert_eq!(trace.size_bytes(), 20 + 30 + 30 + 20 + 26);
    }

    #[test]
    fn divergence_creates_secondary_trace() {
        let mut b = ModuleBuilder::new(
            ModuleId::new(0),
            "t.exe",
            ModuleKind::Executable,
            Addr::new(0x1000),
            64 * 1024,
        );
        let region = b.add_branchy_loop(&[20], &[30], &[40], &[26]).unwrap();
        let mut image = ProgramImage::new();
        image.map(b.finish()).unwrap();
        let mut engine = Engine::with_threshold(image, 5);

        let mut events = Vec::new();
        let mut push = |e: FrontendEvent| events.push(e);
        let mut t = 0u64;
        let mut run_path = |engine: &mut Engine, path: &[Addr], events: &mut Vec<FrontendEvent>| {
            for &addr in path {
                engine.on_event(
                    TimedEvent::new(Time::from_micros(t), WorkloadEvent::Exec { addr }),
                    &mut |e| events.push(e),
                );
                t += 1;
            }
        };
        let _ = &mut push;

        // 6 iterations along path A create the primary trace.
        for _ in 0..6 {
            run_path(&mut engine, region.path(0), &mut events);
        }
        assert_eq!(engine.stats().traces_created, 1);
        // Path-B iterations diverge mid-trace; after 5 divergences the
        // B-block becomes hot and a secondary trace covers B + suffix.
        for _ in 0..7 {
            run_path(&mut engine, region.path(1), &mut events);
        }
        assert_eq!(engine.stats().traces_created, 2, "secondary trace expected");
        assert!(engine.stats().trace_exits > 0);

        let secondary = engine.trace(TraceId::new(1)).unwrap();
        assert_eq!(secondary.head(), region.path(1)[1]); // the B block
        assert_eq!(secondary.body().len(), 2); // B + suffix
    }

    #[test]
    fn unload_invalidates_traces_and_blocks() {
        let mut dll = ModuleBuilder::new(
            ModuleId::new(1),
            "x.dll",
            ModuleKind::SharedLibrary,
            Addr::new(0x10_0000),
            64 * 1024,
        );
        let region = dll.add_loop(&[20, 26]).unwrap();
        let mut image = ProgramImage::new();
        image.map(dll.finish()).unwrap();
        let mut engine = Engine::with_threshold(image, 5);

        let events = run_loop(&mut engine, &region, 10, 0);
        assert!(!events.is_empty());
        assert_eq!(engine.live_trace_count(), 1);
        let live_before = engine.stats().live_trace_bytes;
        assert!(live_before > 0);

        let mut out = Vec::new();
        engine.on_event(
            TimedEvent::new(
                Time::from_micros(10_000),
                WorkloadEvent::Unload {
                    module: ModuleId::new(1),
                },
            ),
            &mut |e| out.push(e),
        );
        let FrontendEvent::TracesInvalidated { ids, .. } = &out[0] else {
            panic!("expected invalidation event");
        };
        assert_eq!(ids.len(), 1);
        assert_eq!(engine.live_trace_count(), 0);
        assert_eq!(engine.stats().live_trace_bytes, 0);
        assert_eq!(engine.stats().bb_bytes, 0);
        // The cumulative footprint is unaffected.
        assert_eq!(engine.stats().footprint_bytes, 51);
        assert_eq!(engine.stats().traces_invalidated, 1);
    }

    #[test]
    fn peak_cache_tracks_bb_plus_traces() {
        let (image, region) = loop_image(&[20, 26]);
        let mut engine = Engine::with_threshold(image, 5);
        run_loop(&mut engine, &region, 10, 0);
        let s = engine.stats();
        assert_eq!(s.peak_cache_bytes, s.bb_bytes + s.live_trace_bytes);
        assert!(s.peak_cache_bytes > 0);
    }

    #[test]
    fn trace_length_is_capped() {
        // A loop body of 80 blocks exceeds MAX_TRACE_BLOCKS (64); the
        // trace must stop at the cap rather than swallow the whole loop.
        let sizes: Vec<u32> = (0..80).map(|_| 10).collect();
        let (image, region) = loop_image(&sizes);
        let mut engine = Engine::with_threshold(image, 5);
        let events = run_loop(&mut engine, &region, 10, 0);
        let trace = events
            .iter()
            .find_map(|e| match e {
                FrontendEvent::TraceCreated { trace } => Some(trace),
                _ => None,
            })
            .expect("trace created");
        assert_eq!(trace.body().len(), 64);
        assert_eq!(trace.size_bytes(), 64 * 10);
    }

    #[test]
    fn second_region_gets_second_trace() {
        let mut b = ModuleBuilder::new(
            ModuleId::new(0),
            "t.exe",
            ModuleKind::Executable,
            Addr::new(0x1000),
            64 * 1024,
        );
        let r1 = b.add_loop(&[20, 26]).unwrap();
        let r2 = b.add_loop(&[22, 26]).unwrap();
        let mut image = ProgramImage::new();
        image.map(b.finish()).unwrap();
        let mut engine = Engine::with_threshold(image, 5);
        run_loop(&mut engine, &r1, 10, 0);
        run_loop(&mut engine, &r2, 10, 1000);
        assert_eq!(engine.stats().traces_created, 2);
        assert_eq!(engine.live_trace_count(), 2);
        // Distinct heads, distinct ids.
        let t0 = engine.trace(TraceId::new(0)).unwrap();
        let t1 = engine.trace(TraceId::new(1)).unwrap();
        assert_eq!(t0.head(), r1.head);
        assert_eq!(t1.head(), r2.head);
    }

    #[test]
    #[should_panic(expected = "threshold must be nonzero")]
    fn zero_threshold_rejected() {
        let _ = Engine::with_threshold(ProgramImage::new(), 0);
    }
}
