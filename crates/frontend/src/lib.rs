//! # gencache-frontend
//!
//! The dynamic-binary-translation frontend for the `gencache`
//! reproduction of *Generational Cache Management of Code Traces in
//! Dynamic Optimization Systems* (Hazelwood & Smith, MICRO 2003).
//!
//! This crate stands in for DynamoRIO's execution machinery: it consumes
//! a workload's basic-block execution stream and produces the *trace
//! event stream* (creations, accesses, invalidations) that drives every
//! cache simulation in the paper's evaluation. It implements:
//!
//! * the basic-block cache and trace-head counters (threshold 50);
//! * **Next-Executed-Tail** trace selection — superblocks grown along the
//!   executed path until a backward branch or an existing trace head;
//! * trace exits: divergence from a trace body spawns new trace heads;
//! * module-unload invalidation (stale traces must die immediately);
//! * code relocation with PC-relative fix-up ([`relocate_trace`],
//!   Section 5.4).
//!
//! ```
//! use gencache_frontend::{Engine, FrontendEvent};
//! use gencache_workloads::{ExecutionPlan, Suite, WorkloadProfile};
//!
//! let profile = WorkloadProfile::builder("demo", Suite::Spec2000)
//!     .footprint_kb(16)
//!     .build();
//! let plan = ExecutionPlan::from_profile(&profile)?;
//! let mut engine = Engine::new(plan.image().clone());
//! let mut accesses = 0u64;
//! for ev in plan.stream() {
//!     engine.on_event(ev, &mut |fe| {
//!         if matches!(fe, FrontendEvent::TraceAccess { .. }) {
//!             accesses += 1;
//!         }
//!     });
//! }
//! assert!(engine.stats().traces_created > 0);
//! assert!(accesses > 0);
//! # Ok::<(), gencache_workloads::PlanError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod relocate;
mod trace;

pub use engine::{Engine, FrontendEvent, FrontendStats};
pub use relocate::{relocate_trace, RelocationReport};
pub use trace::Trace;
