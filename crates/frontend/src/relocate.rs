//! Code relocation (Section 5.4).
//!
//! Promoting a trace from one code cache to another moves its instructions
//! to a new address, so every PC-relative instruction (direct branches,
//! jumps, calls) must be fixed up. The paper notes this is basic dynamic-
//! optimizer functionality — code is already moved from the program to the
//! basic-block cache and again into the trace cache. This module provides
//! that mechanism over the synthetic instruction model, and reports how
//! much fix-up work a move entails.

use gencache_program::{Addr, InstKind, ProgramImage};
use serde::{Deserialize, Serialize};

use crate::trace::Trace;

/// The outcome of relocating one trace between cache addresses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelocationReport {
    /// Instructions scanned across the trace body.
    pub instructions_scanned: u32,
    /// PC-relative instructions whose displacement was rewritten.
    pub fixups: u32,
    /// Bytes copied to the new location.
    pub bytes_copied: u32,
}

/// Computes the fix-up work required to move `trace` from cache offset
/// `old_base` to `new_base`, resolving instruction encodings through the
/// program image the trace was built from.
///
/// A displacement encoded relative to the instruction's position changes
/// whenever the code moves by a nonzero delta; targets *inside* the moved
/// trace keep their relative distance and need no rewrite, while targets
/// outside it (exit stubs, other traces, back to the application) must be
/// adjusted.
///
/// Returns `None` if any of the trace's blocks no longer resolve in the
/// image (e.g. the module was unmapped — such a trace must be deleted,
/// not moved).
pub fn relocate_trace(
    image: &ProgramImage,
    trace: &Trace,
    old_base: u64,
    new_base: u64,
) -> Option<RelocationReport> {
    let delta = new_base as i64 - old_base as i64;
    let mut report = RelocationReport {
        bytes_copied: trace.size_bytes(),
        ..RelocationReport::default()
    };

    // Addresses of blocks inside the trace: intra-trace targets need no
    // fix-up because the whole body moves rigidly.
    let body: &[Addr] = trace.body();
    for &block_addr in body {
        let block = image.block_at(block_addr)?;
        for inst in block.insts() {
            report.instructions_scanned += 1;
            if !inst.kind().is_pc_relative() {
                continue;
            }
            let target = match inst.kind() {
                InstKind::CondBranch { target }
                | InstKind::Jump { target }
                | InstKind::Call { target } => *target,
                _ => unreachable!("is_pc_relative covers exactly these"),
            };
            let internal = body.contains(&target);
            if !internal && delta != 0 {
                report.fixups += 1;
            }
        }
    }
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencache_cache::TraceId;
    use gencache_program::{ModuleBuilder, ModuleId, ModuleKind, Time};

    fn fixture() -> (ProgramImage, Trace) {
        let mut b = ModuleBuilder::new(
            ModuleId::new(0),
            "t.exe",
            ModuleKind::Executable,
            Addr::new(0x1000),
            64 * 1024,
        );
        let helper = b.add_function(&[30, 30]).unwrap();
        let region = b.add_loop_calling(&[20, 20, 26], &[(0, &helper)]).unwrap();
        let mut image = ProgramImage::new();
        image.map(b.finish()).unwrap();
        let body = region.path(0).to_vec();
        let trace = Trace::new(
            TraceId::new(0),
            region.head,
            body,
            126,
            ModuleId::new(0),
            Time::ZERO,
        );
        (image, trace)
    }

    #[test]
    fn move_fixes_external_targets_only() {
        let (image, trace) = fixture();
        let report = relocate_trace(&image, &trace, 0, 4096).unwrap();
        assert_eq!(report.bytes_copied, 126);
        assert!(report.instructions_scanned > 0);
        // The trace contains: a call to the helper (internal — helper is
        // in the body), and the loop back-edge (internal — targets the
        // head). Exactly zero external PC-relative targets here.
        assert_eq!(report.fixups, 0);
    }

    #[test]
    fn zero_delta_needs_no_fixups() {
        let (image, trace) = fixture();
        let report = relocate_trace(&image, &trace, 100, 100).unwrap();
        assert_eq!(report.fixups, 0);
        assert_eq!(report.bytes_copied, 126);
    }

    #[test]
    fn partial_trace_has_external_fixups() {
        // A secondary trace holding only part of a loop: its back-edge
        // targets the (external) loop head and must be fixed up.
        let mut b = ModuleBuilder::new(
            ModuleId::new(0),
            "t.exe",
            ModuleKind::Executable,
            Addr::new(0x1000),
            64 * 1024,
        );
        let region = b.add_branchy_loop(&[20], &[30], &[40], &[26]).unwrap();
        let mut image = ProgramImage::new();
        image.map(b.finish()).unwrap();
        // Secondary trace: B block + suffix (suffix branches to the head,
        // which is NOT part of this trace).
        let body = vec![region.path(1)[1], *region.path(1).last().unwrap()];
        let trace = Trace::new(
            TraceId::new(1),
            body[0],
            body,
            66,
            ModuleId::new(0),
            Time::ZERO,
        );
        let report = relocate_trace(&image, &trace, 0, 8192).unwrap();
        assert_eq!(report.fixups, 1, "the back-edge must be fixed up");
    }

    #[test]
    fn unmapped_trace_cannot_be_relocated() {
        let mut b = ModuleBuilder::new(
            ModuleId::new(1),
            "x.dll",
            ModuleKind::SharedLibrary,
            Addr::new(0x10_0000),
            64 * 1024,
        );
        let region = b.add_loop(&[20, 26]).unwrap();
        let mut image = ProgramImage::new();
        image.map(b.finish()).unwrap();
        let trace = Trace::new(
            TraceId::new(0),
            region.head,
            region.path(0).to_vec(),
            46,
            ModuleId::new(1),
            Time::ZERO,
        );
        assert!(relocate_trace(&image, &trace, 0, 100).is_some());
        image.unmap(ModuleId::new(1)).unwrap();
        assert!(relocate_trace(&image, &trace, 0, 100).is_none());
    }
}
