//! Code traces: single-entry multiple-exit superblocks.

use gencache_cache::{TraceId, TraceRecord};
use gencache_program::{Addr, ModuleId, Time};
use serde::{Deserialize, Serialize};

/// A superblock trace produced by Next-Executed-Tail selection: the head
/// block followed by the dynamic tail of blocks executed after it, up to
/// a backward branch or the start of another trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    id: TraceId,
    head: Addr,
    body: Vec<Addr>,
    size_bytes: u32,
    module: ModuleId,
    created: Time,
}

impl Trace {
    /// Assembles a trace.
    ///
    /// # Panics
    ///
    /// Panics if `body` is empty or does not start with `head`.
    pub fn new(
        id: TraceId,
        head: Addr,
        body: Vec<Addr>,
        size_bytes: u32,
        module: ModuleId,
        created: Time,
    ) -> Self {
        assert!(!body.is_empty(), "a trace must contain blocks");
        assert_eq!(body[0], head, "a trace must begin at its head");
        Trace {
            id,
            head,
            body,
            size_bytes,
            module,
            created,
        }
    }

    /// The trace identifier.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// The application address of the trace head.
    pub fn head(&self) -> Addr {
        self.head
    }

    /// The block start addresses forming the trace, in execution order.
    pub fn body(&self) -> &[Addr] {
        &self.body
    }

    /// Total encoded bytes of the trace body.
    pub fn size_bytes(&self) -> u32 {
        self.size_bytes
    }

    /// The module the trace head belongs to.
    pub fn module(&self) -> ModuleId {
        self.module
    }

    /// When the trace was generated.
    pub fn created(&self) -> Time {
        self.created
    }

    /// The cache-facing view of this trace.
    pub fn record(&self) -> TraceRecord {
        TraceRecord::new(self.id, self.size_bytes, self.head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_record() {
        let t = Trace::new(
            TraceId::new(3),
            Addr::new(0x1000),
            vec![Addr::new(0x1000), Addr::new(0x1010)],
            48,
            ModuleId::new(0),
            Time::from_micros(7),
        );
        assert_eq!(t.body().len(), 2);
        let rec = t.record();
        assert_eq!(rec.id, TraceId::new(3));
        assert_eq!(rec.size_bytes, 48);
        assert_eq!(rec.head, Addr::new(0x1000));
    }

    #[test]
    #[should_panic(expected = "begin at its head")]
    fn body_must_start_at_head() {
        let _ = Trace::new(
            TraceId::new(1),
            Addr::new(0x1000),
            vec![Addr::new(0x2000)],
            8,
            ModuleId::new(0),
            Time::ZERO,
        );
    }

    #[test]
    #[should_panic(expected = "must contain blocks")]
    fn empty_body_rejected() {
        let _ = Trace::new(
            TraceId::new(1),
            Addr::new(0x1000),
            Vec::new(),
            8,
            ModuleId::new(0),
            Time::ZERO,
        );
    }
}
