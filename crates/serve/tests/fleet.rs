//! Fleet tests: three in-process daemons behind a `ShardRouter`, real
//! TCP end to end.
//!
//! The property under test is the tentpole guarantee: a job submitted
//! to the router — split per benchmark across shards, simulated
//! concurrently, merged — answers with *exactly* the bytes offline
//! `simulate --metrics-out` produces for the same export and specs,
//! even while shards die and come back mid-run.

use std::collections::BTreeSet;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use gencache_bench::ingest::{
    resolve_sim_specs, run_sim_job, sim_metrics_doc, SimJobOptions, StreamIngest,
};
use gencache_bench::{export_telemetry, record_all, value_to_json, HarnessOptions};
use gencache_serve::{
    Client, JobSpec, Reply, RetryPolicy, Server, ServerConfig, ShardConfig, ShardRouter, Span,
};
use gencache_workloads::Suite;
use serde::Value;

/// Number of benchmarks in the shared export — enough that a 3-shard
/// ring gives at least two shards real work.
const BENCHES: usize = 3;

/// Records three benchmarks and returns the combined v2 export text.
fn export() -> &'static str {
    static EXPORT: OnceLock<String> = OnceLock::new();
    EXPORT.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("gencache-fleet-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl").to_str().unwrap().to_string();
        let opts = HarnessOptions {
            scale: 64,
            suite: Some(Suite::Interactive),
            jobs: Some(1),
            events_out: Some(path.clone()),
            ..HarnessOptions::default()
        };
        let runs = record_all(&opts);
        export_telemetry(&opts, &runs[..BENCHES]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        text
    })
}

/// The spec set every fleet test submits: explicit labels (including
/// the adaptive controller, whose switch report must survive the merge
/// byte-for-byte) plus the §6 grid, so all shards resolve the identical
/// label list.
fn fleet_spec() -> JobSpec {
    JobSpec {
        specs: vec![
            "unified".to_string(),
            "lru".to_string(),
            "adaptive".to_string(),
        ],
        grid: true,
        ..JobSpec::default()
    }
}

/// What single-node `simulate --metrics-out` writes for this export and
/// the fleet spec set, with or without the oracle/windows sections (and
/// so with or without the optional per-spec subtrees) — the
/// byte-identity reference.
fn offline_doc_with(oracle: bool, windows: bool) -> String {
    let mut ingest = StreamIngest::new();
    for line in export().lines() {
        ingest.push_line(line).unwrap();
    }
    let inputs = ingest.into_inputs(None, None, None).unwrap();
    let spec = fleet_spec();
    let specs = resolve_sim_specs(&spec.specs, spec.grid).unwrap();
    let options = SimJobOptions {
        oracle,
        windows,
        ..SimJobOptions::default()
    };
    let out = run_sim_job(&inputs, &specs, options, 1, None).unwrap();
    value_to_json(&sim_metrics_doc(&out))
}

fn offline_doc() -> &'static str {
    static DOC: OnceLock<String> = OnceLock::new();
    DOC.get_or_init(|| offline_doc_with(false, false))
}

struct TestServer {
    addr: String,
    flag: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn start() -> TestServer {
        let server = Server::bind(&ServerConfig {
            workers: Some(2),
            queue_depth: Some(16),
            ..ServerConfig::default()
        })
        .expect("bind ephemeral port");
        let addr = server.local_addr().unwrap().to_string();
        let flag = server.shutdown_flag();
        let handle = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            flag,
            handle: Some(handle),
        }
    }

    /// Stops the daemon and waits for its drain — after this, connects
    /// to its address are refused, as if the shard crashed.
    fn kill(&mut self) {
        self.flag.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            handle
                .join()
                .expect("server thread panicked")
                .expect("accept loop failed");
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.kill();
    }
}

struct TestRouter {
    addr: String,
    flag: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestRouter {
    fn start(backends: Vec<String>, health_interval: Duration) -> TestRouter {
        let router = ShardRouter::bind(&ShardConfig {
            backends,
            health_interval,
            // Patient enough to outlast multi-second debug-build
            // sub-jobs when every shard queue is briefly full.
            retry: RetryPolicy::new(8, 250),
            ..ShardConfig::default()
        })
        .expect("bind router");
        let addr = router.local_addr().unwrap().to_string();
        let flag = router.shutdown_flag();
        let handle = std::thread::spawn(move || router.run());
        TestRouter {
            addr,
            flag,
            handle: Some(handle),
        }
    }

    fn client(&self) -> Client {
        Client::new(&self.addr)
    }
}

impl Drop for TestRouter {
    fn drop(&mut self) {
        self.flag.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            handle
                .join()
                .expect("router thread panicked")
                .expect("router accept loop failed");
        }
    }
}

fn submit_via(addr: &str, spec: &JobSpec) -> Reply {
    Client::new(addr)
        .submit(export().as_bytes(), spec)
        .expect("submit through router")
}

#[test]
fn fleet_reply_is_byte_identical_to_offline_simulate() {
    let shards: Vec<TestServer> = (0..3).map(|_| TestServer::start()).collect();
    let router = TestRouter::start(
        shards.iter().map(|s| s.addr.clone()).collect(),
        Duration::from_millis(200),
    );

    // Oracle on: each shard doc carries a per-spec regret section, so
    // the router merge must round-trip regret byte-exactly too. (Kept
    // out of the concurrent test — the second replay pass regret costs
    // overloads a 3-shard debug-build fleet under 4 simultaneous jobs.)
    let spec = JobSpec {
        oracle: true,
        ..fleet_spec()
    };
    match submit_via(&router.addr, &spec) {
        Reply::Result {
            doc,
            table,
            benches,
            specs,
            ..
        } => {
            assert_eq!(
                doc,
                offline_doc_with(true, false),
                "fleet doc diverged from offline simulate"
            );
            assert!(
                doc.contains("\"regret\":{\"accesses\":"),
                "oracle fleet doc carries no regret section"
            );
            assert_eq!(benches, BENCHES as u64);
            assert!(specs >= 2);
            // The merged table covers every benchmark the doc covers.
            assert_eq!(
                table.matches("=== ").count(),
                BENCHES,
                "merged table is missing benchmarks:\n{table}"
            );
        }
        other => panic!("unexpected reply {other:?}"),
    }

    // Work actually spread: at least two shards routed sub-jobs.
    let Reply::Shards { doc } = router.client().shards().unwrap() else {
        panic!("shards request failed");
    };
    let routed = doc.matches("\"jobs_routed\":0").count();
    assert!(
        routed <= 1,
        "expected >=2 shards with work, table: {doc}"
    );

    // Placement introspection answers for every benchmark.
    for line in ["word", "solitaire"] {
        match router.client().route(line) {
            Ok(Reply::Route { bench, addr }) => {
                assert_eq!(bench, line);
                assert!(
                    shards.iter().any(|s| s.addr == addr),
                    "routed to unknown shard {addr}"
                );
            }
            other => panic!("route failed: {other:?}"),
        }
    }
}

#[test]
fn concurrent_fleet_clients_all_get_identical_bytes() {
    let shards: Vec<TestServer> = (0..3).map(|_| TestServer::start()).collect();
    let router = TestRouter::start(
        shards.iter().map(|s| s.addr.clone()).collect(),
        Duration::from_millis(200),
    );
    let expected = offline_doc();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = router.addr.clone();
                scope.spawn(move || submit_via(&addr, &fleet_spec()))
            })
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            match handle.join().expect("client thread panicked") {
                Reply::Result { doc, .. } => {
                    assert_eq!(doc, expected, "concurrent client {i} diverged");
                }
                other => panic!("client {i}: unexpected reply {other:?}"),
            }
        }
    });

    // Fleet stats: the router aggregated its shards and its own view.
    let Reply::Stats { doc } = router.client().stats().unwrap() else {
        panic!("stats request failed");
    };
    for key in [
        "\"jobs_completed\":",
        "\"jobs_panicked\":",
        "\"latency_us\":",
        "\"router\":",
        "\"fleet_jobs\":4",
        "\"shards_up\":3",
        "\"shards\":[",
        "\"upload_buffer_peak_bytes\":",
    ] {
        assert!(doc.contains(key), "fleet stats missing {key}: {doc}");
    }
    // Four real uploads went through the router, so its buffering
    // high-water mark must be nonzero.
    assert!(
        !doc.contains("\"upload_buffer_peak_bytes\":0,")
            && !doc.contains("\"upload_buffer_peak_bytes\":0}"),
        "upload buffer peak should be nonzero after fleet jobs: {doc}"
    );
}

#[test]
fn killing_a_shard_mid_fleet_degrades_gracefully() {
    let mut shards: Vec<TestServer> = (0..3).map(|_| TestServer::start()).collect();
    // A long health interval: the router must discover the death on the
    // dispatch path (connection refused -> mark down -> re-route), not
    // be rescued by a timely ping.
    let router = TestRouter::start(
        shards.iter().map(|s| s.addr.clone()).collect(),
        Duration::from_secs(60),
    );

    // Find the shard that owns the first benchmark and kill exactly it,
    // so at least one sub-job is guaranteed to hit a dead backend.
    let first_bench = export()
        .lines()
        .find_map(|l| {
            l.strip_prefix("{\"source\":\"")
                .and_then(|rest| rest.split('"').next())
                .map(str::to_string)
        })
        .expect("export has stream lines");
    let Ok(Reply::Route { addr: victim, .. }) = router.client().route(&first_bench) else {
        panic!("route request failed");
    };
    shards
        .iter_mut()
        .find(|s| s.addr == victim)
        .expect("victim is one of ours")
        .kill();

    // The fleet answer is still the exact offline bytes: the dead
    // shard's benchmarks failed over to live ones transparently.
    match submit_via(&router.addr, &fleet_spec()) {
        Reply::Result { doc, .. } => {
            assert_eq!(doc, offline_doc(), "failover run diverged from offline simulate");
        }
        other => panic!("unexpected reply {other:?}"),
    }

    // The router noticed: the victim is marked down and charged a
    // failover; the fleet keeps answering.
    let Reply::Shards { doc } = router.client().shards().unwrap() else {
        panic!("shards request failed");
    };
    assert!(doc.contains("\"up\":false"), "victim not marked down: {doc}");
    let Reply::Stats { doc } = router.client().stats().unwrap() else {
        panic!("stats request failed");
    };
    assert!(doc.contains("\"shards_down\":1"), "stats disagree: {doc}");
    assert!(doc.contains("\"failovers\":1"), "no failover charged: {doc}");
}

/// Fetches and parses the span set a daemon retains for `trace_id`.
fn trace_spans(client: &Client, trace_id: &str) -> Vec<Span> {
    match client.trace(trace_id).expect("trace request") {
        Reply::Trace { doc, .. } => {
            let v = serde_json::value_from_str(&doc).expect("trace doc parses");
            let Value::Array(items) = v else {
                panic!("trace doc is not an array: {doc}");
            };
            items.iter().filter_map(Span::from_value).collect()
        }
        other => panic!("unexpected trace reply {other:?}"),
    }
}

#[test]
fn trace_id_propagates_from_client_through_router_to_every_shard() {
    let shards: Vec<TestServer> = (0..3).map(|_| TestServer::start()).collect();
    let router = TestRouter::start(
        shards.iter().map(|s| s.addr.clone()).collect(),
        Duration::from_millis(200),
    );
    let trace_id = "feedfacefeedface";
    let spec = JobSpec {
        trace_id: Some(trace_id.to_string()),
        ..fleet_spec()
    };
    let (reply, client_spans) = router
        .client()
        .submit_with_spans(export().as_bytes(), &spec)
        .expect("submit with spans");
    assert!(matches!(reply, Reply::Result { .. }), "got {reply:?}");

    // Client-side spans all carry the stamped id under node `client`.
    assert!(!client_spans.is_empty());
    for span in &client_spans {
        assert_eq!(span.trace_id, trace_id);
        assert_eq!(span.node, "client");
    }
    for stage in ["upload", "reply_wait", "job"] {
        assert!(
            client_spans.iter().any(|s| s.stage == stage),
            "client missing {stage} span: {client_spans:?}"
        );
    }

    // The router's trace frame stitches its own spans with every live
    // shard's — one id across all three layers.
    let spans = trace_spans(&router.client(), trace_id);
    assert!(spans.iter().all(|s| s.trace_id == trace_id));
    let router_spans: Vec<&Span> =
        spans.iter().filter(|s| s.node.starts_with("router:")).collect();
    for stage in ["accept", "ingest", "merge", "reply"] {
        assert!(
            router_spans.iter().any(|s| s.stage == stage),
            "router missing {stage} span: {spans:?}"
        );
    }
    // Every dispatch target the router recorded shows up as a serve
    // node that recorded its own spans, and vice versa.
    let dispatched: BTreeSet<&str> = router_spans
        .iter()
        .filter_map(|s| s.stage.strip_prefix("dispatch:"))
        .collect();
    let served: BTreeSet<&str> = spans
        .iter()
        .filter_map(|s| s.node.strip_prefix("serve:"))
        .collect();
    assert!(!dispatched.is_empty(), "router recorded no dispatch spans");
    assert_eq!(dispatched, served, "dispatch targets and serve nodes disagree");
    // Each shard that got work timed the full serve pipeline.
    for addr in &served {
        let node = format!("serve:{addr}");
        for stage in ["accept", "queue", "ingest", "reply"] {
            assert!(
                spans.iter().any(|s| s.node == node && s.stage == stage),
                "{node} missing {stage} span"
            );
        }
        assert!(
            spans
                .iter()
                .any(|s| s.node == node && s.stage.starts_with("replay:")),
            "{node} missing replay spans"
        );
    }
}

#[test]
fn windowed_fleet_doc_is_byte_identical_to_offline_simulate() {
    let shards: Vec<TestServer> = (0..3).map(|_| TestServer::start()).collect();
    let router = TestRouter::start(
        shards.iter().map(|s| s.addr.clone()).collect(),
        Duration::from_millis(200),
    );
    let spec = JobSpec {
        windows: true,
        ..fleet_spec()
    };
    match submit_via(&router.addr, &spec) {
        Reply::Result { doc, .. } => {
            assert_eq!(
                doc,
                offline_doc_with(false, true),
                "windowed fleet doc diverged from offline simulate --windows"
            );
            assert!(
                doc.contains("\"windows\":{\"window_accesses\":"),
                "windowed fleet doc carries no windows section"
            );
        }
        other => panic!("unexpected reply {other:?}"),
    }
    // The plain doc is untouched by the windows machinery: same job
    // without the flag still answers the exact pre-windows bytes.
    match submit_via(&router.addr, &fleet_spec()) {
        Reply::Result { doc, .. } => assert_eq!(doc, offline_doc()),
        other => panic!("unexpected reply {other:?}"),
    }
}

#[test]
fn watch_frames_flow_through_daemon_and_router() {
    let shard = TestServer::start();
    // Straight to the daemon: one snapshot, one row, sane fields.
    let rows = Client::new(&shard.addr)
        .watch_once(100)
        .expect("daemon watch");
    assert_eq!(rows.len(), 1, "daemon watch returned {rows:?}");
    assert!(!rows[0].node.is_empty());
    assert_eq!(rows[0].jobs_total, 0);

    // Through the router: the frame carries the backend's row (stitched
    // from a live one-shot shard sample), not router-local numbers.
    let router = TestRouter::start(vec![shard.addr.clone()], Duration::from_millis(100));
    let mut frames = 0u64;
    let received = router
        .client()
        .watch(150, 2, |node, seq, rows| {
            assert!(node.starts_with("router:"), "watch frame from {node}");
            assert_eq!(seq, frames);
            assert_eq!(rows.len(), 1, "router frame rows: {rows:?}");
            assert_eq!(rows[0].node, format!("serve:{}", shard.addr));
            frames += 1;
            true
        })
        .expect("router watch");
    assert_eq!(received, 2);
    assert_eq!(frames, 2);
}

#[test]
fn single_daemon_refuses_fleet_frames() {
    let shard = TestServer::start();
    match Client::new(&shard.addr).shards() {
        Ok(Reply::Error { message }) => {
            assert!(message.contains("not a fleet router"), "got {message:?}");
        }
        other => panic!("expected an error reply, got {other:?}"),
    }

    // And a router proxies fetch: the downloaded export simulates.
    let router = TestRouter::start(vec![shard.addr.clone()], Duration::from_millis(200));
    let mut out = Vec::new();
    let lines = router
        .client()
        .fetch("solitaire", 64, &mut out)
        .expect("fetch through the router");
    assert!(lines > 2);
    let text = String::from_utf8(out).unwrap();
    assert_eq!(text.lines().count() as u64, lines);
    let mut sink = std::io::sink();
    sink.write_all(text.as_bytes()).unwrap();
}
