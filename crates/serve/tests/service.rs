//! End-to-end service tests: an in-process daemon, real TCP clients.
//!
//! The export used throughout is recorded once (scale-64 interactive
//! benchmark) and shared across tests; each test binds its own daemon on
//! an ephemeral port and shuts it down through the server's flag, so the
//! suite exercises bind → serve → drain → join for every configuration.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use gencache_bench::ingest::{
    resolve_sim_specs, run_sim_job, sim_metrics_doc, SimJobOptions, StreamIngest,
};
use gencache_bench::{export_telemetry, record_all, value_to_json, HarnessOptions};
use gencache_obs::{parse_stream_line, StreamLine};
use gencache_serve::{Client, JobSpec, Reply, RetryPolicy, Server, ServerConfig, Span};
use gencache_workloads::Suite;
use serde::Value;

/// Records one tiny benchmark and returns its v2 export text. Shared
/// across tests — recording is the slow part.
fn export() -> &'static str {
    static EXPORT: OnceLock<String> = OnceLock::new();
    EXPORT.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("gencache-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl").to_str().unwrap().to_string();
        let opts = HarnessOptions {
            scale: 64,
            suite: Some(Suite::Interactive),
            jobs: Some(1),
            events_out: Some(path.clone()),
            ..HarnessOptions::default()
        };
        let runs = record_all(&opts);
        export_telemetry(&opts, &runs[..1]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        text
    })
}

/// What `simulate --metrics-out` would write for this export and spec
/// set, minus the trailing newline: the same ingest + runner + document
/// path the daemon uses, run offline.
fn offline_doc(export: &str, labels: &[&str], grid: bool, oracle: bool) -> String {
    let mut ingest = StreamIngest::new();
    for line in export.lines() {
        ingest.push_line(line).unwrap();
    }
    let inputs = ingest.into_inputs(None, None, None).unwrap();
    let labels: Vec<String> = labels.iter().map(|s| s.to_string()).collect();
    let specs = resolve_sim_specs(&labels, grid).unwrap();
    let out = run_sim_job(&inputs, &specs, SimJobOptions::oracle(oracle), 1, None).unwrap();
    value_to_json(&sim_metrics_doc(&out))
}

struct TestServer {
    addr: String,
    flag: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn start(config: ServerConfig) -> TestServer {
        let server = Server::bind(&config).expect("bind ephemeral port");
        let addr = server.local_addr().unwrap().to_string();
        let flag = server.shutdown_flag();
        let handle = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            flag,
            handle: Some(handle),
        }
    }

    fn client(&self) -> Client {
        Client::new(&self.addr)
    }

    /// Polls the stats endpoint until `pred` holds or the wait times out.
    fn wait_stats(&self, pred: impl Fn(&str) -> bool, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Ok(Reply::Stats { doc }) = self.client().stats() {
                if pred(&doc) {
                    return;
                }
            }
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.flag.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            handle
                .join()
                .expect("server thread panicked")
                .expect("accept loop failed");
        }
    }
}

fn counter(doc: &str, name: &str) -> u64 {
    // The stats document is flat JSON with unsigned counters; a
    // substring scan keeps the test free of a parser dependency.
    let needle = format!("\"{name}\":");
    let at = doc.find(&needle).unwrap_or_else(|| panic!("{name} missing from {doc}"));
    doc[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn concurrent_clients_match_offline_simulate_byte_for_byte() {
    let export = export();
    let server = TestServer::start(ServerConfig {
        workers: Some(4),
        queue_depth: Some(8),
        ..ServerConfig::default()
    });

    // Five clients, five different spec sets, all over the same export.
    let cases: Vec<(Vec<&str>, bool, bool)> = vec![
        (vec!["unified"], false, false),
        (vec!["lru"], false, false),
        (vec!["gen-45-10-45@hit1"], false, false),
        (vec!["gen-60-20-20@hit2"], false, true),
        (vec![], false, false), // export defaults
    ];
    let expected: Vec<String> = cases
        .iter()
        .map(|(labels, grid, oracle)| offline_doc(export, labels, *grid, *oracle))
        .collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = cases
            .iter()
            .map(|(labels, grid, oracle)| {
                let addr = server.addr.clone();
                scope.spawn(move || {
                    let spec = JobSpec {
                        specs: labels.iter().map(|s| s.to_string()).collect(),
                        grid: *grid,
                        oracle: *oracle,
                        ..JobSpec::default()
                    };
                    Client::new(addr).submit(export.as_bytes(), &spec)
                })
            })
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            match handle.join().expect("client thread panicked") {
                Ok(Reply::Result { doc, benches, specs, .. }) => {
                    assert_eq!(doc, expected[i], "client {i} diverged from offline simulate");
                    assert_eq!(benches, 1);
                    assert!(specs >= 1);
                }
                other => panic!("client {i}: unexpected outcome {other:?}"),
            }
        }
    });

    let Reply::Stats { doc } = server.client().stats().unwrap() else {
        panic!("stats request failed");
    };
    assert_eq!(counter(&doc, "jobs_completed"), 5);
    assert_eq!(counter(&doc, "jobs_failed"), 0);
    assert!(counter(&doc, "bytes_ingested") >= 5 * export.len() as u64);
}

#[test]
fn full_queue_sheds_submissions_with_busy() {
    let export = export();
    let server = TestServer::start(ServerConfig {
        workers: Some(1),
        queue_depth: Some(1),
        ..ServerConfig::default()
    });

    // Occupy the single worker with a held ping...
    let hold = {
        let addr = server.addr.clone();
        std::thread::spawn(move || Client::new(addr).ping(1500))
    };
    server.wait_stats(
        |doc| counter(doc, "jobs_accepted") >= 1 && counter(doc, "queue_depth") == 0,
        "worker to pick up the first held ping",
    );
    // ...park a second held ping in the queue's only slot...
    let queued = {
        let addr = server.addr.clone();
        std::thread::spawn(move || Client::new(addr).ping(1))
    };
    server.wait_stats(
        |doc| counter(doc, "jobs_accepted") >= 2,
        "second ping to fill the queue",
    );

    // ...and a submission is shed immediately instead of hanging.
    let started = Instant::now();
    match server.client().submit(export.as_bytes(), &JobSpec::default()) {
        Ok(Reply::Busy { .. }) => {}
        other => panic!("expected busy, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "busy reply should be immediate, took {:?}",
        started.elapsed()
    );

    assert!(matches!(hold.join().unwrap(), Ok(Reply::Pong)));
    assert!(matches!(queued.join().unwrap(), Ok(Reply::Pong)));

    let Reply::Stats { doc } = server.client().stats().unwrap() else {
        panic!("stats request failed");
    };
    assert!(counter(&doc, "jobs_rejected") >= 1);

    // Capacity is free again: the same submission now succeeds.
    match server.client().submit(export.as_bytes(), &JobSpec::default()) {
        Ok(Reply::Result { .. }) => {}
        other => panic!("expected result after drain, got {other:?}"),
    }
}

#[test]
fn malformed_and_truncated_uploads_fail_cleanly_and_daemon_survives() {
    let export = export();
    let server = TestServer::start(ServerConfig {
        workers: Some(1),
        ..ServerConfig::default()
    });

    let raw = |frames: &[&str], cut: bool| -> String {
        let stream = TcpStream::connect(&server.addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        for frame in frames {
            writer.write_all(frame.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
        }
        if cut {
            stream.shutdown(Shutdown::Write).unwrap();
        }
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    };

    // A line that is neither a control frame nor valid export JSON.
    let job = "{\"type\":\"job\"}";
    let reply = raw(&[job, "{this is not json"], true);
    assert!(reply.contains("\"error\""), "want error reply, got {reply}");

    // A stream cut off before the end frame.
    let lines: Vec<&str> = export.lines().take(3).collect();
    let mut frames = vec![job];
    frames.extend(&lines);
    let reply = raw(&frames, true);
    assert!(reply.contains("\"error\""), "want error reply, got {reply}");
    assert!(
        reply.contains("connection closed mid-upload"),
        "want truncation diagnosis, got {reply}"
    );

    // An end frame whose claimed line count disagrees with what arrived.
    let mut frames = vec![job];
    frames.extend(&lines);
    frames.push("{\"type\":\"end\",\"lines\":9999}");
    let reply = raw(&frames, true);
    assert!(reply.contains("upload truncated"), "got {reply}");

    // A first frame that is not a control frame at all.
    let reply = raw(&["{\"schema\":\"gencache-events\"}"], true);
    assert!(reply.contains("\"error\""), "got {reply}");

    // The daemon shrugged all of it off: health, stats, and a real job
    // all still work on fresh connections.
    assert!(matches!(server.client().ping(0), Ok(Reply::Pong)));
    let Reply::Stats { doc } = server.client().stats().unwrap() else {
        panic!("stats request failed");
    };
    assert!(counter(&doc, "jobs_failed") >= 2);
    match server.client().submit(export.as_bytes(), &JobSpec::default()) {
        Ok(Reply::Result { doc, .. }) => {
            assert_eq!(doc, offline_doc(export, &[], false, false));
        }
        other => panic!("expected result, got {other:?}"),
    }
}

#[test]
fn fetch_streams_an_export_that_simulates_cleanly() {
    let server = TestServer::start(ServerConfig::default());
    let mut out = Vec::new();
    let lines = server
        .client()
        .fetch("solitaire", 64, &mut out)
        .expect("fetch a server-side recording");
    assert!(lines > 2, "expected header + meta + events, got {lines}");
    let text = String::from_utf8(out).unwrap();
    assert_eq!(text.lines().count() as u64, lines);

    // The download is a complete v2 export: it ingests and simulates.
    let doc = offline_doc(&text, &["unified"], false, false);
    assert!(doc.contains("\"unified\""));

    let Reply::Stats { doc } = server.client().stats().unwrap() else {
        panic!("stats request failed");
    };
    assert_eq!(counter(&doc, "lines_served"), lines);
}

#[test]
fn busy_submission_succeeds_under_retry_policy() {
    let export = export();
    let server = TestServer::start(ServerConfig {
        workers: Some(1),
        queue_depth: Some(1),
        ..ServerConfig::default()
    });

    // Worker held, queue slot parked: the next submission is shed.
    let hold = {
        let addr = server.addr.clone();
        std::thread::spawn(move || Client::new(addr).ping(800))
    };
    server.wait_stats(
        |doc| counter(doc, "jobs_accepted") >= 1 && counter(doc, "queue_depth") == 0,
        "worker to pick up the held ping",
    );
    let queued = {
        let addr = server.addr.clone();
        std::thread::spawn(move || Client::new(addr).ping(1))
    };
    server.wait_stats(
        |doc| counter(doc, "jobs_accepted") >= 2,
        "second ping to fill the queue",
    );

    // With retries disabled, the shed surfaces as the final busy reply.
    let no_retry = server
        .client()
        .submit_with_retry(|| Ok(export.as_bytes()), &JobSpec::default(), &RetryPolicy::none())
        .unwrap();
    assert!(matches!(no_retry, Reply::Busy { .. }), "got {no_retry:?}");

    // Under the policy, the retries outlast the 800 ms hold and the same
    // submission completes without the caller doing anything.
    let reply = server
        .client()
        .submit_with_retry(
            || Ok(export.as_bytes()),
            &JobSpec::default(),
            &RetryPolicy::new(6, 250),
        )
        .unwrap();
    assert!(matches!(reply, Reply::Result { .. }), "got {reply:?}");

    assert!(matches!(hold.join().unwrap(), Ok(Reply::Pong)));
    assert!(matches!(queued.join().unwrap(), Ok(Reply::Pong)));
}

#[test]
fn deadline_covers_queue_wait_not_just_execution() {
    let export = export();
    let server = TestServer::start(ServerConfig {
        workers: Some(1),
        queue_depth: Some(4),
        ..ServerConfig::default()
    });

    // Pin the only worker long enough that a queued job's whole budget
    // elapses before it is even picked up.
    let hold = {
        let addr = server.addr.clone();
        std::thread::spawn(move || Client::new(addr).ping(700))
    };
    server.wait_stats(
        |doc| counter(doc, "jobs_accepted") >= 1 && counter(doc, "queue_depth") == 0,
        "worker to pick up the held ping",
    );

    // The deadline clock starts at admission, so 100 ms of budget burned
    // by 700 ms of queue wait must fail — a job that is already stale
    // when a worker frees up is dead on dequeue, not silently run late.
    let spec = JobSpec {
        deadline_ms: Some(100),
        ..JobSpec::default()
    };
    match server.client().submit(export.as_bytes(), &spec) {
        Ok(Reply::Error { message }) => {
            assert!(
                message.contains("deadline"),
                "want a deadline diagnosis, got {message:?}"
            );
        }
        other => panic!("expected a deadline error, got {other:?}"),
    }
    assert!(matches!(hold.join().unwrap(), Ok(Reply::Pong)));

    // With no queue wait eating it, a real budget completes fine.
    let roomy = JobSpec {
        deadline_ms: Some(30_000),
        ..JobSpec::default()
    };
    match server.client().submit(export.as_bytes(), &roomy) {
        Ok(Reply::Result { .. }) => {}
        other => panic!("expected result on an idle server, got {other:?}"),
    }
}

#[test]
fn interleaved_upload_streams_get_a_clear_error() {
    let export = export();
    let server = TestServer::start(ServerConfig::default());

    // Replay a completed stream's first event after the rest of the
    // export: the reappearing (source, model) key must be called out as
    // interleaving, not surface as a baffling divergence error.
    let first_event = export
        .lines()
        .find(|l| matches!(parse_stream_line(l), Ok(StreamLine::Event(_))))
        .expect("export has event lines");
    let interleaved = format!("{export}{first_event}\n");
    match server.client().submit(interleaved.as_bytes(), &JobSpec::default()) {
        Ok(Reply::Error { message }) => {
            assert!(
                message.contains("interleave"),
                "want an interleaving diagnosis, got {message:?}"
            );
        }
        other => panic!("expected an interleaving error, got {other:?}"),
    }

    // The daemon took no damage: the clean export still simulates.
    match server.client().submit(export.as_bytes(), &JobSpec::default()) {
        Ok(Reply::Result { .. }) => {}
        other => panic!("expected result, got {other:?}"),
    }
}

#[test]
fn stats_report_panicked_jobs() {
    let server = TestServer::start(ServerConfig::default());
    let Reply::Stats { doc } = server.client().stats().unwrap() else {
        panic!("stats request failed");
    };
    // The counter exists and starts at zero; the pool's unit tests cover
    // that a panicking job increments it without killing the worker.
    assert_eq!(counter(&doc, "jobs_panicked"), 0);
}

/// Fetches and parses the span set a daemon retains for `trace_id`.
fn trace_spans(client: &Client, trace_id: &str) -> Vec<Span> {
    match client.trace(trace_id).expect("trace request") {
        Reply::Trace { doc, .. } => {
            let v = serde_json::value_from_str(&doc).expect("trace doc parses");
            let Value::Array(items) = v else {
                panic!("trace doc is not an array: {doc}");
            };
            items.iter().filter_map(Span::from_value).collect()
        }
        other => panic!("unexpected trace reply {other:?}"),
    }
}

#[test]
fn happy_job_records_every_stage_and_metrics_expose_it() {
    let export = export();
    let server = TestServer::start(ServerConfig::default());
    let trace_id = "0123456789abcdef";
    let spec = JobSpec {
        trace_id: Some(trace_id.to_string()),
        ..JobSpec::default()
    };
    match server.client().submit(export.as_bytes(), &spec) {
        Ok(Reply::Result { .. }) => {}
        other => panic!("expected result, got {other:?}"),
    }

    // Every stage of the pipeline left a span under the stamped id.
    let spans = trace_spans(&server.client(), trace_id);
    assert!(spans.iter().all(|s| s.trace_id == trace_id));
    for stage in ["accept", "queue", "ingest", "reply"] {
        assert!(
            spans.iter().any(|s| s.stage == stage && s.outcome == "ok"),
            "missing ok {stage} span: {spans:?}"
        );
    }
    assert!(
        spans.iter().any(|s| s.stage.starts_with("replay:")),
        "missing replay spans: {spans:?}"
    );
    let ingest = spans.iter().find(|s| s.stage == "ingest").unwrap();
    assert!(ingest.lines.unwrap_or(0) > 0, "ingest span counts lines");
    assert!(
        ingest.bytes.unwrap_or(0) >= export.len() as u64,
        "ingest span counts bytes"
    );
    let reply = spans.iter().find(|s| s.stage == "reply").unwrap();
    assert!(reply.bytes.unwrap_or(0) > 0, "reply span counts bytes");

    // The metrics frame is well-formed Prometheus text exposition:
    // every line is a comment header or `name[{labels}] value`.
    let Ok(Reply::Metrics { body }) = server.client().metrics() else {
        panic!("metrics request failed");
    };
    assert!(!body.is_empty());
    for line in body.lines() {
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("metrics line has no sample value: {line:?}")
        });
        assert!(!series.is_empty(), "empty series name: {line:?}");
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "unparseable sample value in {line:?}"
        );
    }
    for series in [
        "gencache_jobs_accepted_total 1",
        "gencache_jobs_completed_total 1",
        "gencache_job_latency_us_bucket{le=\"+Inf\"} 1",
        "gencache_job_latency_us_count 1",
        "gencache_workers ",
        "gencache_uptime_ms ",
    ] {
        assert!(body.contains(series), "metrics missing {series:?}:\n{body}");
    }
}

#[test]
fn shed_and_deadline_jobs_leave_diagnosable_spans() {
    let export = export();
    let server = TestServer::start(ServerConfig {
        workers: Some(1),
        queue_depth: Some(1),
        ..ServerConfig::default()
    });

    // Hold the worker and park a second ping in the only queue slot,
    // exactly like the shedding test — then submit with a trace id.
    let hold = {
        let addr = server.addr.clone();
        std::thread::spawn(move || Client::new(addr).ping(1200))
    };
    server.wait_stats(
        |doc| counter(doc, "jobs_accepted") >= 1 && counter(doc, "queue_depth") == 0,
        "worker to pick up the held ping",
    );
    let queued = {
        let addr = server.addr.clone();
        std::thread::spawn(move || Client::new(addr).ping(600))
    };
    server.wait_stats(
        |doc| counter(doc, "jobs_accepted") >= 2,
        "second ping to fill the queue",
    );

    let shed_id = "5hed5hed5hed5hed";
    let spec = JobSpec {
        trace_id: Some(shed_id.to_string()),
        ..JobSpec::default()
    };
    match server.client().submit(export.as_bytes(), &spec) {
        Ok(Reply::Busy { .. }) => {}
        other => panic!("expected busy, got {other:?}"),
    }
    let spans = trace_spans(&server.client(), shed_id);
    assert!(
        spans.iter().any(|s| s.stage == "accept" && s.outcome == "busy"),
        "shed job must record a busy accept span: {spans:?}"
    );

    // A queued job whose deadline expires before pickup records the
    // wait that killed it — and never reaches replay. Wait for the
    // queued ping to reach the worker (queue empty, one in flight) so
    // the next submission queues behind its 600 ms instead of shedding.
    server.wait_stats(
        |doc| counter(doc, "in_flight") == 1 && counter(doc, "queue_depth") == 0,
        "queued ping to reach the worker",
    );
    let late_id = "1a7e1a7e1a7e1a7e";
    let spec = JobSpec {
        trace_id: Some(late_id.to_string()),
        deadline_ms: Some(50),
        ..JobSpec::default()
    };
    match server.client().submit(export.as_bytes(), &spec) {
        Ok(Reply::Error { message }) => {
            assert!(message.contains("deadline"), "got {message:?}");
        }
        other => panic!("expected a deadline error, got {other:?}"),
    }
    assert!(matches!(hold.join().unwrap(), Ok(Reply::Pong)));
    assert!(matches!(queued.join().unwrap(), Ok(Reply::Pong)));
    let spans = trace_spans(&server.client(), late_id);
    assert!(
        spans.iter().any(|s| s.stage == "accept" && s.outcome == "ok"),
        "late job was admitted: {spans:?}"
    );
    assert!(
        spans
            .iter()
            .any(|s| s.stage == "queue" && s.outcome.contains("deadline")),
        "queue span must carry the deadline outcome: {spans:?}"
    );
    assert!(
        !spans.iter().any(|s| s.stage.starts_with("replay:")),
        "a dead-on-dequeue job must not replay: {spans:?}"
    );
}

#[test]
fn idle_connection_times_out_instead_of_wedging() {
    // A client that connects and sends nothing must not pin the
    // connection thread forever: the read timeout reclaims it.
    let server = TestServer::start(ServerConfig {
        read_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    });
    let stream = TcpStream::connect(&server.addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    // The server gives up on us; EOF or a reset both prove it.
    let n = reader.read_line(&mut line).unwrap_or(0);
    assert!(
        n == 0 || line.contains("\"error\""),
        "expected drop or error, got {line:?}"
    );
    drop(stream);
    // And the daemon is still healthy.
    assert!(matches!(server.client().ping(0), Ok(Reply::Pong)));
}
