//! Daemon counters: lock-free totals plus a log2 latency histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gencache_obs::Log2Histogram;
use serde::{Serialize, Value};

/// Monotonic counters shared by every connection and worker thread.
/// Totals are relaxed atomics (each is independently monotonic; the
/// snapshot is a consistent-enough observation for an operations
/// endpoint, not a transaction); the latency histogram sits behind a
/// mutex touched once per completed job.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Jobs admitted to the queue (simulation jobs, pings, fetches).
    pub jobs_accepted: AtomicU64,
    /// Jobs that finished successfully.
    pub jobs_completed: AtomicU64,
    /// Jobs shed with a `busy` reply because the queue was full.
    pub jobs_rejected: AtomicU64,
    /// Jobs that ended in an `error` reply (malformed stream, deadline,
    /// cancellation).
    pub jobs_failed: AtomicU64,
    /// Export bytes ingested across all job uploads.
    pub bytes_ingested: AtomicU64,
    /// Export lines streamed back by `fetch` downloads.
    pub lines_served: AtomicU64,
    /// Exact sum of recorded job latencies in microseconds (the
    /// histogram keeps only bucket counts; Prometheus `_sum` needs the
    /// exact total).
    pub latency_sum_us: AtomicU64,
    /// Final-window miss rate of the most recent windowed job, stored
    /// as `f64::to_bits` so the gauge stays a lock-free atomic.
    pub window_miss_rate_bits: AtomicU64,
    /// Drift annotations accumulated across all windowed jobs.
    pub drift_events: AtomicU64,
    latency_us: Mutex<Log2Histogram>,
}

impl ServerStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn bump(counter: &AtomicU64) {
        ServerStats::add(counter, 1);
    }

    /// Records one completed simulation job's wall-clock latency.
    pub fn record_latency(&self, micros: u64) {
        ServerStats::add(&self.latency_sum_us, micros);
        self.latency_us
            .lock()
            .expect("latency histogram poisoned")
            .record(micros);
    }

    /// Records the outcome of one windowed (`windows: true`) job: the
    /// gauge takes the job's final-window miss rate, the counter absorbs
    /// its drift annotations.
    pub fn record_windows(&self, miss_rate: f64, drift: u64) {
        self.window_miss_rate_bits
            .store(miss_rate.to_bits(), Ordering::Relaxed);
        ServerStats::add(&self.drift_events, drift);
    }

    /// The last windowed job's final-window miss rate (0 before any).
    pub fn window_miss_rate(&self) -> f64 {
        f64::from_bits(self.window_miss_rate_bits.load(Ordering::Relaxed))
    }

    /// A consistent clone of the latency histogram plus its exact sum,
    /// for Prometheus rendering.
    pub fn latency(&self) -> (Log2Histogram, u64) {
        let hist = self
            .latency_us
            .lock()
            .expect("latency histogram poisoned")
            .clone();
        (hist, self.latency_sum_us.load(Ordering::Relaxed))
    }

    /// Assembles the snapshot document the `stats` reply carries.
    /// `gauges` describes the pool and daemon at snapshot time.
    pub fn snapshot(&self, gauges: &Gauges) -> Value {
        let get = |c: &AtomicU64| Value::UInt(c.load(Ordering::Relaxed));
        let (latency, _) = self.latency();
        Value::Object(vec![
            ("workers".to_string(), Value::UInt(gauges.workers as u64)),
            (
                "queue_depth".to_string(),
                Value::UInt(gauges.queue_depth as u64),
            ),
            ("in_flight".to_string(), Value::UInt(gauges.in_flight)),
            ("connections".to_string(), get(&self.connections)),
            ("jobs_accepted".to_string(), get(&self.jobs_accepted)),
            ("jobs_completed".to_string(), get(&self.jobs_completed)),
            ("jobs_rejected".to_string(), get(&self.jobs_rejected)),
            ("jobs_failed".to_string(), get(&self.jobs_failed)),
            ("jobs_panicked".to_string(), Value::UInt(gauges.panics)),
            ("bytes_ingested".to_string(), get(&self.bytes_ingested)),
            ("lines_served".to_string(), get(&self.lines_served)),
            ("uptime_ms".to_string(), Value::UInt(gauges.uptime_ms)),
            (
                "window_miss_rate".to_string(),
                Value::Float(self.window_miss_rate()),
            ),
            ("drift_events".to_string(), get(&self.drift_events)),
            ("latency_us".to_string(), latency.to_value()),
        ])
    }
}

/// Point-in-time gauges a stats snapshot carries alongside the
/// monotonic counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Queued (not yet running) jobs at snapshot time.
    pub queue_depth: usize,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Jobs that panicked mid-run (pool counter).
    pub panics: u64,
    /// Jobs currently executing on a worker.
    pub in_flight: u64,
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let stats = ServerStats::new();
        ServerStats::bump(&stats.connections);
        ServerStats::bump(&stats.jobs_accepted);
        ServerStats::add(&stats.bytes_ingested, 1234);
        stats.record_latency(900);
        let snap = stats.snapshot(&Gauges {
            queue_depth: 3,
            workers: 2,
            panics: 7,
            in_flight: 1,
            uptime_ms: 5000,
        });
        let pairs = snap.as_object().unwrap();
        let get = |name: &str| {
            pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(get("workers"), Value::UInt(2));
        assert_eq!(get("queue_depth"), Value::UInt(3));
        assert_eq!(get("connections"), Value::UInt(1));
        assert_eq!(get("bytes_ingested"), Value::UInt(1234));
        assert_eq!(get("jobs_panicked"), Value::UInt(7));
        assert_eq!(get("in_flight"), Value::UInt(1));
        assert_eq!(get("uptime_ms"), Value::UInt(5000));
        let (hist, sum) = stats.latency();
        assert_eq!((hist.total(), sum), (1, 900));
        let latency = get("latency_us");
        let total = latency
            .as_object()
            .unwrap()
            .iter()
            .find(|(k, _)| k == "total")
            .map(|(_, v)| v.clone())
            .unwrap();
        assert_eq!(total, Value::UInt(1));
    }
}
