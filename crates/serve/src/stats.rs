//! Daemon counters: lock-free totals plus a log2 latency histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gencache_obs::Log2Histogram;
use serde::{Serialize, Value};

/// Monotonic counters shared by every connection and worker thread.
/// Totals are relaxed atomics (each is independently monotonic; the
/// snapshot is a consistent-enough observation for an operations
/// endpoint, not a transaction); the latency histogram sits behind a
/// mutex touched once per completed job.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Jobs admitted to the queue (simulation jobs, pings, fetches).
    pub jobs_accepted: AtomicU64,
    /// Jobs that finished successfully.
    pub jobs_completed: AtomicU64,
    /// Jobs shed with a `busy` reply because the queue was full.
    pub jobs_rejected: AtomicU64,
    /// Jobs that ended in an `error` reply (malformed stream, deadline,
    /// cancellation).
    pub jobs_failed: AtomicU64,
    /// Export bytes ingested across all job uploads.
    pub bytes_ingested: AtomicU64,
    /// Export lines streamed back by `fetch` downloads.
    pub lines_served: AtomicU64,
    latency_us: Mutex<Log2Histogram>,
}

impl ServerStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn bump(counter: &AtomicU64) {
        ServerStats::add(counter, 1);
    }

    /// Records one completed simulation job's wall-clock latency.
    pub fn record_latency(&self, micros: u64) {
        self.latency_us
            .lock()
            .expect("latency histogram poisoned")
            .record(micros);
    }

    /// Assembles the snapshot document the `stats` reply carries.
    /// `queue_depth` and `workers` describe the pool at snapshot time;
    /// `panics` is the pool's count of jobs that panicked mid-run.
    pub fn snapshot(&self, queue_depth: usize, workers: usize, panics: u64) -> Value {
        let get = |c: &AtomicU64| Value::UInt(c.load(Ordering::Relaxed));
        let latency = self
            .latency_us
            .lock()
            .expect("latency histogram poisoned")
            .clone();
        Value::Object(vec![
            ("workers".to_string(), Value::UInt(workers as u64)),
            ("queue_depth".to_string(), Value::UInt(queue_depth as u64)),
            ("connections".to_string(), get(&self.connections)),
            ("jobs_accepted".to_string(), get(&self.jobs_accepted)),
            ("jobs_completed".to_string(), get(&self.jobs_completed)),
            ("jobs_rejected".to_string(), get(&self.jobs_rejected)),
            ("jobs_failed".to_string(), get(&self.jobs_failed)),
            ("jobs_panicked".to_string(), Value::UInt(panics)),
            ("bytes_ingested".to_string(), get(&self.bytes_ingested)),
            ("lines_served".to_string(), get(&self.lines_served)),
            ("latency_us".to_string(), latency.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let stats = ServerStats::new();
        ServerStats::bump(&stats.connections);
        ServerStats::bump(&stats.jobs_accepted);
        ServerStats::add(&stats.bytes_ingested, 1234);
        stats.record_latency(900);
        let snap = stats.snapshot(3, 2, 7);
        let pairs = snap.as_object().unwrap();
        let get = |name: &str| {
            pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(get("workers"), Value::UInt(2));
        assert_eq!(get("queue_depth"), Value::UInt(3));
        assert_eq!(get("connections"), Value::UInt(1));
        assert_eq!(get("bytes_ingested"), Value::UInt(1234));
        assert_eq!(get("jobs_panicked"), Value::UInt(7));
        let latency = get("latency_us");
        let total = latency
            .as_object()
            .unwrap()
            .iter()
            .find(|(k, _)| k == "total")
            .map(|(_, v)| v.clone())
            .unwrap();
        assert_eq!(total, Value::UInt(1));
    }
}
