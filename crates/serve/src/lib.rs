//! # gencache-serve
//!
//! A streaming simulation service for the `gencache` reproduction of
//! *Generational Cache Management of Code Traces in Dynamic
//! Optimization Systems* (Hazelwood & Smith, MICRO 2003): a TCP daemon
//! (`gencache-serve`) that accepts v2 `gencache-events` exports over
//! the wire and replays them against hypothetical cache configurations,
//! plus a CLI (`gencache-client`) that drives it.
//!
//! Pure `std`: `TcpListener` + threads + the bounded channel from
//! `gencache_sim::stream` — no async runtime, no signal crate (the
//! container has no registry access, so external dependencies are not
//! an option).
//!
//! Properties the implementation commits to:
//!
//! * **Bounded-memory ingestion.** Export lines flow socket → bounded
//!   channel → incremental
//!   [`StreamIngest`](gencache_bench::ingest::StreamIngest); peak
//!   memory is O(channel depth + resident trace set), never
//!   O(stream length). A slow worker closes the TCP receive window —
//!   backpressure reaches the client as flow control, not as daemon
//!   RSS.
//! * **Byte-identical results.** A job runs through the same shared
//!   runner and document builder as offline `simulate`, so the metrics
//!   document in the reply is byte-for-byte what
//!   `simulate --metrics-out` writes for the same export and specs.
//! * **Load shedding, not backlog.** A fixed-size worker pool fronts a
//!   bounded queue; when the queue is full, admission answers `busy`
//!   (HTTP 429 in spirit) immediately.
//! * **Deadlines and timeouts.** Per-job wall-clock budgets are
//!   enforced during ingest and between replay cells; per-connection
//!   socket reads time out so a stalled client cannot pin a thread.
//! * **Graceful shutdown.** SIGTERM/SIGINT stop the accept loop,
//!   in-flight jobs drain, new requests are refused with an error.
//!
//! Scale-out is a separate binary on the same protocol:
//! `gencache-shard` (see [`shard`]) consistent-hashes a job's benchmark
//! stream groups across N backend daemons, runs the per-shard sub-jobs
//! concurrently, and merges the shard documents back into the exact
//! bytes a single node would have produced — capacity scales linearly
//! while every answer stays verifiable with `cmp`.
//!
//! The wire protocol is line-delimited JSON, specified in
//! `docs/PROTOCOL.md`.

#![warn(missing_docs)]

pub mod client;
pub mod pool;
pub mod proto;
pub mod retry;
pub mod shard;
pub mod signal;
mod server;
pub mod stats;
pub mod telemetry;

pub use client::Client;
pub use proto::{JobSpec, Reply, Request, WatchRow};
pub use retry::RetryPolicy;
pub use server::{Server, ServerConfig};
pub use shard::{ShardConfig, ShardRouter};
pub use stats::{Gauges, ServerStats};
pub use telemetry::{LogLevel, Logger, Span, Telemetry};
