//! The wire protocol: line-delimited JSON over TCP.
//!
//! Every frame is one LF-terminated line. Control frames are JSON
//! objects whose **first key is `type`** — `{"type":...}` — which can
//! never collide with v2 export lines (the header serializes with
//! `schema` first, run metadata and event records with `source` first),
//! so a connection can interleave control frames and raw export lines
//! with a one-token prefix test and no re-parsing. See
//! `docs/PROTOCOL.md` for the full framing and lifecycle contract.

use serde::{Deserialize, Serialize, Value};

/// Prefix every control frame starts with (after optional whitespace).
pub const CONTROL_PREFIX: &str = "{\"type\":";

/// Returns `true` if `line` is a control frame rather than an export
/// line.
pub fn is_control_line(line: &str) -> bool {
    line.trim_start().starts_with(CONTROL_PREFIX)
}

/// A parsed job submission header: which specs to simulate against the
/// export that follows, plus resource limits.
#[derive(Debug, Clone, Default)]
pub struct JobSpec {
    /// Spec labels (same grammar as `simulate --spec`); empty means the
    /// live export's default configurations.
    pub specs: Vec<String>,
    /// Add the §6 proportions × policy sweep grid.
    pub grid: bool,
    /// Add the Belady-style oracle lower-bound row.
    pub oracle: bool,
    /// Attach the windowed time-series/drift section to each simulated
    /// spec (the `simulate --windows` doc shape).
    pub windows: bool,
    /// Window width in accesses for the windowed section; `None` keeps
    /// the default (the timeline sample interval).
    pub window_width: Option<u64>,
    /// Cap on regret contributors kept per phase and in the run total;
    /// `None` keeps the default cap.
    pub regret_top: Option<u64>,
    /// Cache-budget override in bytes.
    pub capacity: Option<u64>,
    /// Restrict to one benchmark of the export.
    pub bench: Option<String>,
    /// Which model stream's run metadata fixes capacity/duration.
    pub model: Option<String>,
    /// Per-job wall-clock budget in milliseconds; `None` defers to the
    /// server's default, `Some(0)` disables the deadline.
    pub deadline_ms: Option<u64>,
    /// Trace id for end-to-end job tracing. Stamped by the client when
    /// absent, propagated verbatim by the fleet router to every backend
    /// sub-job, and generated server-side as a last resort — so every
    /// span of one job carries the same id.
    pub trace_id: Option<String>,
}

/// One client request, decoded from a control frame.
#[derive(Debug, Clone)]
pub enum Request {
    /// Submit a simulation job; export lines follow, closed by
    /// [`Request::End`].
    Job(JobSpec),
    /// Terminates a job's export stream, carrying the number of export
    /// lines the client sent (an integrity check against truncation).
    End {
        /// Export lines the client claims to have sent.
        lines: u64,
    },
    /// Ask for the daemon's counters.
    Stats,
    /// Health check that occupies a worker slot for `hold_ms`
    /// milliseconds before replying — the deterministic way to fill the
    /// pool in backpressure tests.
    Ping {
        /// Milliseconds the worker holds its slot before replying.
        hold_ms: u64,
    },
    /// Record a benchmark server-side (through the bounded-channel
    /// streamed record path) and stream its v2 export back.
    Fetch {
        /// Benchmark name (any of the 38 calibrated profiles).
        bench: String,
        /// Footprint divisor (1 = full scale).
        scale: u64,
    },
    /// Ask a fleet router for its shard table and health view. Plain
    /// daemons answer with `error` (unknown type pre-fleet builds) or a
    /// single-entry table.
    Shards,
    /// Ask a fleet router which shard a benchmark routes to — how tests
    /// and operators inspect the consistent-hash placement.
    Route {
        /// Benchmark name to resolve.
        bench: String,
    },
    /// Ask for the recent spans recorded for a trace id. A fleet router
    /// stitches its own spans with those of every live shard.
    Trace {
        /// The trace id to look up.
        trace_id: String,
    },
    /// Ask for counters/gauges/histograms rendered in Prometheus text
    /// exposition format.
    Metrics,
    /// Subscribe to the daemon's live service time-series: the server
    /// streams one `watch` snapshot frame per tick until `count`
    /// snapshots have been sent (0 = until the client hangs up or the
    /// server drains), then closes with an `end` frame.
    Watch {
        /// Milliseconds between snapshots (clamped server-side).
        interval_ms: u64,
        /// Snapshots to stream; 0 means unbounded.
        count: u64,
    },
}

/// One node's service-rate sample inside a `watch` snapshot. A plain
/// daemon reports exactly one row; a fleet router stitches one row per
/// live shard (marking itself as `node`-prefixed rows' origin).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatchRow {
    /// Node label (listen address or operator-chosen name).
    pub node: String,
    /// Milliseconds since the node started serving.
    pub uptime_ms: u64,
    /// Width of the sampling window in milliseconds (the interval the
    /// rates below are computed over).
    pub window_ms: u64,
    /// Jobs completed per second over the window.
    pub jobs_per_sec: f64,
    /// Jobs shed (busy replies) per second over the window.
    pub shed_per_sec: f64,
    /// Jobs executing right now.
    pub in_flight: u64,
    /// Jobs queued right now.
    pub queue_depth: u64,
    /// Median job latency in microseconds (cumulative histogram).
    pub p50_us: u64,
    /// 99th-percentile job latency in microseconds (cumulative).
    pub p99_us: u64,
    /// Jobs completed since the node started.
    pub jobs_total: u64,
    /// Last windowed-simulation final-window miss rate this node saw
    /// (0 until a `windows: true` job completes).
    pub window_miss_rate: f64,
    /// Drift annotations accumulated across windowed jobs.
    pub drift_events: u64,
}

fn field<'v>(pairs: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(n) => Some(*n),
        Value::Int(n) => u64::try_from(*n).ok(),
        _ => None,
    }
}

fn as_bool(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn opt_str(pairs: &[(String, Value)], name: &str) -> Result<Option<String>, String> {
    match field(pairs, name) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => as_str(v)
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("field {name:?} must be a string")),
    }
}

fn opt_u64(pairs: &[(String, Value)], name: &str) -> Result<Option<u64>, String> {
    match field(pairs, name) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => as_u64(v)
            .map(Some)
            .ok_or_else(|| format!("field {name:?} must be a non-negative integer")),
    }
}

fn opt_bool(pairs: &[(String, Value)], name: &str) -> Result<bool, String> {
    match field(pairs, name) {
        None | Some(Value::Null) => Ok(false),
        Some(v) => as_bool(v).ok_or_else(|| format!("field {name:?} must be a boolean")),
    }
}

/// Decodes one control frame.
///
/// # Errors
///
/// Returns a description of malformed JSON, a missing/unknown `type`,
/// or a field of the wrong shape. The daemon turns this into an
/// `error` reply without dropping other connections.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = serde_json::value_from_str(line).map_err(|e| format!("malformed frame: {e}"))?;
    let pairs = value
        .as_object()
        .ok_or_else(|| "control frame must be a JSON object".to_string())?;
    let ty = field(pairs, "type")
        .and_then(as_str)
        .ok_or_else(|| "control frame needs a string \"type\" field".to_string())?;
    match ty {
        "job" => {
            let specs = match field(pairs, "specs") {
                None | Some(Value::Null) => Vec::new(),
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| "field \"specs\" must be an array of labels".to_string())?
                    .iter()
                    .map(|s| {
                        as_str(s)
                            .map(str::to_string)
                            .ok_or_else(|| "field \"specs\" must contain strings".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            };
            Ok(Request::Job(JobSpec {
                specs,
                grid: opt_bool(pairs, "grid")?,
                oracle: opt_bool(pairs, "oracle")?,
                windows: opt_bool(pairs, "windows")?,
                window_width: opt_u64(pairs, "window_width")?,
                regret_top: opt_u64(pairs, "regret_top")?,
                capacity: opt_u64(pairs, "capacity")?,
                bench: opt_str(pairs, "bench")?,
                model: opt_str(pairs, "model")?,
                deadline_ms: opt_u64(pairs, "deadline_ms")?,
                trace_id: opt_str(pairs, "trace_id")?,
            }))
        }
        "end" => Ok(Request::End {
            lines: opt_u64(pairs, "lines")?
                .ok_or_else(|| "end frame needs a \"lines\" count".to_string())?,
        }),
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping {
            hold_ms: opt_u64(pairs, "hold_ms")?.unwrap_or(0),
        }),
        "fetch" => Ok(Request::Fetch {
            bench: opt_str(pairs, "bench")?
                .ok_or_else(|| "fetch frame needs a \"bench\" name".to_string())?,
            scale: opt_u64(pairs, "scale")?.unwrap_or(1).max(1),
        }),
        "shards" => Ok(Request::Shards),
        "route" => Ok(Request::Route {
            bench: opt_str(pairs, "bench")?
                .ok_or_else(|| "route frame needs a \"bench\" name".to_string())?,
        }),
        "trace" => Ok(Request::Trace {
            trace_id: opt_str(pairs, "trace_id")?
                .ok_or_else(|| "trace frame needs a \"trace_id\"".to_string())?,
        }),
        "metrics" => Ok(Request::Metrics),
        "watch" => Ok(Request::Watch {
            interval_ms: opt_u64(pairs, "interval_ms")?.unwrap_or(1000),
            count: opt_u64(pairs, "count")?.unwrap_or(0),
        }),
        other => Err(format!("unknown request type {other:?}")),
    }
}

/// One server reply, decoded from a control frame by the client.
#[derive(Debug, Clone)]
pub enum Reply {
    /// A completed job: the metrics document (as its canonical JSON
    /// text) plus the rendered result tables.
    Result {
        /// The metrics document, serialized exactly as
        /// `simulate --metrics-out` writes it (no trailing newline).
        doc: String,
        /// Human-readable per-benchmark tables.
        table: String,
        /// Benchmarks simulated.
        benches: u64,
        /// Specs evaluated per benchmark.
        specs: u64,
        /// Job wall-clock in microseconds.
        elapsed_us: u64,
    },
    /// The job queue is full — retry later (HTTP 429 in spirit).
    Busy {
        /// Queue occupancy when the job was shed.
        queue_depth: u64,
    },
    /// The request failed; the connection closes after this frame.
    Error {
        /// What went wrong.
        message: String,
    },
    /// Counter snapshot (the `stats` document as canonical JSON text).
    Stats {
        /// The serialized stats document.
        doc: String,
    },
    /// Ping acknowledgement.
    Pong,
    /// A fleet router's shard table (as canonical JSON text): one entry
    /// per backend with address, health, and routing counters.
    Shards {
        /// The serialized shard-table document.
        doc: String,
    },
    /// Consistent-hash placement for one benchmark.
    Route {
        /// The benchmark asked about.
        bench: String,
        /// Address of the shard currently preferred for it.
        addr: String,
    },
    /// Recent spans for a trace id (stitched across the fleet when
    /// answered by a router).
    Trace {
        /// The trace id asked about.
        trace_id: String,
        /// The span array as canonical JSON text.
        doc: String,
    },
    /// Prometheus text exposition document.
    Metrics {
        /// The full exposition body (multi-line text).
        body: String,
    },
    /// One live service-rate snapshot of a `watch` stream.
    Watch {
        /// Node that assembled the snapshot (router or daemon).
        node: String,
        /// Snapshot sequence number within the stream (from 0).
        seq: u64,
        /// One row per node covered by the snapshot.
        rows: Vec<WatchRow>,
    },
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn render(value: &Value) -> String {
    gencache_bench::value_to_json(value)
}

/// Encodes a `result` reply frame. `doc` is embedded as a JSON subtree,
/// so the client re-serializes it through the same deterministic
/// renderer and recovers the exact `simulate --metrics-out` bytes.
pub fn encode_result(doc: Value, table: &str, benches: u64, specs: u64, elapsed_us: u64) -> String {
    render(&obj(vec![
        ("type", Value::Str("result".to_string())),
        ("benches", Value::UInt(benches)),
        ("specs", Value::UInt(specs)),
        ("elapsed_us", Value::UInt(elapsed_us)),
        ("table", Value::Str(table.to_string())),
        ("doc", doc),
    ]))
}

/// Encodes a `busy` reply frame.
pub fn encode_busy(queue_depth: u64) -> String {
    render(&obj(vec![
        ("type", Value::Str("busy".to_string())),
        ("queue_depth", Value::UInt(queue_depth)),
    ]))
}

/// Encodes an `error` reply frame.
pub fn encode_error(message: &str) -> String {
    render(&obj(vec![
        ("type", Value::Str("error".to_string())),
        ("message", Value::Str(message.to_string())),
    ]))
}

/// Encodes a `stats` reply frame around an assembled snapshot document.
pub fn encode_stats(snapshot: Value) -> String {
    render(&obj(vec![
        ("type", Value::Str("stats".to_string())),
        ("stats", snapshot),
    ]))
}

/// Encodes a `pong` reply frame.
pub fn encode_pong() -> String {
    render(&obj(vec![("type", Value::Str("pong".to_string()))]))
}

/// Encodes the `end` frame terminating a streamed export (job upload or
/// `fetch` download).
pub fn encode_end(lines: u64) -> String {
    render(&obj(vec![
        ("type", Value::Str("end".to_string())),
        ("lines", Value::UInt(lines)),
    ]))
}

/// Encodes a `job` request frame.
pub fn encode_job(spec: &JobSpec) -> String {
    let mut pairs = vec![
        ("type", Value::Str("job".to_string())),
        (
            "specs",
            Value::Array(spec.specs.iter().map(|s| Value::Str(s.clone())).collect()),
        ),
        ("grid", Value::Bool(spec.grid)),
        ("oracle", Value::Bool(spec.oracle)),
    ];
    if spec.windows {
        // Pushed only when set so frames sent to pre-windows daemons
        // keep the exact bytes they already accept.
        pairs.push(("windows", Value::Bool(true)));
    }
    if let Some(w) = spec.window_width {
        pairs.push(("window_width", Value::UInt(w)));
    }
    if let Some(t) = spec.regret_top {
        pairs.push(("regret_top", Value::UInt(t)));
    }
    if let Some(c) = spec.capacity {
        pairs.push(("capacity", Value::UInt(c)));
    }
    if let Some(b) = &spec.bench {
        pairs.push(("bench", Value::Str(b.clone())));
    }
    if let Some(m) = &spec.model {
        pairs.push(("model", Value::Str(m.clone())));
    }
    if let Some(d) = spec.deadline_ms {
        pairs.push(("deadline_ms", Value::UInt(d)));
    }
    if let Some(t) = &spec.trace_id {
        pairs.push(("trace_id", Value::Str(t.clone())));
    }
    render(&obj(pairs))
}

/// Encodes a `stats` request frame.
pub fn encode_stats_request() -> String {
    render(&obj(vec![("type", Value::Str("stats".to_string()))]))
}

/// Encodes a `ping` request frame.
pub fn encode_ping(hold_ms: u64) -> String {
    render(&obj(vec![
        ("type", Value::Str("ping".to_string())),
        ("hold_ms", Value::UInt(hold_ms)),
    ]))
}

/// Encodes a `shards` request frame.
pub fn encode_shards_request() -> String {
    render(&obj(vec![("type", Value::Str("shards".to_string()))]))
}

/// Encodes a `shards` reply frame around an assembled shard-table
/// document.
pub fn encode_shards(table: Value) -> String {
    render(&obj(vec![
        ("type", Value::Str("shards".to_string())),
        ("shards", table),
    ]))
}

/// Encodes a `route` request frame.
pub fn encode_route_request(bench: &str) -> String {
    render(&obj(vec![
        ("type", Value::Str("route".to_string())),
        ("bench", Value::Str(bench.to_string())),
    ]))
}

/// Encodes a `route` reply frame.
pub fn encode_route(bench: &str, addr: &str) -> String {
    render(&obj(vec![
        ("type", Value::Str("route".to_string())),
        ("bench", Value::Str(bench.to_string())),
        ("addr", Value::Str(addr.to_string())),
    ]))
}

/// Encodes a `trace` request frame.
pub fn encode_trace_request(trace_id: &str) -> String {
    render(&obj(vec![
        ("type", Value::Str("trace".to_string())),
        ("trace_id", Value::Str(trace_id.to_string())),
    ]))
}

/// Encodes a `trace` reply frame around a span array value.
pub fn encode_trace(trace_id: &str, spans: Value) -> String {
    render(&obj(vec![
        ("type", Value::Str("trace".to_string())),
        ("trace_id", Value::Str(trace_id.to_string())),
        ("spans", spans),
    ]))
}

/// Encodes a `metrics` request frame.
pub fn encode_metrics_request() -> String {
    render(&obj(vec![("type", Value::Str("metrics".to_string()))]))
}

/// Encodes a `metrics` reply frame; the Prometheus text body travels as
/// one JSON string (newlines escaped) so the frame stays a single line.
pub fn encode_metrics(body: &str) -> String {
    render(&obj(vec![
        ("type", Value::Str("metrics".to_string())),
        ("body", Value::Str(body.to_string())),
    ]))
}

/// Encodes a `watch` request frame.
pub fn encode_watch_request(interval_ms: u64, count: u64) -> String {
    render(&obj(vec![
        ("type", Value::Str("watch".to_string())),
        ("interval_ms", Value::UInt(interval_ms)),
        ("count", Value::UInt(count)),
    ]))
}

/// Encodes one `watch` snapshot frame.
pub fn encode_watch(node: &str, seq: u64, rows: &[WatchRow]) -> String {
    render(&obj(vec![
        ("type", Value::Str("watch".to_string())),
        ("node", Value::Str(node.to_string())),
        ("seq", Value::UInt(seq)),
        (
            "rows",
            Value::Array(rows.iter().map(|r| r.to_value()).collect()),
        ),
    ]))
}

/// Encodes a `fetch` request frame.
pub fn encode_fetch(bench: &str, scale: u64) -> String {
    render(&obj(vec![
        ("type", Value::Str("fetch".to_string())),
        ("bench", Value::Str(bench.to_string())),
        ("scale", Value::UInt(scale)),
    ]))
}

/// Decodes one reply frame (client side).
///
/// # Errors
///
/// Returns a description of malformed JSON or an unknown reply type.
pub fn parse_reply(line: &str) -> Result<Reply, String> {
    let value = serde_json::value_from_str(line).map_err(|e| format!("malformed reply: {e}"))?;
    let pairs = value
        .as_object()
        .ok_or_else(|| "reply must be a JSON object".to_string())?;
    let ty = field(pairs, "type")
        .and_then(as_str)
        .ok_or_else(|| "reply needs a string \"type\" field".to_string())?;
    match ty {
        "result" => Ok(Reply::Result {
            doc: field(pairs, "doc")
                .map(render)
                .ok_or_else(|| "result reply needs a \"doc\" field".to_string())?,
            table: opt_str(pairs, "table")?.unwrap_or_default(),
            benches: opt_u64(pairs, "benches")?.unwrap_or(0),
            specs: opt_u64(pairs, "specs")?.unwrap_or(0),
            elapsed_us: opt_u64(pairs, "elapsed_us")?.unwrap_or(0),
        }),
        "busy" => Ok(Reply::Busy {
            queue_depth: opt_u64(pairs, "queue_depth")?.unwrap_or(0),
        }),
        "error" => Ok(Reply::Error {
            message: opt_str(pairs, "message")?.unwrap_or_default(),
        }),
        "stats" => Ok(Reply::Stats {
            doc: field(pairs, "stats")
                .map(render)
                .ok_or_else(|| "stats reply needs a \"stats\" field".to_string())?,
        }),
        "pong" => Ok(Reply::Pong),
        "shards" => Ok(Reply::Shards {
            doc: field(pairs, "shards")
                .map(render)
                .ok_or_else(|| "shards reply needs a \"shards\" field".to_string())?,
        }),
        "route" => Ok(Reply::Route {
            bench: opt_str(pairs, "bench")?.unwrap_or_default(),
            addr: opt_str(pairs, "addr")?.unwrap_or_default(),
        }),
        "trace" => Ok(Reply::Trace {
            trace_id: opt_str(pairs, "trace_id")?.unwrap_or_default(),
            doc: field(pairs, "spans")
                .map(render)
                .ok_or_else(|| "trace reply needs a \"spans\" field".to_string())?,
        }),
        "metrics" => Ok(Reply::Metrics {
            body: opt_str(pairs, "body")?
                .ok_or_else(|| "metrics reply needs a \"body\" field".to_string())?,
        }),
        "watch" => {
            let rows = field(pairs, "rows")
                .and_then(|v| v.as_array())
                .ok_or_else(|| "watch reply needs a \"rows\" array".to_string())?
                .iter()
                .map(|v| WatchRow::from_value(v).map_err(|e| format!("bad watch row: {e:?}")))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Reply::Watch {
                node: opt_str(pairs, "node")?.unwrap_or_default(),
                seq: opt_u64(pairs, "seq")?.unwrap_or(0),
                rows,
            })
        }
        other => Err(format!("unknown reply type {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_prefix_disambiguates_export_lines() {
        assert!(is_control_line("{\"type\":\"stats\"}"));
        assert!(is_control_line("  {\"type\":\"end\",\"lines\":3}"));
        // Export lines lead with "schema" or "source".
        assert!(!is_control_line(
            "{\"schema\":\"gencache-events\",\"version\":2}"
        ));
        assert!(!is_control_line("{\"source\":\"gcc\",\"model\":\"unified\"}"));
    }

    #[test]
    fn job_roundtrip() {
        let spec = JobSpec {
            specs: vec!["unified".to_string(), "30-20-50@evict5".to_string()],
            grid: true,
            oracle: true,
            windows: true,
            window_width: Some(512),
            regret_top: Some(8),
            capacity: Some(4096),
            bench: Some("word".to_string()),
            model: None,
            deadline_ms: Some(1500),
            trace_id: Some("cafe0123cafe0123".to_string()),
        };
        let line = encode_job(&spec);
        assert!(is_control_line(&line));
        match parse_request(&line).unwrap() {
            Request::Job(parsed) => {
                assert_eq!(parsed.specs, spec.specs);
                assert!(parsed.grid && parsed.oracle && parsed.windows);
                assert_eq!(parsed.window_width, Some(512));
                assert_eq!(parsed.regret_top, Some(8));
                assert_eq!(parsed.capacity, Some(4096));
                assert_eq!(parsed.bench.as_deref(), Some("word"));
                assert_eq!(parsed.model, None);
                assert_eq!(parsed.deadline_ms, Some(1500));
                assert_eq!(parsed.trace_id.as_deref(), Some("cafe0123cafe0123"));
            }
            other => panic!("expected job, got {other:?}"),
        }
    }

    #[test]
    fn trace_and_metrics_frames_roundtrip() {
        match parse_request(&encode_trace_request("deadbeef")).unwrap() {
            Request::Trace { trace_id } => assert_eq!(trace_id, "deadbeef"),
            other => panic!("expected trace, got {other:?}"),
        }
        assert!(parse_request("{\"type\":\"trace\"}").is_err());
        assert!(matches!(
            parse_request(&encode_metrics_request()).unwrap(),
            Request::Metrics
        ));
        let spans = Value::Array(vec![Value::Object(vec![
            ("trace_id".to_string(), Value::Str("deadbeef".to_string())),
            ("stage".to_string(), Value::Str("accept".to_string())),
        ])]);
        let spans_json = gencache_bench::value_to_json(&spans);
        match parse_reply(&encode_trace("deadbeef", spans)).unwrap() {
            Reply::Trace { trace_id, doc } => {
                assert_eq!(trace_id, "deadbeef");
                assert_eq!(doc, spans_json);
            }
            other => panic!("expected trace, got {other:?}"),
        }
        let body = "# TYPE gencache_jobs_total counter\ngencache_jobs_total 3\n";
        match parse_reply(&encode_metrics(body)).unwrap() {
            Reply::Metrics { body: parsed } => assert_eq!(parsed, body),
            other => panic!("expected metrics, got {other:?}"),
        }
    }

    #[test]
    fn job_without_windows_keeps_pre_windows_bytes() {
        // The optional fields must stay off the wire when unset so old
        // daemons keep parsing new clients' default frames.
        let line = encode_job(&JobSpec::default());
        assert!(!line.contains("windows"));
        assert!(!line.contains("window_width"));
        assert!(!line.contains("regret_top"));
        match parse_request(&line).unwrap() {
            Request::Job(parsed) => assert!(!parsed.windows),
            other => panic!("expected job, got {other:?}"),
        }
    }

    #[test]
    fn watch_frames_roundtrip() {
        match parse_request(&encode_watch_request(250, 4)).unwrap() {
            Request::Watch { interval_ms, count } => {
                assert_eq!((interval_ms, count), (250, 4));
            }
            other => panic!("expected watch, got {other:?}"),
        }
        // Missing fields fall back to a 1s cadence, unbounded stream.
        match parse_request("{\"type\":\"watch\"}").unwrap() {
            Request::Watch { interval_ms, count } => {
                assert_eq!((interval_ms, count), (1000, 0));
            }
            other => panic!("expected watch, got {other:?}"),
        }
        let row = WatchRow {
            node: "127.0.0.1:7070".to_string(),
            uptime_ms: 12_345,
            window_ms: 250,
            jobs_per_sec: 8.5,
            shed_per_sec: 0.25,
            in_flight: 2,
            queue_depth: 1,
            p50_us: 900,
            p99_us: 45_000,
            jobs_total: 77,
            window_miss_rate: 0.0625,
            drift_events: 3,
        };
        match parse_reply(&encode_watch("router", 9, std::slice::from_ref(&row))).unwrap() {
            Reply::Watch { node, seq, rows } => {
                assert_eq!(node, "router");
                assert_eq!(seq, 9);
                assert_eq!(rows, vec![row]);
            }
            other => panic!("expected watch, got {other:?}"),
        }
        assert!(parse_reply("{\"type\":\"watch\",\"node\":\"x\"}").is_err());
    }

    #[test]
    fn end_requires_line_count() {
        assert!(parse_request("{\"type\":\"end\"}").is_err());
        match parse_request(&encode_end(42)).unwrap() {
            Request::End { lines } => assert_eq!(lines, 42),
            other => panic!("expected end, got {other:?}"),
        }
    }

    #[test]
    fn malformed_and_unknown_frames_are_clean_errors() {
        assert!(parse_request("{nope").is_err());
        assert!(parse_request("[]").is_err());
        assert!(parse_request("{\"type\":\"launch-missiles\"}").is_err());
        assert!(parse_reply("{\"type\":\"shrug\"}").is_err());
    }

    #[test]
    fn shard_frames_roundtrip() {
        assert!(matches!(
            parse_request(&encode_shards_request()).unwrap(),
            Request::Shards
        ));
        match parse_request(&encode_route_request("word")).unwrap() {
            Request::Route { bench } => assert_eq!(bench, "word"),
            other => panic!("expected route, got {other:?}"),
        }
        assert!(parse_request("{\"type\":\"route\"}").is_err());
        let table = Value::Array(vec![Value::Object(vec![
            ("addr".to_string(), Value::Str("127.0.0.1:7777".to_string())),
            ("up".to_string(), Value::Bool(true)),
        ])]);
        let table_json = gencache_bench::value_to_json(&table);
        match parse_reply(&encode_shards(table)).unwrap() {
            Reply::Shards { doc } => assert_eq!(doc, table_json),
            other => panic!("expected shards, got {other:?}"),
        }
        match parse_reply(&encode_route("word", "127.0.0.1:7777")).unwrap() {
            Reply::Route { bench, addr } => {
                assert_eq!(bench, "word");
                assert_eq!(addr, "127.0.0.1:7777");
            }
            other => panic!("expected route, got {other:?}"),
        }
    }

    #[test]
    fn result_reply_roundtrips_doc_bytes() {
        let doc = Value::Object(vec![
            ("schema".to_string(), Value::Str("gencache-metrics".to_string())),
            ("version".to_string(), Value::UInt(2)),
        ]);
        let doc_json = gencache_bench::value_to_json(&doc);
        let line = encode_result(doc, "table\n", 1, 2, 3);
        match parse_reply(&line).unwrap() {
            Reply::Result {
                doc,
                table,
                benches,
                specs,
                elapsed_us,
            } => {
                assert_eq!(doc, doc_json);
                assert_eq!(table, "table\n");
                assert_eq!((benches, specs, elapsed_us), (1, 2, 3));
            }
            other => panic!("expected result, got {other:?}"),
        }
    }
}
