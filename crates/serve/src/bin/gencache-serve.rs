//! `gencache-serve` — the streaming simulation daemon.
//!
//! ```text
//! gencache-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!                [--depth LINES] [--read-timeout-ms N] [--deadline-ms N]
//!                [--log FILE|-|none] [--log-level LEVEL]
//!                [--log-max-bytes N] [--trace-capacity N]
//! ```
//!
//! Binds (port 0 = ephemeral), prints `gencache-serve listening on
//! HOST:PORT` to stdout once ready (scripts parse that line), and
//! serves until SIGTERM/SIGINT, then drains in-flight jobs and exits 0.
//!
//! Structured JSONL logging defaults to stderr at `warn`; `--log none`
//! silences it, `--log FILE` appends to a file, `--log-level
//! debug|info|warn|error` sets the floor. `--log-max-bytes N` caps a
//! `--log FILE` target: when the file would exceed N bytes it is
//! rotated once to `FILE.1` (replacing any previous `FILE.1`) and
//! logging continues in a fresh file; the default (0) never rotates.
//! `--trace-capacity 0` turns span recording off entirely.

use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

use gencache_serve::{signal, LogLevel, Server, ServerConfig};

const USAGE: &str = "use --addr HOST:PORT / --workers N / --queue N / --depth LINES / \
     --read-timeout-ms N / --deadline-ms N / --log FILE|-|none / \
     --log-level debug|info|warn|error / --log-max-bytes N / --trace-capacity N";

fn parse_args(args: impl IntoIterator<Item = String>) -> ServerConfig {
    let mut config = ServerConfig {
        log: Some("-".to_string()),
        ..ServerConfig::default()
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => config.addr = it.next().expect("--addr needs HOST:PORT"),
            "--workers" => {
                let v = it.next().expect("--workers needs a value");
                let n: usize = v.parse().expect("--workers must be a positive integer");
                assert!(n > 0, "--workers must be positive");
                config.workers = Some(n);
            }
            "--queue" => {
                let v = it.next().expect("--queue needs a value");
                let n: usize = v.parse().expect("--queue must be a positive integer");
                assert!(n > 0, "--queue must be positive");
                config.queue_depth = Some(n);
            }
            "--depth" => {
                let v = it.next().expect("--depth needs a value");
                let n: usize = v.parse().expect("--depth must be a positive integer");
                assert!(n > 0, "--depth must be positive");
                config.channel_depth = n;
            }
            "--read-timeout-ms" => {
                let v = it.next().expect("--read-timeout-ms needs a value");
                let n: u64 = v.parse().expect("--read-timeout-ms must be an integer");
                assert!(n > 0, "--read-timeout-ms must be positive");
                config.read_timeout = Duration::from_millis(n);
            }
            "--deadline-ms" => {
                let v = it.next().expect("--deadline-ms needs a value");
                config.default_deadline_ms =
                    v.parse().expect("--deadline-ms must be an integer");
            }
            "--log" => config.log = Some(it.next().expect("--log needs FILE, -, or none")),
            "--log-level" => {
                let v = it.next().expect("--log-level needs a level");
                config.log_level =
                    LogLevel::parse(&v).expect("--log-level must be debug|info|warn|error");
            }
            "--log-max-bytes" => {
                let v = it.next().expect("--log-max-bytes needs a value");
                let n: u64 = v.parse().expect("--log-max-bytes must be an integer");
                config.log_max_bytes = (n > 0).then_some(n);
            }
            "--trace-capacity" => {
                let v = it.next().expect("--trace-capacity needs a value");
                config.trace_capacity =
                    v.parse().expect("--trace-capacity must be an integer");
            }
            other => panic!("unknown argument {other:?}; {USAGE}"),
        }
    }
    config
}

fn main() -> ExitCode {
    let config = parse_args(std::env::args().skip(1));
    signal::install_handlers();
    let server = match Server::bind(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gencache-serve: cannot bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            println!("gencache-serve listening on {addr}");
            std::io::stdout().flush().ok();
        }
        Err(e) => {
            eprintln!("gencache-serve: cannot resolve bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => {
            eprintln!("gencache-serve: drained, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gencache-serve: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
