//! `gencache-shard` — the fleet router daemon.
//!
//! ```text
//! gencache-shard --backend HOST:PORT [--backend HOST:PORT ...]
//!                [--addr HOST:PORT] [--replicas N]
//!                [--read-timeout-ms N] [--health-interval-ms N]
//!                [--retries N] [--retry-ms N]
//!                [--log FILE|-|none] [--log-level LEVEL]
//!                [--log-max-bytes N] [--trace-capacity N]
//! ```
//!
//! Speaks the `gencache-serve` protocol on the front, consistent-hashes
//! each job's benchmarks across the backends, and merges the shard
//! replies byte-identically. Binds (port 0 = ephemeral), prints
//! `gencache-shard listening on HOST:PORT (N shards)` to stdout once
//! ready (scripts parse that line), and serves until SIGTERM/SIGINT,
//! then drains in-flight fleet jobs and exits 0.

use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

use gencache_serve::{signal, LogLevel, ShardConfig, ShardRouter};

const USAGE: &str = "use --backend HOST:PORT (repeatable) / --addr HOST:PORT / --replicas N / \
     --read-timeout-ms N / --health-interval-ms N / --retries N / --retry-ms N / \
     --log FILE|-|none / --log-level debug|info|warn|error / --log-max-bytes N / \
     --trace-capacity N";

fn parse_args(args: impl IntoIterator<Item = String>) -> ShardConfig {
    let mut config = ShardConfig {
        log: Some("-".to_string()),
        ..ShardConfig::default()
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => config.addr = it.next().expect("--addr needs HOST:PORT"),
            "--backend" => config
                .backends
                .push(it.next().expect("--backend needs HOST:PORT")),
            "--replicas" => {
                let v = it.next().expect("--replicas needs a value");
                let n: usize = v.parse().expect("--replicas must be a positive integer");
                assert!(n > 0, "--replicas must be positive");
                config.replicas = n;
            }
            "--read-timeout-ms" => {
                let v = it.next().expect("--read-timeout-ms needs a value");
                let n: u64 = v.parse().expect("--read-timeout-ms must be an integer");
                assert!(n > 0, "--read-timeout-ms must be positive");
                config.read_timeout = Duration::from_millis(n);
            }
            "--health-interval-ms" => {
                let v = it.next().expect("--health-interval-ms needs a value");
                let n: u64 = v.parse().expect("--health-interval-ms must be an integer");
                assert!(n > 0, "--health-interval-ms must be positive");
                config.health_interval = Duration::from_millis(n);
            }
            "--retries" => {
                let v = it.next().expect("--retries needs a value");
                config.retry.retries = v.parse().expect("--retries must be an integer");
            }
            "--retry-ms" => {
                let v = it.next().expect("--retry-ms needs a value");
                let n: u64 = v.parse().expect("--retry-ms must be an integer");
                assert!(n > 0, "--retry-ms must be positive");
                config.retry.base = Duration::from_millis(n);
            }
            "--log" => config.log = Some(it.next().expect("--log needs FILE, -, or none")),
            "--log-level" => {
                let v = it.next().expect("--log-level needs a level");
                config.log_level =
                    LogLevel::parse(&v).expect("--log-level must be debug|info|warn|error");
            }
            "--log-max-bytes" => {
                let v = it.next().expect("--log-max-bytes needs a value");
                let n: u64 = v.parse().expect("--log-max-bytes must be an integer");
                config.log_max_bytes = (n > 0).then_some(n);
            }
            "--trace-capacity" => {
                let v = it.next().expect("--trace-capacity needs a value");
                config.trace_capacity =
                    v.parse().expect("--trace-capacity must be an integer");
            }
            other => panic!("unknown argument {other:?}; {USAGE}"),
        }
    }
    config
}

fn main() -> ExitCode {
    let config = parse_args(std::env::args().skip(1));
    if config.backends.is_empty() {
        eprintln!("gencache-shard: no backends; {USAGE}");
        return ExitCode::FAILURE;
    }
    signal::install_handlers();
    let router = match ShardRouter::bind(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gencache-shard: cannot bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    match router.local_addr() {
        Ok(addr) => {
            println!(
                "gencache-shard listening on {addr} ({} shards)",
                config.backends.len()
            );
            std::io::stdout().flush().ok();
        }
        Err(e) => {
            eprintln!("gencache-shard: cannot resolve bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    match router.run() {
        Ok(()) => {
            eprintln!("gencache-shard: drained, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gencache-shard: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
