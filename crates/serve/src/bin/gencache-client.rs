//! `gencache-client` — CLI driver for the `gencache-serve` daemon.
//!
//! ```text
//! gencache-client submit --addr HOST:PORT --events FILE|- [--spec LABEL]...
//!                 [--grid] [--oracle] [--windows] [--capacity BYTES]
//!                 [--bench NAME] [--model LABEL] [--deadline-ms N]
//!                 [--metrics-out FILE] [--no-table] [--retries N]
//!                 [--retry-ms N] [--verbose]
//! gencache-client stats  --addr HOST:PORT
//! gencache-client ping   --addr HOST:PORT [--hold-ms N]
//! gencache-client fetch  --addr HOST:PORT --bench NAME [--scale N] [--out FILE|-]
//! gencache-client shards --addr HOST:PORT
//! gencache-client route  --addr HOST:PORT --bench NAME
//! gencache-client trace TRACE_ID --addr HOST:PORT
//! gencache-client metrics --addr HOST:PORT
//! gencache-client bench  --addr HOST:PORT --events FILE [--spec LABEL]...
//!                 [--grid] [--bench NAME] [--jobs N] [--note TEXT]
//!                 [--out FILE] [--replay-stats FILE] [--watch]
//!                 [--tolerance FRACTION]
//! gencache-client watch  --addr HOST:PORT [--interval-ms N] [--count N]
//!                 [--plain]
//! ```
//!
//! `submit --events -` reads the export from stdin; `--metrics-out`
//! writes the returned metrics document byte-identically to what
//! `simulate --metrics-out` produces for the same export and specs.
//! The address may name a plain daemon or a `gencache-shard` router —
//! the protocol is identical. `fetch` streams a server-side recording's
//! v2 export to stdout (or `--out`), ready to pipe into
//! `simulate --events -`. `shards`/`route` inspect a router's shard
//! table and hash placement.
//!
//! A `busy` reply is retried with capped exponential backoff
//! (`--retries`, default 3, delays `--retry-ms` ms doubling per
//! attempt, default 200); a server still busy after the last attempt
//! exits with status 3 so scripts can distinguish shedding from
//! failure. `--retries 0` restores give-up-immediately. Retries re-send
//! the upload, so a stdin export is buffered in memory when retries are
//! enabled; files are reopened per attempt.
//!
//! `submit --verbose` stamps a trace id, prints the client-side spans,
//! and fetches the server's stitched span tree afterwards. `trace`
//! fetches the span tree for any id the daemons still retain; `metrics`
//! prints the daemon's Prometheus text exposition. `bench` drives
//! repeated submits against a daemon and records a throughput/latency
//! trajectory entry (`--watch` fails with exit 4 on regression against
//! the previous entry instead of appending).
//!
//! `watch` subscribes to the daemon's (or router's — the rows then
//! cover every live shard) `watch` stream and renders a live fleet
//! dashboard, redrawn per snapshot (`--interval-ms`, default 1000).
//! `--count N` stops after N snapshots (0 = until interrupted);
//! `--plain` appends one table per snapshot instead of redrawing in
//! place — use it when piping to a file. Ctrl-C and a server drain both
//! end the stream cleanly with exit 0.

use std::fs::File;
use std::io::{self, BufRead, BufReader, Cursor, Read, Write};
use std::process::ExitCode;
use std::time::Instant;

use gencache_serve::telemetry::{new_trace_id, render_spans};
use gencache_serve::{Client, JobSpec, Reply, RetryPolicy, Span};
use serde::Value;

const USAGE: &str = "subcommands: submit / stats / ping / fetch / shards / route / trace / \
     metrics / bench / watch (see module docs)";

fn open_input(path: &str) -> io::Result<Box<dyn BufRead>> {
    if path == "-" {
        Ok(Box::new(BufReader::new(io::stdin())))
    } else {
        Ok(Box::new(BufReader::new(File::open(path)?)))
    }
}

fn open_output(path: &str) -> io::Result<Box<dyn Write>> {
    if path == "-" {
        Ok(Box::new(io::stdout()))
    } else {
        Ok(Box::new(File::create(path)?))
    }
}

struct SubmitArgs {
    addr: String,
    events: String,
    spec: JobSpec,
    metrics_out: Option<String>,
    table: bool,
    retry: RetryPolicy,
    verbose: bool,
}

fn parse_submit(mut it: impl Iterator<Item = String>) -> SubmitArgs {
    let mut args = SubmitArgs {
        addr: String::new(),
        events: String::new(),
        spec: JobSpec::default(),
        metrics_out: None,
        table: true,
        retry: RetryPolicy::default(),
        verbose: false,
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => args.addr = it.next().expect("--addr needs HOST:PORT"),
            "--events" => args.events = it.next().expect("--events needs a file path or -"),
            "--spec" => args
                .spec
                .specs
                .push(it.next().expect("--spec needs a label")),
            "--grid" => args.spec.grid = true,
            "--oracle" => args.spec.oracle = true,
            "--windows" => args.spec.windows = true,
            "--window-width" => {
                let v = it.next().expect("--window-width needs an access count");
                let width: u64 = v.parse().expect("--window-width must be a positive integer");
                assert!(width > 0, "--window-width must be positive");
                args.spec.window_width = Some(width);
            }
            "--regret-top" => {
                let v = it.next().expect("--regret-top needs a count");
                let top: u64 = v.parse().expect("--regret-top must be a positive integer");
                assert!(top > 0, "--regret-top must be positive");
                args.spec.regret_top = Some(top);
            }
            "--capacity" => {
                let v = it.next().expect("--capacity needs a byte count");
                args.spec.capacity =
                    Some(v.parse().expect("--capacity must be a positive integer"));
            }
            "--bench" => args.spec.bench = Some(it.next().expect("--bench needs a name")),
            "--model" => args.spec.model = Some(it.next().expect("--model needs a label")),
            "--deadline-ms" => {
                let v = it.next().expect("--deadline-ms needs a value");
                args.spec.deadline_ms = Some(v.parse().expect("--deadline-ms must be an integer"));
            }
            "--metrics-out" => {
                args.metrics_out = Some(it.next().expect("--metrics-out needs a file path"));
            }
            "--no-table" => args.table = false,
            "--retries" => {
                let v = it.next().expect("--retries needs a count");
                args.retry.retries = v.parse().expect("--retries must be an integer");
            }
            "--retry-ms" => {
                let v = it.next().expect("--retry-ms needs a value");
                let ms: u64 = v.parse().expect("--retry-ms must be an integer");
                args.retry.base = std::time::Duration::from_millis(ms);
            }
            "--verbose" => args.verbose = true,
            other => panic!("unknown submit argument {other:?}"),
        }
    }
    assert!(!args.addr.is_empty(), "submit needs --addr HOST:PORT");
    assert!(!args.events.is_empty(), "submit needs --events FILE|-");
    args
}

fn run_submit(it: impl Iterator<Item = String>) -> ExitCode {
    let args = parse_submit(it);
    // Retries re-send the whole upload: a file is reopened per attempt,
    // but stdin cannot be rewound, so it is buffered once up front.
    let stdin_body = if args.events == "-" {
        let mut body = String::new();
        if let Err(e) = io::stdin().read_to_string(&mut body) {
            eprintln!("cannot read stdin: {e}");
            return ExitCode::FAILURE;
        }
        Some(body)
    } else {
        None
    };
    let open = || -> io::Result<Box<dyn BufRead>> {
        match &stdin_body {
            Some(body) => Ok(Box::new(Cursor::new(body.clone().into_bytes()))),
            None => open_input(&args.events),
        }
    };
    let client = Client::new(&args.addr);
    let attempts = args.retry.attempts();
    let mut spec = args.spec.clone();
    if args.verbose && spec.trace_id.is_none() {
        spec.trace_id = Some(new_trace_id());
    }
    let submitted = if args.verbose {
        submit_with_retry_spans(&client, open, &spec, &args.retry)
    } else {
        client
            .submit_with_retry(open, &spec, &args.retry)
            .map(|reply| (reply, Vec::new()))
    };
    match submitted {
        Ok((
            Reply::Result {
                doc,
                table,
                benches,
                specs,
                elapsed_us,
            },
            spans,
        )) => {
            if args.table {
                print!("{table}");
            }
            eprintln!(
                "server simulated {benches} benchmark(s) x {specs} spec(s) in {:.3}s",
                elapsed_us as f64 / 1e6
            );
            if let Some(path) = &args.metrics_out {
                let written = File::create(path).and_then(|mut f| {
                    f.write_all(doc.as_bytes())?;
                    f.write_all(b"\n")
                });
                if let Err(e) = written {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote metrics to {path}");
            }
            if args.verbose {
                if let Some(id) = &spec.trace_id {
                    print_trace_summary(&client, id, &spans);
                }
            }
            ExitCode::SUCCESS
        }
        Ok((Reply::Busy { queue_depth }, _)) => {
            eprintln!(
                "server still busy after {attempts} attempt(s) (queue depth {queue_depth}); \
                 giving up"
            );
            ExitCode::from(3)
        }
        Ok((Reply::Error { message }, _)) => {
            eprintln!("server error: {message}");
            ExitCode::FAILURE
        }
        Ok((other, _)) => {
            eprintln!("unexpected reply: {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("submit failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// [`Client::submit_with_retry`] with client-side span recording — the
/// spans of the final (non-busy) attempt are returned.
fn submit_with_retry_spans(
    client: &Client,
    mut open: impl FnMut() -> io::Result<Box<dyn BufRead>>,
    spec: &JobSpec,
    policy: &RetryPolicy,
) -> io::Result<(Reply, Vec<Span>)> {
    let mut attempt = 0u32;
    loop {
        let (reply, spans) = client.submit_with_spans(open()?, spec)?;
        match reply {
            Reply::Busy { .. } if attempt < policy.retries => {
                std::thread::sleep(policy.delay(attempt));
                attempt += 1;
            }
            other => return Ok((other, spans)),
        }
    }
}

/// Fetches the span set the daemon retains for `trace_id`.
fn fetch_spans(client: &Client, trace_id: &str) -> io::Result<Vec<Span>> {
    match client.trace(trace_id)? {
        Reply::Trace { doc, .. } => {
            let v = serde_json::value_from_str(&doc).map_err(io::Error::other)?;
            let Value::Array(items) = v else {
                return Err(io::Error::other("trace reply is not a span array"));
            };
            Ok(items.iter().filter_map(Span::from_value).collect())
        }
        Reply::Error { message } => Err(io::Error::other(message)),
        other => Err(io::Error::other(format!("unexpected reply: {other:?}"))),
    }
}

/// Prints the client's spans and the server's stitched view to stderr
/// (stdout stays reserved for the simulation table / metrics).
fn print_trace_summary(client: &Client, trace_id: &str, client_spans: &[Span]) {
    eprintln!("trace {trace_id}");
    eprint!("{}", render_spans(client_spans));
    match fetch_spans(client, trace_id) {
        Ok(spans) if !spans.is_empty() => eprint!("{}", render_spans(&spans)),
        Ok(_) => eprintln!("(server retained no spans for {trace_id})"),
        Err(e) => eprintln!("(could not fetch server spans: {e})"),
    }
}

fn run_stats(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = String::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().expect("--addr needs HOST:PORT"),
            other => panic!("unknown stats argument {other:?}"),
        }
    }
    assert!(!addr.is_empty(), "stats needs --addr HOST:PORT");
    match Client::new(&addr).stats() {
        Ok(Reply::Stats { doc }) => {
            println!("{doc}");
            ExitCode::SUCCESS
        }
        Ok(other) => {
            eprintln!("unexpected reply: {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("stats failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_ping(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = String::new();
    let mut hold_ms = 0u64;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().expect("--addr needs HOST:PORT"),
            "--hold-ms" => {
                let v = it.next().expect("--hold-ms needs a value");
                hold_ms = v.parse().expect("--hold-ms must be an integer");
            }
            other => panic!("unknown ping argument {other:?}"),
        }
    }
    assert!(!addr.is_empty(), "ping needs --addr HOST:PORT");
    match Client::new(&addr).ping(hold_ms) {
        Ok(Reply::Pong) => {
            println!("pong");
            ExitCode::SUCCESS
        }
        Ok(Reply::Busy { queue_depth }) => {
            eprintln!("server busy (queue depth {queue_depth})");
            ExitCode::from(3)
        }
        Ok(other) => {
            eprintln!("unexpected reply: {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("ping failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_fetch(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = String::new();
    let mut bench = String::new();
    let mut scale = 1u64;
    let mut out_path = "-".to_string();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().expect("--addr needs HOST:PORT"),
            "--bench" => bench = it.next().expect("--bench needs a name"),
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                scale = v.parse().expect("--scale must be a positive integer");
                assert!(scale > 0, "--scale must be positive");
            }
            "--out" => out_path = it.next().expect("--out needs a file path or -"),
            other => panic!("unknown fetch argument {other:?}"),
        }
    }
    assert!(!addr.is_empty(), "fetch needs --addr HOST:PORT");
    assert!(!bench.is_empty(), "fetch needs --bench NAME");
    let out = match open_output(&out_path) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cannot open {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match Client::new(&addr).fetch(&bench, scale, out) {
        Ok(lines) => {
            eprintln!("fetched {lines} export lines for {bench}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fetch failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_shards(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = String::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().expect("--addr needs HOST:PORT"),
            other => panic!("unknown shards argument {other:?}"),
        }
    }
    assert!(!addr.is_empty(), "shards needs --addr HOST:PORT");
    match Client::new(&addr).shards() {
        Ok(Reply::Shards { doc }) => {
            println!("{doc}");
            ExitCode::SUCCESS
        }
        Ok(Reply::Error { message }) => {
            eprintln!("server error: {message}");
            ExitCode::FAILURE
        }
        Ok(other) => {
            eprintln!("unexpected reply: {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("shards failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_route(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = String::new();
    let mut bench = String::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().expect("--addr needs HOST:PORT"),
            "--bench" => bench = it.next().expect("--bench needs a name"),
            other => panic!("unknown route argument {other:?}"),
        }
    }
    assert!(!addr.is_empty(), "route needs --addr HOST:PORT");
    assert!(!bench.is_empty(), "route needs --bench NAME");
    match Client::new(&addr).route(&bench) {
        Ok(Reply::Route { bench, addr }) => {
            println!("{bench} -> {addr}");
            ExitCode::SUCCESS
        }
        Ok(Reply::Error { message }) => {
            eprintln!("server error: {message}");
            ExitCode::FAILURE
        }
        Ok(other) => {
            eprintln!("unexpected reply: {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("route failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_trace(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = String::new();
    let mut trace_id = String::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().expect("--addr needs HOST:PORT"),
            other if !other.starts_with("--") && trace_id.is_empty() => {
                trace_id = other.to_string();
            }
            other => panic!("unknown trace argument {other:?}"),
        }
    }
    assert!(!addr.is_empty(), "trace needs --addr HOST:PORT");
    assert!(!trace_id.is_empty(), "trace needs a TRACE_ID");
    match fetch_spans(&Client::new(&addr), &trace_id) {
        Ok(spans) if spans.is_empty() => {
            eprintln!("no spans retained for trace {trace_id}");
            ExitCode::from(3)
        }
        Ok(spans) => {
            print!("{}", render_spans(&spans));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_metrics(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = String::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().expect("--addr needs HOST:PORT"),
            other => panic!("unknown metrics argument {other:?}"),
        }
    }
    assert!(!addr.is_empty(), "metrics needs --addr HOST:PORT");
    match Client::new(&addr).metrics() {
        Ok(Reply::Metrics { body }) => {
            print!("{body}");
            ExitCode::SUCCESS
        }
        Ok(Reply::Error { message }) => {
            eprintln!("server error: {message}");
            ExitCode::FAILURE
        }
        Ok(other) => {
            eprintln!("unexpected reply: {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("metrics failed: {e}");
            ExitCode::FAILURE
        }
    }
}

struct BenchArgs {
    addr: String,
    events: String,
    spec: JobSpec,
    jobs: usize,
    note: String,
    out: Option<String>,
    replay_stats: Option<String>,
    watch: bool,
    tolerance: f64,
}

fn parse_bench(mut it: impl Iterator<Item = String>) -> BenchArgs {
    let mut args = BenchArgs {
        addr: String::new(),
        events: String::new(),
        spec: JobSpec::default(),
        jobs: 20,
        note: String::new(),
        out: None,
        replay_stats: None,
        watch: false,
        tolerance: 0.25,
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => args.addr = it.next().expect("--addr needs HOST:PORT"),
            "--events" => args.events = it.next().expect("--events needs a file path"),
            "--spec" => args
                .spec
                .specs
                .push(it.next().expect("--spec needs a label")),
            "--grid" => args.spec.grid = true,
            "--bench" => args.spec.bench = Some(it.next().expect("--bench needs a name")),
            "--jobs" => {
                let v = it.next().expect("--jobs needs a count");
                args.jobs = v.parse().expect("--jobs must be a positive integer");
                assert!(args.jobs > 0, "--jobs must be positive");
            }
            "--note" => args.note = it.next().expect("--note needs text"),
            "--out" => args.out = Some(it.next().expect("--out needs a file path")),
            "--replay-stats" => {
                args.replay_stats =
                    Some(it.next().expect("--replay-stats needs a file path"));
            }
            "--watch" => args.watch = true,
            "--tolerance" => {
                let v = it.next().expect("--tolerance needs a fraction");
                args.tolerance = v.parse().expect("--tolerance must be a number");
                assert!(args.tolerance > 0.0, "--tolerance must be positive");
            }
            other => panic!("unknown bench argument {other:?}"),
        }
    }
    assert!(!args.addr.is_empty(), "bench needs --addr HOST:PORT");
    assert!(!args.events.is_empty(), "bench needs --events FILE");
    args
}

fn bench_field(entry: &Value, name: &str) -> Option<f64> {
    match entry.as_object()?.iter().find(|(k, _)| k == name)?.1 {
        Value::Float(f) => Some(f),
        Value::UInt(n) => Some(n as f64),
        Value::Int(n) => Some(n as f64),
        _ => None,
    }
}

/// Drives `--jobs` timed submits (after one untimed warmup) and turns
/// the client-side `job` spans into a trajectory entry. With `--out`
/// the entry appends to a versioned JSON trajectory; `--watch` instead
/// compares against the file's last entry and exits 4 on a throughput
/// regression beyond `--tolerance` without appending.
fn run_bench(it: impl Iterator<Item = String>) -> ExitCode {
    let args = parse_bench(it);
    let body = match std::fs::read_to_string(&args.events) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.events);
            return ExitCode::FAILURE;
        }
    };
    let export_lines = body.lines().count() as u64;
    let client = Client::new(&args.addr);
    // Warmup: one untimed job absorbs connection and page-cache setup.
    if let Err(e) = client.submit(Cursor::new(body.as_bytes()), &args.spec) {
        eprintln!("warmup submit failed: {e}");
        return ExitCode::FAILURE;
    }
    let mut job_us: Vec<u64> = Vec::with_capacity(args.jobs);
    let started = Instant::now();
    for _ in 0..args.jobs {
        let (reply, spans) =
            match client.submit_with_spans(Cursor::new(body.as_bytes()), &args.spec) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("bench submit failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
        match reply {
            Reply::Result { .. } => {}
            other => {
                eprintln!("bench job did not complete: {other:?}");
                return ExitCode::FAILURE;
            }
        }
        match spans.iter().find(|s| s.stage == "job") {
            Some(job) => job_us.push(job.dur_us),
            None => {
                eprintln!("bench submit returned no job span");
                return ExitCode::FAILURE;
            }
        }
    }
    let wall_s = started.elapsed().as_secs_f64().max(1e-9);
    job_us.sort_unstable();
    let pct = |p: usize| job_us[(job_us.len() - 1) * p / 100];
    let jobs_per_sec = args.jobs as f64 / wall_s;
    let lines_per_sec = (export_lines * args.jobs as u64) as f64 / wall_s;
    let mut fields = vec![
        ("note".to_string(), Value::Str(args.note.clone())),
        ("jobs".to_string(), Value::UInt(args.jobs as u64)),
        ("export_lines".to_string(), Value::UInt(export_lines)),
        ("jobs_per_sec".to_string(), Value::Float(jobs_per_sec)),
        (
            "ingest_lines_per_sec".to_string(),
            Value::Float(lines_per_sec),
        ),
        ("p50_us".to_string(), Value::UInt(pct(50))),
        ("p99_us".to_string(), Value::UInt(pct(99))),
    ];
    // Offline replay metrics from a `simulate --stats-out` doc ride
    // along in the same trajectory entry, so the serve-path and
    // replay-path throughput histories stay in one file.
    if let Some(path) = &args.replay_stats {
        let stats = match std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|text| {
                serde_json::value_from_str(&text)
                    .map_err(|e| format!("{path} is not valid JSON: {e}"))
            }) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        for field in ["replay_cells", "replay_cells_per_sec", "peak_rss_bytes"] {
            let Some(v) = bench_field(&stats, field) else {
                eprintln!("{path} has no {field} field (not a simulate --stats-out doc?)");
                return ExitCode::FAILURE;
            };
            if field == "replay_cells_per_sec" {
                fields.push((field.to_string(), Value::Float(v)));
            } else {
                fields.push((field.to_string(), Value::UInt(v as u64)));
            }
        }
    }
    let entry = Value::Object(fields);
    eprintln!(
        "{} jobs in {wall_s:.3}s: {jobs_per_sec:.1} jobs/s, {lines_per_sec:.0} lines/s, \
         p50 {}us, p99 {}us",
        args.jobs,
        pct(50),
        pct(99)
    );
    let Some(out) = &args.out else {
        println!("{}", gencache_bench::value_to_json(&entry));
        return ExitCode::SUCCESS;
    };
    let mut trajectory: Vec<Value> = match std::fs::read_to_string(out) {
        Ok(text) => match serde_json::value_from_str(&text) {
            Ok(doc) => match doc
                .as_object()
                .and_then(|pairs| pairs.iter().find(|(k, _)| k == "trajectory").cloned())
            {
                Some((_, Value::Array(items))) => items,
                _ => {
                    eprintln!("{out} has no trajectory array");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("{out} is not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => {
            eprintln!("cannot read {out}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.watch {
        if let Some(last) = trajectory.last() {
            let prev = bench_field(last, "jobs_per_sec").unwrap_or(0.0);
            if prev > 0.0 {
                let drift = (jobs_per_sec - prev) / prev;
                if drift < -args.tolerance {
                    eprintln!(
                        "throughput regression: {jobs_per_sec:.1} jobs/s vs {prev:.1} \
                         ({:+.1}% > {:.0}% tolerance)",
                        drift * 100.0,
                        args.tolerance * 100.0
                    );
                    return ExitCode::from(4);
                }
                eprintln!(
                    "throughput within tolerance of previous entry ({:+.1}%)",
                    drift * 100.0
                );
            }
            // The offline replay rate rides the same gate once both the
            // previous entry and this run carry it.
            let current = bench_field(&entry, "replay_cells_per_sec");
            let prev = bench_field(last, "replay_cells_per_sec").unwrap_or(0.0);
            if let (Some(current), true) = (current, prev > 0.0) {
                let drift = (current - prev) / prev;
                if drift < -args.tolerance {
                    eprintln!(
                        "offline replay regression: {current:.1} cells/s vs {prev:.1} \
                         ({:+.1}% > {:.0}% tolerance)",
                        drift * 100.0,
                        args.tolerance * 100.0
                    );
                    return ExitCode::from(4);
                }
                eprintln!(
                    "offline replay rate within tolerance of previous entry ({:+.1}%)",
                    drift * 100.0
                );
            }
        }
    }
    trajectory.push(entry);
    let doc = Value::Object(vec![
        (
            "schema".to_string(),
            Value::Str("gencache-serve-bench".to_string()),
        ),
        ("version".to_string(), Value::UInt(1)),
        ("trajectory".to_string(), Value::Array(trajectory)),
    ]);
    let written = File::create(out).and_then(|mut f| {
        f.write_all(gencache_bench::value_to_json(&doc).as_bytes())?;
        f.write_all(b"\n")
    });
    if let Err(e) = written {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("appended trajectory entry to {out}");
    ExitCode::SUCCESS
}

/// One dashboard frame: a fixed-width table of every row in the
/// snapshot plus a footer naming the emitting node and sequence number.
fn render_watch_frame(node: &str, seq: u64, rows: &[gencache_serve::WatchRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>8} {:>8} {:>7} {:>6} {:>6} {:>9} {:>9} {:>8} {:>7} {:>6}\n",
        "NODE", "UP(s)", "JOBS/S", "SHED/S", "INFL", "QUEUE", "P50(us)", "P99(us)", "JOBS",
        "W.MISS", "DRIFT"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<24} {:>8} {:>8.1} {:>7.1} {:>6} {:>6} {:>9} {:>9} {:>8} {:>6.1}% {:>6}\n",
            r.node,
            r.uptime_ms / 1000,
            r.jobs_per_sec,
            r.shed_per_sec,
            r.in_flight,
            r.queue_depth,
            r.p50_us,
            r.p99_us,
            r.jobs_total,
            r.window_miss_rate * 100.0,
            r.drift_events,
        ));
    }
    out.push_str(&format!(
        "-- {node} snapshot #{seq}: {} node(s) (Ctrl-C to stop)\n",
        rows.len()
    ));
    out
}

fn run_watch(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = String::new();
    let mut interval_ms = 1000u64;
    let mut count = 0u64;
    let mut plain = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().expect("--addr needs HOST:PORT"),
            "--interval-ms" => {
                let v = it.next().expect("--interval-ms needs a value");
                interval_ms = v.parse().expect("--interval-ms must be an integer");
                assert!(interval_ms > 0, "--interval-ms must be positive");
            }
            "--count" => {
                let v = it.next().expect("--count needs a value");
                count = v.parse().expect("--count must be an integer");
            }
            "--plain" => plain = true,
            other => panic!("unknown watch argument {other:?}"),
        }
    }
    assert!(!addr.is_empty(), "watch needs --addr HOST:PORT");
    gencache_serve::signal::install_handlers();
    // The read timeout outlives several intervals, so a timeout means a
    // dead server, not a slow tick; Ctrl-C interrupts the read directly.
    let timeout = std::time::Duration::from_millis((interval_ms * 3).max(5000));
    let client = Client::with_timeout(&addr, timeout);
    let mut stdout = io::stdout();
    let drew = std::cell::Cell::new(false);
    let result = client.watch(interval_ms, count, |node, seq, rows| {
        let frame = render_watch_frame(node, seq, rows);
        if plain {
            print!("{frame}");
        } else {
            // Clear + home, then the frame — a flicker-free redraw at
            // dashboard cadence without pulling in a TUI library.
            print!("\x1b[2J\x1b[H{frame}");
            drew.set(true);
        }
        stdout.flush().ok();
        !gencache_serve::signal::shutdown_requested()
    });
    // Leave the cursor on a clean line below the last frame — never
    // mid-escape-sequence — whatever ended the stream.
    if drew.get() {
        println!("\x1b[0m");
        io::stdout().flush().ok();
    }
    match result {
        Ok(received) => {
            eprintln!("watch ended after {received} snapshot(s)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("watch failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut it = std::env::args().skip(1);
    match it.next().as_deref() {
        Some("submit") => run_submit(it),
        Some("stats") => run_stats(it),
        Some("ping") => run_ping(it),
        Some("fetch") => run_fetch(it),
        Some("shards") => run_shards(it),
        Some("route") => run_route(it),
        Some("trace") => run_trace(it),
        Some("metrics") => run_metrics(it),
        Some("bench") => run_bench(it),
        Some("watch") => run_watch(it),
        Some(other) => panic!("unknown subcommand {other:?}; {USAGE}"),
        None => panic!("{USAGE}"),
    }
}
