//! `gencache-client` — CLI driver for the `gencache-serve` daemon.
//!
//! ```text
//! gencache-client submit --addr HOST:PORT --events FILE|- [--spec LABEL]...
//!                 [--grid] [--oracle] [--capacity BYTES] [--bench NAME]
//!                 [--model LABEL] [--deadline-ms N] [--metrics-out FILE]
//!                 [--no-table] [--retries N] [--retry-ms N]
//! gencache-client stats  --addr HOST:PORT
//! gencache-client ping   --addr HOST:PORT [--hold-ms N]
//! gencache-client fetch  --addr HOST:PORT --bench NAME [--scale N] [--out FILE|-]
//! gencache-client shards --addr HOST:PORT
//! gencache-client route  --addr HOST:PORT --bench NAME
//! ```
//!
//! `submit --events -` reads the export from stdin; `--metrics-out`
//! writes the returned metrics document byte-identically to what
//! `simulate --metrics-out` produces for the same export and specs.
//! The address may name a plain daemon or a `gencache-shard` router —
//! the protocol is identical. `fetch` streams a server-side recording's
//! v2 export to stdout (or `--out`), ready to pipe into
//! `simulate --events -`. `shards`/`route` inspect a router's shard
//! table and hash placement.
//!
//! A `busy` reply is retried with capped exponential backoff
//! (`--retries`, default 3, delays `--retry-ms` ms doubling per
//! attempt, default 200); a server still busy after the last attempt
//! exits with status 3 so scripts can distinguish shedding from
//! failure. `--retries 0` restores give-up-immediately. Retries re-send
//! the upload, so a stdin export is buffered in memory when retries are
//! enabled; files are reopened per attempt.

use std::fs::File;
use std::io::{self, BufRead, BufReader, Cursor, Read, Write};
use std::process::ExitCode;

use gencache_serve::{Client, JobSpec, Reply, RetryPolicy};

const USAGE: &str =
    "subcommands: submit / stats / ping / fetch / shards / route (see --help in module docs)";

fn open_input(path: &str) -> io::Result<Box<dyn BufRead>> {
    if path == "-" {
        Ok(Box::new(BufReader::new(io::stdin())))
    } else {
        Ok(Box::new(BufReader::new(File::open(path)?)))
    }
}

fn open_output(path: &str) -> io::Result<Box<dyn Write>> {
    if path == "-" {
        Ok(Box::new(io::stdout()))
    } else {
        Ok(Box::new(File::create(path)?))
    }
}

struct SubmitArgs {
    addr: String,
    events: String,
    spec: JobSpec,
    metrics_out: Option<String>,
    table: bool,
    retry: RetryPolicy,
}

fn parse_submit(mut it: impl Iterator<Item = String>) -> SubmitArgs {
    let mut args = SubmitArgs {
        addr: String::new(),
        events: String::new(),
        spec: JobSpec::default(),
        metrics_out: None,
        table: true,
        retry: RetryPolicy::default(),
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => args.addr = it.next().expect("--addr needs HOST:PORT"),
            "--events" => args.events = it.next().expect("--events needs a file path or -"),
            "--spec" => args
                .spec
                .specs
                .push(it.next().expect("--spec needs a label")),
            "--grid" => args.spec.grid = true,
            "--oracle" => args.spec.oracle = true,
            "--capacity" => {
                let v = it.next().expect("--capacity needs a byte count");
                args.spec.capacity =
                    Some(v.parse().expect("--capacity must be a positive integer"));
            }
            "--bench" => args.spec.bench = Some(it.next().expect("--bench needs a name")),
            "--model" => args.spec.model = Some(it.next().expect("--model needs a label")),
            "--deadline-ms" => {
                let v = it.next().expect("--deadline-ms needs a value");
                args.spec.deadline_ms = Some(v.parse().expect("--deadline-ms must be an integer"));
            }
            "--metrics-out" => {
                args.metrics_out = Some(it.next().expect("--metrics-out needs a file path"));
            }
            "--no-table" => args.table = false,
            "--retries" => {
                let v = it.next().expect("--retries needs a count");
                args.retry.retries = v.parse().expect("--retries must be an integer");
            }
            "--retry-ms" => {
                let v = it.next().expect("--retry-ms needs a value");
                let ms: u64 = v.parse().expect("--retry-ms must be an integer");
                args.retry.base = std::time::Duration::from_millis(ms);
            }
            other => panic!("unknown submit argument {other:?}"),
        }
    }
    assert!(!args.addr.is_empty(), "submit needs --addr HOST:PORT");
    assert!(!args.events.is_empty(), "submit needs --events FILE|-");
    args
}

fn run_submit(it: impl Iterator<Item = String>) -> ExitCode {
    let args = parse_submit(it);
    // Retries re-send the whole upload: a file is reopened per attempt,
    // but stdin cannot be rewound, so it is buffered once up front.
    let stdin_body = if args.events == "-" {
        let mut body = String::new();
        if let Err(e) = io::stdin().read_to_string(&mut body) {
            eprintln!("cannot read stdin: {e}");
            return ExitCode::FAILURE;
        }
        Some(body)
    } else {
        None
    };
    let open = || -> io::Result<Box<dyn BufRead>> {
        match &stdin_body {
            Some(body) => Ok(Box::new(Cursor::new(body.clone().into_bytes()))),
            None => open_input(&args.events),
        }
    };
    let client = Client::new(&args.addr);
    let attempts = args.retry.attempts();
    match client.submit_with_retry(open, &args.spec, &args.retry) {
        Ok(Reply::Result {
            doc,
            table,
            benches,
            specs,
            elapsed_us,
        }) => {
            if args.table {
                print!("{table}");
            }
            eprintln!(
                "server simulated {benches} benchmark(s) x {specs} spec(s) in {:.3}s",
                elapsed_us as f64 / 1e6
            );
            if let Some(path) = &args.metrics_out {
                let written = File::create(path).and_then(|mut f| {
                    f.write_all(doc.as_bytes())?;
                    f.write_all(b"\n")
                });
                if let Err(e) = written {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote metrics to {path}");
            }
            ExitCode::SUCCESS
        }
        Ok(Reply::Busy { queue_depth }) => {
            eprintln!(
                "server still busy after {attempts} attempt(s) (queue depth {queue_depth}); \
                 giving up"
            );
            ExitCode::from(3)
        }
        Ok(Reply::Error { message }) => {
            eprintln!("server error: {message}");
            ExitCode::FAILURE
        }
        Ok(other) => {
            eprintln!("unexpected reply: {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("submit failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_stats(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = String::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().expect("--addr needs HOST:PORT"),
            other => panic!("unknown stats argument {other:?}"),
        }
    }
    assert!(!addr.is_empty(), "stats needs --addr HOST:PORT");
    match Client::new(&addr).stats() {
        Ok(Reply::Stats { doc }) => {
            println!("{doc}");
            ExitCode::SUCCESS
        }
        Ok(other) => {
            eprintln!("unexpected reply: {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("stats failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_ping(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = String::new();
    let mut hold_ms = 0u64;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().expect("--addr needs HOST:PORT"),
            "--hold-ms" => {
                let v = it.next().expect("--hold-ms needs a value");
                hold_ms = v.parse().expect("--hold-ms must be an integer");
            }
            other => panic!("unknown ping argument {other:?}"),
        }
    }
    assert!(!addr.is_empty(), "ping needs --addr HOST:PORT");
    match Client::new(&addr).ping(hold_ms) {
        Ok(Reply::Pong) => {
            println!("pong");
            ExitCode::SUCCESS
        }
        Ok(Reply::Busy { queue_depth }) => {
            eprintln!("server busy (queue depth {queue_depth})");
            ExitCode::from(3)
        }
        Ok(other) => {
            eprintln!("unexpected reply: {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("ping failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_fetch(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = String::new();
    let mut bench = String::new();
    let mut scale = 1u64;
    let mut out_path = "-".to_string();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().expect("--addr needs HOST:PORT"),
            "--bench" => bench = it.next().expect("--bench needs a name"),
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                scale = v.parse().expect("--scale must be a positive integer");
                assert!(scale > 0, "--scale must be positive");
            }
            "--out" => out_path = it.next().expect("--out needs a file path or -"),
            other => panic!("unknown fetch argument {other:?}"),
        }
    }
    assert!(!addr.is_empty(), "fetch needs --addr HOST:PORT");
    assert!(!bench.is_empty(), "fetch needs --bench NAME");
    let out = match open_output(&out_path) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cannot open {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match Client::new(&addr).fetch(&bench, scale, out) {
        Ok(lines) => {
            eprintln!("fetched {lines} export lines for {bench}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fetch failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_shards(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = String::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().expect("--addr needs HOST:PORT"),
            other => panic!("unknown shards argument {other:?}"),
        }
    }
    assert!(!addr.is_empty(), "shards needs --addr HOST:PORT");
    match Client::new(&addr).shards() {
        Ok(Reply::Shards { doc }) => {
            println!("{doc}");
            ExitCode::SUCCESS
        }
        Ok(Reply::Error { message }) => {
            eprintln!("server error: {message}");
            ExitCode::FAILURE
        }
        Ok(other) => {
            eprintln!("unexpected reply: {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("shards failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_route(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = String::new();
    let mut bench = String::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().expect("--addr needs HOST:PORT"),
            "--bench" => bench = it.next().expect("--bench needs a name"),
            other => panic!("unknown route argument {other:?}"),
        }
    }
    assert!(!addr.is_empty(), "route needs --addr HOST:PORT");
    assert!(!bench.is_empty(), "route needs --bench NAME");
    match Client::new(&addr).route(&bench) {
        Ok(Reply::Route { bench, addr }) => {
            println!("{bench} -> {addr}");
            ExitCode::SUCCESS
        }
        Ok(Reply::Error { message }) => {
            eprintln!("server error: {message}");
            ExitCode::FAILURE
        }
        Ok(other) => {
            eprintln!("unexpected reply: {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("route failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut it = std::env::args().skip(1);
    match it.next().as_deref() {
        Some("submit") => run_submit(it),
        Some("stats") => run_stats(it),
        Some("ping") => run_ping(it),
        Some("fetch") => run_fetch(it),
        Some("shards") => run_shards(it),
        Some("route") => run_route(it),
        Some(other) => panic!("unknown subcommand {other:?}; {USAGE}"),
        None => panic!("{USAGE}"),
    }
}
