//! `gencache-client` — CLI driver for the `gencache-serve` daemon.
//!
//! ```text
//! gencache-client submit --addr HOST:PORT --events FILE|- [--spec LABEL]...
//!                 [--grid] [--oracle] [--capacity BYTES] [--bench NAME]
//!                 [--model LABEL] [--deadline-ms N] [--metrics-out FILE]
//!                 [--no-table]
//! gencache-client stats --addr HOST:PORT
//! gencache-client ping  --addr HOST:PORT [--hold-ms N]
//! gencache-client fetch --addr HOST:PORT --bench NAME [--scale N] [--out FILE|-]
//! ```
//!
//! `submit --events -` reads the export from stdin; `--metrics-out`
//! writes the returned metrics document byte-identically to what
//! `simulate --metrics-out` produces for the same export and specs.
//! `fetch` streams a server-side recording's v2 export to stdout (or
//! `--out`), ready to pipe into `simulate --events -`. A `busy` reply
//! exits with status 3 so scripts can distinguish shedding from
//! failure.

use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::process::ExitCode;

use gencache_serve::{Client, JobSpec, Reply};

const USAGE: &str = "subcommands: submit / stats / ping / fetch (see --help in module docs)";

fn open_input(path: &str) -> io::Result<Box<dyn BufRead>> {
    if path == "-" {
        Ok(Box::new(BufReader::new(io::stdin())))
    } else {
        Ok(Box::new(BufReader::new(File::open(path)?)))
    }
}

fn open_output(path: &str) -> io::Result<Box<dyn Write>> {
    if path == "-" {
        Ok(Box::new(io::stdout()))
    } else {
        Ok(Box::new(File::create(path)?))
    }
}

struct SubmitArgs {
    addr: String,
    events: String,
    spec: JobSpec,
    metrics_out: Option<String>,
    table: bool,
}

fn parse_submit(mut it: impl Iterator<Item = String>) -> SubmitArgs {
    let mut args = SubmitArgs {
        addr: String::new(),
        events: String::new(),
        spec: JobSpec::default(),
        metrics_out: None,
        table: true,
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => args.addr = it.next().expect("--addr needs HOST:PORT"),
            "--events" => args.events = it.next().expect("--events needs a file path or -"),
            "--spec" => args
                .spec
                .specs
                .push(it.next().expect("--spec needs a label")),
            "--grid" => args.spec.grid = true,
            "--oracle" => args.spec.oracle = true,
            "--capacity" => {
                let v = it.next().expect("--capacity needs a byte count");
                args.spec.capacity =
                    Some(v.parse().expect("--capacity must be a positive integer"));
            }
            "--bench" => args.spec.bench = Some(it.next().expect("--bench needs a name")),
            "--model" => args.spec.model = Some(it.next().expect("--model needs a label")),
            "--deadline-ms" => {
                let v = it.next().expect("--deadline-ms needs a value");
                args.spec.deadline_ms = Some(v.parse().expect("--deadline-ms must be an integer"));
            }
            "--metrics-out" => {
                args.metrics_out = Some(it.next().expect("--metrics-out needs a file path"));
            }
            "--no-table" => args.table = false,
            other => panic!("unknown submit argument {other:?}"),
        }
    }
    assert!(!args.addr.is_empty(), "submit needs --addr HOST:PORT");
    assert!(!args.events.is_empty(), "submit needs --events FILE|-");
    args
}

fn run_submit(it: impl Iterator<Item = String>) -> ExitCode {
    let args = parse_submit(it);
    let reader = match open_input(&args.events) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot open {}: {e}", args.events);
            return ExitCode::FAILURE;
        }
    };
    let client = Client::new(&args.addr);
    match client.submit(reader, &args.spec) {
        Ok(Reply::Result {
            doc,
            table,
            benches,
            specs,
            elapsed_us,
        }) => {
            if args.table {
                print!("{table}");
            }
            eprintln!(
                "server simulated {benches} benchmark(s) x {specs} spec(s) in {:.3}s",
                elapsed_us as f64 / 1e6
            );
            if let Some(path) = &args.metrics_out {
                let written = File::create(path).and_then(|mut f| {
                    f.write_all(doc.as_bytes())?;
                    f.write_all(b"\n")
                });
                if let Err(e) = written {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote metrics to {path}");
            }
            ExitCode::SUCCESS
        }
        Ok(Reply::Busy { queue_depth }) => {
            eprintln!("server busy (queue depth {queue_depth}); retry later");
            ExitCode::from(3)
        }
        Ok(Reply::Error { message }) => {
            eprintln!("server error: {message}");
            ExitCode::FAILURE
        }
        Ok(other) => {
            eprintln!("unexpected reply: {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("submit failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_stats(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = String::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().expect("--addr needs HOST:PORT"),
            other => panic!("unknown stats argument {other:?}"),
        }
    }
    assert!(!addr.is_empty(), "stats needs --addr HOST:PORT");
    match Client::new(&addr).stats() {
        Ok(Reply::Stats { doc }) => {
            println!("{doc}");
            ExitCode::SUCCESS
        }
        Ok(other) => {
            eprintln!("unexpected reply: {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("stats failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_ping(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = String::new();
    let mut hold_ms = 0u64;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().expect("--addr needs HOST:PORT"),
            "--hold-ms" => {
                let v = it.next().expect("--hold-ms needs a value");
                hold_ms = v.parse().expect("--hold-ms must be an integer");
            }
            other => panic!("unknown ping argument {other:?}"),
        }
    }
    assert!(!addr.is_empty(), "ping needs --addr HOST:PORT");
    match Client::new(&addr).ping(hold_ms) {
        Ok(Reply::Pong) => {
            println!("pong");
            ExitCode::SUCCESS
        }
        Ok(Reply::Busy { queue_depth }) => {
            eprintln!("server busy (queue depth {queue_depth})");
            ExitCode::from(3)
        }
        Ok(other) => {
            eprintln!("unexpected reply: {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("ping failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_fetch(mut it: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = String::new();
    let mut bench = String::new();
    let mut scale = 1u64;
    let mut out_path = "-".to_string();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().expect("--addr needs HOST:PORT"),
            "--bench" => bench = it.next().expect("--bench needs a name"),
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                scale = v.parse().expect("--scale must be a positive integer");
                assert!(scale > 0, "--scale must be positive");
            }
            "--out" => out_path = it.next().expect("--out needs a file path or -"),
            other => panic!("unknown fetch argument {other:?}"),
        }
    }
    assert!(!addr.is_empty(), "fetch needs --addr HOST:PORT");
    assert!(!bench.is_empty(), "fetch needs --bench NAME");
    let out = match open_output(&out_path) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cannot open {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match Client::new(&addr).fetch(&bench, scale, out) {
        Ok(lines) => {
            eprintln!("fetched {lines} export lines for {bench}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fetch failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut it = std::env::args().skip(1);
    match it.next().as_deref() {
        Some("submit") => run_submit(it),
        Some("stats") => run_stats(it),
        Some("ping") => run_ping(it),
        Some("fetch") => run_fetch(it),
        Some(other) => panic!("unknown subcommand {other:?}; {USAGE}"),
        None => panic!("{USAGE}"),
    }
}
