//! Job tracing and structured logging for the serve/fleet path.
//!
//! Three cooperating pieces, all pure-std and lock-cheap:
//!
//! * [`Span`] / [`Telemetry`] — a bounded ring buffer of per-stage spans
//!   keyed by `trace_id`. Every job stage (accept, queue, ingest, replay,
//!   dispatch, merge, reply) records one span with monotonic wall-clock
//!   and an outcome string. When tracing is disabled ([`Telemetry`] built
//!   with capacity 0) the recording path is a single branch — the
//!   `NullObserver` discipline one layer up.
//! * [`Logger`] — a levelled JSONL log stream (stderr or file). Records
//!   carry the `trace_id` so one job can be grepped across the client,
//!   router, and shard logs. Disabled loggers skip all formatting.
//! * [`PromText`] — renders counters, gauges, and
//!   [`Log2Histogram`]s in Prometheus text exposition format for the
//!   `metrics` control frame.
//!
//! Spans use monotonic clocks only: `start_us` is microseconds since the
//! recording daemon's start (for the client, since the submit call
//! began), never wall time, so traces survive clock steps.

use std::collections::VecDeque;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use gencache_obs::Log2Histogram;
use serde::Value;

/// Default number of spans retained per daemon before the oldest drop.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Generates a process-unique 16-hex-digit trace id.
///
/// Mixes wall time, the process id, and a process-local counter through
/// an FNV-1a/avalanche hash — no randomness source required, and two
/// processes stamping ids in the same nanosecond still disagree on pid
/// and counter.
pub fn new_trace_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let seq = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in [nanos, u64::from(std::process::id()), seq] {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    // Murmur3-style avalanche so adjacent counters spread across all bits.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    format!("{h:016x}")
}

/// One timed stage of one job on one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Trace id this span belongs to.
    pub trace_id: String,
    /// Recording node, e.g. `serve:127.0.0.1:4000`, `router:…`, `client`.
    pub node: String,
    /// Stage name: `accept`, `queue`, `ingest`, `replay:<spec>`,
    /// `dispatch:<addr>`, `merge`, `reply`, `upload`, `job`.
    pub stage: String,
    /// Monotonic microseconds since the recording node's origin instant.
    pub start_us: u64,
    /// Stage duration in microseconds.
    pub dur_us: u64,
    /// `ok`, `busy`, or `error: <message>`.
    pub outcome: String,
    /// Lines handled during this stage, when meaningful.
    pub lines: Option<u64>,
    /// Bytes handled during this stage, when meaningful.
    pub bytes: Option<u64>,
}

impl Span {
    /// Serializes the span as a deterministic JSON object value.
    pub fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("trace_id".to_string(), Value::Str(self.trace_id.clone())),
            ("node".to_string(), Value::Str(self.node.clone())),
            ("stage".to_string(), Value::Str(self.stage.clone())),
            ("start_us".to_string(), Value::UInt(self.start_us)),
            ("dur_us".to_string(), Value::UInt(self.dur_us)),
            ("outcome".to_string(), Value::Str(self.outcome.clone())),
        ];
        if let Some(n) = self.lines {
            pairs.push(("lines".to_string(), Value::UInt(n)));
        }
        if let Some(n) = self.bytes {
            pairs.push(("bytes".to_string(), Value::UInt(n)));
        }
        Value::Object(pairs)
    }

    /// Parses a span back out of a JSON object value.
    pub fn from_value(v: &Value) -> Option<Span> {
        let pairs = v.as_object()?;
        let get = |name: &str| pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let s = |name: &str| -> Option<String> {
            match get(name)? {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            }
        };
        let n = |name: &str| -> Option<u64> {
            match get(name)? {
                Value::UInt(n) => Some(*n),
                Value::Int(n) if *n >= 0 => Some(*n as u64),
                _ => None,
            }
        };
        Some(Span {
            trace_id: s("trace_id")?,
            node: s("node")?,
            stage: s("stage")?,
            start_us: n("start_us")?,
            dur_us: n("dur_us")?,
            outcome: s("outcome")?,
            lines: n("lines"),
            bytes: n("bytes"),
        })
    }
}

/// Renders spans as an aligned human-readable table (used by
/// `gencache-client trace` and `--verbose`).
pub fn render_spans(spans: &[Span]) -> String {
    let mut out = String::new();
    let node_w = spans.iter().map(|s| s.node.len()).max().unwrap_or(4).max(4);
    let stage_w = spans
        .iter()
        .map(|s| s.stage.len())
        .max()
        .unwrap_or(5)
        .max(5);
    out.push_str(&format!(
        "{:<node_w$}  {:<stage_w$}  {:>10}  {:>10}  {}\n",
        "node", "stage", "start_us", "dur_us", "outcome"
    ));
    for s in spans {
        let mut detail = String::new();
        if let Some(n) = s.lines {
            detail.push_str(&format!(" lines={n}"));
        }
        if let Some(n) = s.bytes {
            detail.push_str(&format!(" bytes={n}"));
        }
        out.push_str(&format!(
            "{:<node_w$}  {:<stage_w$}  {:>10}  {:>10}  {}{}\n",
            s.node, s.stage, s.start_us, s.dur_us, s.outcome, detail
        ));
    }
    out
}

/// In-flight span under construction; terminal [`SpanBuilder::end`]
/// pushes it into the ring.
#[derive(Debug)]
pub struct SpanBuilder<'t> {
    tel: &'t Telemetry,
    trace_id: String,
    stage: String,
    start: Instant,
    dur: Option<Duration>,
    outcome: String,
    lines: Option<u64>,
    bytes: Option<u64>,
}

impl SpanBuilder<'_> {
    /// Overrides the outcome (default `ok`).
    #[must_use]
    pub fn outcome(mut self, outcome: &str) -> Self {
        self.outcome = outcome.to_string();
        self
    }

    /// Attaches a line count.
    #[must_use]
    pub fn lines(mut self, n: u64) -> Self {
        self.lines = Some(n);
        self
    }

    /// Attaches a byte count.
    #[must_use]
    pub fn bytes(mut self, n: u64) -> Self {
        self.bytes = Some(n);
        self
    }

    /// Overrides the duration (default: elapsed since the start instant
    /// when `end` is called). Used for retrospective spans such as queue
    /// wait and per-spec replay sums.
    #[must_use]
    pub fn dur(mut self, dur: Duration) -> Self {
        self.dur = Some(dur);
        self
    }

    /// Finalizes the span and records it.
    pub fn end(self) {
        let dur = self.dur.unwrap_or_else(|| self.start.elapsed());
        let span = Span {
            trace_id: self.trace_id,
            node: self.tel.node.clone(),
            stage: self.stage,
            start_us: self.tel.offset_us(self.start),
            dur_us: dur.as_micros() as u64,
            outcome: self.outcome,
            lines: self.lines,
            bytes: self.bytes,
        };
        self.tel.push(span);
    }
}

/// Per-daemon telemetry: a span ring plus the structured logger.
pub struct Telemetry {
    node: String,
    origin: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<Span>>,
    logger: Logger,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("node", &self.node)
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Builds a recorder for `node` retaining up to `capacity` spans.
    /// Capacity 0 disables tracing entirely (spans cost one branch).
    pub fn new(node: &str, capacity: usize, logger: Logger) -> Telemetry {
        Telemetry {
            node: node.to_string(),
            origin: Instant::now(),
            capacity,
            ring: Mutex::new(VecDeque::new()),
            logger,
        }
    }

    /// A disabled recorder: no spans, no logs.
    pub fn disabled() -> Telemetry {
        Telemetry::new("", 0, Logger::disabled())
    }

    /// Whether span recording is on.
    pub fn tracing(&self) -> bool {
        self.capacity > 0
    }

    /// The node label this recorder stamps on spans.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Milliseconds since this recorder (daemon) started.
    pub fn uptime_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }

    fn offset_us(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.origin).as_micros() as u64
    }

    /// Starts a span for `trace_id` covering `stage`, begun at `start`.
    /// Returns `None` when tracing is disabled so call sites pay nothing.
    pub fn span(&self, trace_id: &str, stage: &str, start: Instant) -> Option<SpanBuilder<'_>> {
        if !self.tracing() {
            return None;
        }
        Some(SpanBuilder {
            tel: self,
            trace_id: trace_id.to_string(),
            stage: stage.to_string(),
            start,
            dur: None,
            outcome: "ok".to_string(),
            lines: None,
            bytes: None,
        })
    }

    fn push(&self, span: Span) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(span);
    }

    /// All retained spans for a trace id, in recording order.
    pub fn spans_for(&self, trace_id: &str) -> Vec<Span> {
        self.ring
            .lock()
            .unwrap()
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .cloned()
            .collect()
    }

    /// The structured logger bound to this daemon.
    pub fn log(&self) -> &Logger {
        &self.logger
    }
}

/// Severity of a structured log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Fine-grained per-stage detail.
    Debug,
    /// Normal life-cycle events (admission, drain).
    Info,
    /// Degraded but recovering (shed, failover, deadline miss).
    Warn,
    /// Request- or connection-fatal conditions.
    Error,
}

impl LogLevel {
    /// Parses `debug|info|warn|error` (case-insensitive).
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(LogLevel::Debug),
            "info" => Some(LogLevel::Info),
            "warn" | "warning" => Some(LogLevel::Warn),
            "error" => Some(LogLevel::Error),
            _ => None,
        }
    }

    /// The lowercase name used in log records.
    pub fn name(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }
}

/// Where a [`Logger`]'s records go, plus the size accounting that
/// drives optional rotation. Only file sinks rotate: when writing the
/// next record would push the file past `max_bytes`, the current file
/// is renamed to `<path>.1` (replacing any previous `.1`) and a fresh
/// file is started — a single-step rotation, so the log never holds
/// more than two generations on disk.
struct LogSink {
    writer: Box<dyn Write + Send>,
    /// `Some` only for file sinks (stderr never rotates).
    path: Option<PathBuf>,
    /// Rotation threshold; `None` means grow without bound.
    max_bytes: Option<u64>,
    /// Current file size in bytes (seeded from the existing file when
    /// appending).
    size: u64,
}

impl LogSink {
    fn write_line(&mut self, line: &str) {
        let record_len = line.len() as u64 + 1;
        if let (Some(path), Some(max)) = (&self.path, self.max_bytes) {
            if self.size + record_len > max && self.size > 0 {
                let _ = self.writer.flush();
                let rotated = {
                    let mut name = path.as_os_str().to_owned();
                    name.push(".1");
                    PathBuf::from(name)
                };
                if std::fs::rename(path, &rotated).is_ok() {
                    if let Ok(f) = OpenOptions::new().create(true).append(true).open(path) {
                        self.writer = Box::new(f);
                        self.size = 0;
                    }
                }
            }
        }
        let _ = writeln!(self.writer, "{line}");
        let _ = self.writer.flush();
        self.size += record_len;
    }
}

/// Levelled JSONL logger. Each record is one line:
/// `{"ts_ms":…,"level":"…","component":"…","event":"…","trace_id":…,…}`.
pub struct Logger {
    component: String,
    level: LogLevel,
    sink: Option<Mutex<LogSink>>,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger")
            .field("component", &self.component)
            .field("level", &self.level)
            .field("enabled", &self.sink.is_some())
            .finish()
    }
}

impl Logger {
    /// A logger that drops everything.
    pub fn disabled() -> Logger {
        Logger {
            component: String::new(),
            level: LogLevel::Error,
            sink: None,
        }
    }

    /// Opens a logger for `component` writing to `target`:
    /// `None`/`"none"` disables, `"-"` writes to stderr, anything else
    /// is a file path (created or appended to). The file grows without
    /// bound; see [`Logger::open_capped`] for rotation.
    pub fn open(component: &str, target: Option<&str>, level: LogLevel) -> io::Result<Logger> {
        Logger::open_capped(component, target, level, None)
    }

    /// Like [`Logger::open`], but a file sink rotates once it would
    /// exceed `max_bytes`: the current file is renamed to `<path>.1`
    /// (replacing any earlier `.1`) and a fresh file begins. Stderr
    /// sinks ignore the cap. `None` disables rotation.
    pub fn open_capped(
        component: &str,
        target: Option<&str>,
        level: LogLevel,
        max_bytes: Option<u64>,
    ) -> io::Result<Logger> {
        let sink: Option<LogSink> = match target {
            None | Some("none") | Some("off") => None,
            Some("-") => Some(LogSink {
                writer: Box::new(io::stderr()),
                path: None,
                max_bytes: None,
                size: 0,
            }),
            Some(path) => {
                let file = OpenOptions::new().create(true).append(true).open(path)?;
                let size = file.metadata().map(|m| m.len()).unwrap_or(0);
                Some(LogSink {
                    writer: Box::new(file),
                    path: Some(PathBuf::from(path)),
                    max_bytes: max_bytes.filter(|&m| m > 0),
                    size,
                })
            }
        };
        Ok(Logger {
            component: component.to_string(),
            level,
            sink: sink.map(Mutex::new),
        })
    }

    /// Whether records at `level` would be written.
    pub fn enabled(&self, level: LogLevel) -> bool {
        self.sink.is_some() && level >= self.level
    }

    /// Writes one structured record. `fields` are appended after the
    /// standard keys in the given order; `trace_id` is included when
    /// present so a job can be grepped across daemons.
    pub fn event(
        &self,
        level: LogLevel,
        event: &str,
        trace_id: Option<&str>,
        fields: &[(&str, Value)],
    ) {
        if !self.enabled(level) {
            return;
        }
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut pairs = vec![
            ("ts_ms".to_string(), Value::UInt(ts_ms)),
            ("level".to_string(), Value::Str(level.name().to_string())),
            (
                "component".to_string(),
                Value::Str(self.component.clone()),
            ),
            ("event".to_string(), Value::Str(event.to_string())),
        ];
        if let Some(id) = trace_id {
            pairs.push(("trace_id".to_string(), Value::Str(id.to_string())));
        }
        for (k, v) in fields {
            pairs.push(((*k).to_string(), v.clone()));
        }
        let line = gencache_bench::value_to_json(&Value::Object(pairs));
        if let Some(sink) = &self.sink {
            sink.lock().unwrap().write_line(&line);
        }
    }
}

/// Builder for a Prometheus text exposition document.
///
/// Counters and gauges are emitted with `# HELP` / `# TYPE` headers;
/// [`Log2Histogram`]s become cumulative `_bucket{le=…}` series where each
/// `le` is the inclusive top of a power-of-two bucket.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty document.
    pub fn new() -> PromText {
        PromText::default()
    }

    fn header(&mut self, name: &str, kind: &str, help: &str) {
        self.out.push_str(&format!("# HELP {name} {help}\n"));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// Appends a monotonically increasing counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, "counter", help);
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// Appends a point-in-time gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, "gauge", help);
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// Appends a floating-point gauge (rates, ratios).
    pub fn gauge_f64(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, "gauge", help);
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// Appends one gauge series with one sample per labelled row.
    /// `rows` pairs a preformatted label body (e.g. `addr="host:port"`)
    /// with the sample value.
    pub fn gauge_rows(&mut self, name: &str, help: &str, rows: &[(String, u64)]) {
        if rows.is_empty() {
            return;
        }
        self.header(name, "gauge", help);
        for (labels, value) in rows {
            self.out.push_str(&format!("{name}{{{labels}}} {value}\n"));
        }
    }

    /// Appends a [`Log2Histogram`] as a Prometheus histogram. `sum` is
    /// the exact sum of recorded values (the histogram itself only keeps
    /// bucket counts).
    pub fn histogram(&mut self, name: &str, help: &str, hist: &Log2Histogram, sum: u64) {
        self.header(name, "histogram", help);
        let mut cumulative = 0u64;
        for (b, &count) in hist.counts().iter().enumerate() {
            cumulative += count;
            let (_, hi) = Log2Histogram::bucket_range(b);
            self.out
                .push_str(&format!("{name}_bucket{{le=\"{hi}\"}} {cumulative}\n"));
        }
        self.out
            .push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", hist.total()));
        self.out.push_str(&format!("{name}_sum {sum}\n"));
        self.out.push_str(&format!("{name}_count {}\n", hist.total()));
    }

    /// Finishes the document.
    pub fn into_string(self) -> String {
        self.out
    }
}

/// Escapes a Prometheus label value (backslash, quote, newline).
pub fn prom_label_escape(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_hex() {
        let a = new_trace_id();
        let b = new_trace_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn ring_is_bounded_and_filters_by_trace() {
        let tel = Telemetry::new("serve:test", 4, Logger::disabled());
        let t0 = Instant::now();
        for i in 0..6 {
            tel.span(&format!("id-{i}"), "accept", t0).unwrap().end();
        }
        assert!(tel.spans_for("id-0").is_empty(), "oldest spans evicted");
        assert!(tel.spans_for("id-1").is_empty(), "oldest spans evicted");
        let last = tel.spans_for("id-5");
        assert_eq!(last.len(), 1);
        assert_eq!(last[0].node, "serve:test");
        assert_eq!(last[0].outcome, "ok");
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let tel = Telemetry::disabled();
        assert!(!tel.tracing());
        assert!(tel.span("id", "accept", Instant::now()).is_none());
        assert!(tel.spans_for("id").is_empty());
    }

    #[test]
    fn span_value_roundtrip() {
        let span = Span {
            trace_id: "abc123".to_string(),
            node: "serve:127.0.0.1:1".to_string(),
            stage: "ingest".to_string(),
            start_us: 42,
            dur_us: 7,
            outcome: "ok".to_string(),
            lines: Some(10),
            bytes: Some(999),
        };
        let back = Span::from_value(&span.to_value()).unwrap();
        assert_eq!(back, span);
        let minimal = Span {
            lines: None,
            bytes: None,
            ..span
        };
        let back = Span::from_value(&minimal.to_value()).unwrap();
        assert_eq!(back, minimal);
    }

    #[test]
    fn logger_writes_filtered_jsonl() {
        let dir = std::env::temp_dir().join(format!("gencache-log-{}", new_trace_id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.log");
        let logger = Logger::open("serve", path.to_str(), LogLevel::Info).unwrap();
        assert!(logger.enabled(LogLevel::Warn));
        assert!(!logger.enabled(LogLevel::Debug));
        logger.event(LogLevel::Debug, "dropped", None, &[]);
        logger.event(
            LogLevel::Info,
            "job_admitted",
            Some("deadbeef"),
            &[("queue_depth", Value::UInt(3))],
        );
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "debug record must be filtered: {text}");
        assert!(lines[0].contains("\"event\":\"job_admitted\""));
        assert!(lines[0].contains("\"trace_id\":\"deadbeef\""));
        assert!(lines[0].contains("\"queue_depth\":3"));
        serde_json::value_from_str(lines[0]).expect("record is valid JSON");
    }

    #[test]
    fn capped_logger_rotates_once_to_dot_one() {
        let dir = std::env::temp_dir().join(format!("gencache-logrot-{}", new_trace_id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.log");
        let rotated = dir.join("serve.log.1");
        // Small cap: every record is ~90 bytes, so a 256-byte cap forces
        // several rotations across 12 records.
        let logger =
            Logger::open_capped("serve", path.to_str(), LogLevel::Info, Some(256)).unwrap();
        for i in 0..12 {
            logger.event(LogLevel::Info, "tick", None, &[("i", Value::UInt(i))]);
        }
        let live = std::fs::metadata(&path).unwrap().len();
        assert!(live <= 256, "live log exceeded the cap: {live} bytes");
        assert!(rotated.exists(), "no rotated generation written");
        let old = std::fs::metadata(&rotated).unwrap().len();
        assert!(old <= 256, "rotated log exceeded the cap: {old} bytes");
        // Only one rotated generation ever exists.
        assert!(!dir.join("serve.log.2").exists());
        // Every surviving line is intact JSON — rotation never splits a
        // record.
        for file in [&path, &rotated] {
            let text = std::fs::read_to_string(file).unwrap();
            for line in text.lines() {
                serde_json::value_from_str(line).expect("rotated record is valid JSON");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncapped_logger_never_rotates() {
        let dir = std::env::temp_dir().join(format!("gencache-logrot-{}", new_trace_id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.log");
        let logger = Logger::open("serve", path.to_str(), LogLevel::Info).unwrap();
        for i in 0..50 {
            logger.event(LogLevel::Info, "tick", None, &[("i", Value::UInt(i))]);
        }
        assert!(!dir.join("serve.log.1").exists(), "default must not rotate");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap().lines().count(),
            50
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let mut hist = Log2Histogram::new();
        for v in [0u64, 1, 1, 3, 900] {
            hist.record(v);
        }
        let mut p = PromText::new();
        p.histogram("job_latency_us", "Job latency.", &hist, 905);
        let text = p.into_string();
        assert!(text.contains("# TYPE job_latency_us histogram"));
        assert!(text.contains("job_latency_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("job_latency_us_bucket{le=\"1\"} 3\n"));
        assert!(text.contains("job_latency_us_bucket{le=\"3\"} 4\n"));
        assert!(text.contains("job_latency_us_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("job_latency_us_sum 905\n"));
        assert!(text.contains("job_latency_us_count 5\n"));
        // Cumulative counts never decrease across bucket lines.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last, "bucket counts must be cumulative: {text}");
            last = n;
        }
    }

    #[test]
    fn prom_label_escaping() {
        assert_eq!(prom_label_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
