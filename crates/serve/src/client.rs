//! Client-side protocol driver: connect, stream, read one reply.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream};

use std::time::Instant;

use crate::proto::{
    encode_end, encode_fetch, encode_job, encode_metrics_request, encode_ping,
    encode_route_request, encode_shards_request, encode_stats_request, encode_trace_request,
    encode_watch_request, is_control_line, parse_reply, parse_request, JobSpec, Reply, Request,
    WatchRow,
};
use crate::retry::RetryPolicy;
use crate::signal;
use crate::telemetry::{new_trace_id, Logger, Span, Telemetry};

/// A handle on one daemon address. Each call opens its own connection —
/// the protocol is one request–reply conversation per connection.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Option<std::time::Duration>,
}

impl Client {
    /// A client for the daemon at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            timeout: None,
        }
    }

    /// Like [`new`](Client::new), but every socket read carries
    /// `timeout` — how the fleet router keeps a hung shard from pinning
    /// a dispatch thread. Replies slower than the timeout surface as
    /// `WouldBlock`/`TimedOut` errors, so budget for the job, not just
    /// the network.
    pub fn with_timeout(addr: impl Into<String>, timeout: std::time::Duration) -> Self {
        Client {
            addr: addr.into(),
            timeout: Some(timeout),
        }
    }

    fn connect(&self) -> io::Result<TcpStream> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(self.timeout)?;
        Ok(stream)
    }

    /// Submits a simulation job: the job header, then every line of the
    /// export read from `reader`, then the `end` frame. Returns the
    /// server's reply (`Result`, `Busy`, or `Error`).
    ///
    /// A mid-upload write failure is tolerated: the server may already
    /// have shed the job with `busy` or failed it with `error`, so the
    /// client switches to reading the reply instead of propagating the
    /// broken pipe.
    ///
    /// # Errors
    ///
    /// Returns connection failures, local read failures, and a protocol
    /// violation in the reply.
    pub fn submit(&self, reader: impl BufRead, spec: &JobSpec) -> io::Result<Reply> {
        let stream = self.connect()?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        let upload = || -> io::Result<()> {
            writeln!(writer, "{}", encode_job(spec))?;
            let mut lines = 0u64;
            for line in reader.lines() {
                let line = line?;
                writeln!(writer, "{line}")?;
                lines += 1;
            }
            writeln!(writer, "{}", encode_end(lines))?;
            writer.flush()
        };
        match upload() {
            Ok(()) => {}
            // The server may have closed the upload side after an early
            // busy/error reply; go read it.
            Err(e)
                if e.kind() == io::ErrorKind::BrokenPipe
                    || e.kind() == io::ErrorKind::ConnectionReset
                    || e.kind() == io::ErrorKind::ConnectionAborted => {}
            Err(e) => return Err(e),
        }
        stream.shutdown(Shutdown::Write).ok();
        read_reply(stream)
    }

    /// Like [`submit`](Client::submit), but retries `busy` replies under
    /// `policy` (capped exponential backoff, deterministic delays). The
    /// upload must be re-sent on every attempt, so the caller provides a
    /// factory that reopens the export; anything other than `busy` —
    /// success, error, connection failure — returns immediately.
    ///
    /// # Errors
    ///
    /// As [`submit`](Client::submit); a still-busy server after the last
    /// attempt returns the final [`Reply::Busy`] for the caller to
    /// report.
    pub fn submit_with_retry<R: BufRead>(
        &self,
        mut open: impl FnMut() -> io::Result<R>,
        spec: &JobSpec,
        policy: &RetryPolicy,
    ) -> io::Result<Reply> {
        let mut attempt = 0u32;
        loop {
            let reply = self.submit(open()?, spec)?;
            match reply {
                Reply::Busy { .. } if attempt < policy.retries => {
                    std::thread::sleep(policy.delay(attempt));
                    attempt += 1;
                }
                other => return Ok(other),
            }
        }
    }

    /// Like [`submit`](Client::submit), but stamps a `trace_id` into the
    /// job frame (generating one when the spec has none) and records
    /// client-side spans — `upload` (lines/bytes sent), `reply_wait`,
    /// and the whole-`job` envelope. The spans' `start_us` offsets are
    /// relative to this call's start, node `client`.
    ///
    /// # Errors
    ///
    /// As [`submit`](Client::submit).
    pub fn submit_with_spans(
        &self,
        reader: impl BufRead,
        spec: &JobSpec,
    ) -> io::Result<(Reply, Vec<Span>)> {
        let mut spec = spec.clone();
        let trace_id = match &spec.trace_id {
            Some(id) => id.clone(),
            None => {
                let id = new_trace_id();
                spec.trace_id = Some(id.clone());
                id
            }
        };
        let tel = Telemetry::new("client", 16, Logger::disabled());
        let job_started = Instant::now();
        let stream = self.connect()?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut sent_lines = 0u64;
        let mut sent_bytes = 0u64;
        let upload_started = Instant::now();
        let uploaded = (|| -> io::Result<()> {
            writeln!(writer, "{}", encode_job(&spec))?;
            for line in reader.lines() {
                let line = line?;
                sent_bytes += line.len() as u64 + 1;
                writeln!(writer, "{line}")?;
                sent_lines += 1;
            }
            writeln!(writer, "{}", encode_end(sent_lines))?;
            writer.flush()
        })();
        match uploaded {
            Ok(()) => {}
            Err(e)
                if e.kind() == io::ErrorKind::BrokenPipe
                    || e.kind() == io::ErrorKind::ConnectionReset
                    || e.kind() == io::ErrorKind::ConnectionAborted => {}
            Err(e) => return Err(e),
        }
        if let Some(span) = tel.span(&trace_id, "upload", upload_started) {
            span.lines(sent_lines).bytes(sent_bytes).end();
        }
        stream.shutdown(Shutdown::Write).ok();
        let wait_started = Instant::now();
        let reply = read_reply(stream)?;
        if let Some(span) = tel.span(&trace_id, "reply_wait", wait_started) {
            span.end();
        }
        let outcome = match &reply {
            Reply::Busy { .. } => "busy".to_string(),
            Reply::Error { message } => format!("error: {message}"),
            _ => "ok".to_string(),
        };
        if let Some(span) = tel.span(&trace_id, "job", job_started) {
            span.outcome(&outcome).end();
        }
        Ok((reply, tel.spans_for(&trace_id)))
    }

    /// Requests the daemon's counter snapshot.
    ///
    /// # Errors
    ///
    /// Returns connection failures and protocol violations.
    pub fn stats(&self) -> io::Result<Reply> {
        self.simple_request(&encode_stats_request())
    }

    /// Requests the retained span set for `trace_id`. A fleet router
    /// answers with its own spans stitched together with every live
    /// shard's.
    ///
    /// # Errors
    ///
    /// Returns connection failures and protocol violations.
    pub fn trace(&self, trace_id: &str) -> io::Result<Reply> {
        self.simple_request(&encode_trace_request(trace_id))
    }

    /// Requests the daemon's metrics in Prometheus text exposition
    /// format.
    ///
    /// # Errors
    ///
    /// Returns connection failures and protocol violations.
    pub fn metrics(&self) -> io::Result<Reply> {
        self.simple_request(&encode_metrics_request())
    }

    /// Requests a fleet router's shard table. Plain daemons answer with
    /// an `error` reply (unknown request type).
    ///
    /// # Errors
    ///
    /// Returns connection failures and protocol violations.
    pub fn shards(&self) -> io::Result<Reply> {
        self.simple_request(&encode_shards_request())
    }

    /// Asks a fleet router which shard `bench` routes to.
    ///
    /// # Errors
    ///
    /// Returns connection failures and protocol violations.
    pub fn route(&self, bench: &str) -> io::Result<Reply> {
        self.simple_request(&encode_route_request(bench))
    }

    /// Pings the daemon; `hold_ms > 0` keeps a worker slot busy for that
    /// long before the `pong` — the deterministic pool-filler for
    /// backpressure tests.
    ///
    /// # Errors
    ///
    /// Returns connection failures and protocol violations.
    pub fn ping(&self, hold_ms: u64) -> io::Result<Reply> {
        self.simple_request(&encode_ping(hold_ms))
    }

    fn simple_request(&self, line: &str) -> io::Result<Reply> {
        let stream = self.connect()?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        writeln!(writer, "{line}")?;
        writer.flush()?;
        stream.shutdown(Shutdown::Write).ok();
        read_reply(stream)
    }

    /// Subscribes to the daemon's `watch` stream: one snapshot every
    /// `interval_ms` until `count` snapshots arrive (0 = unbounded).
    /// `on_snapshot` sees each frame's `(node, seq, rows)` and returns
    /// `false` to stop early (the client just hangs up — the stream owns
    /// no server-side worker). Returns the number of snapshots received.
    ///
    /// Interrupted reads are retried, and both an interrupt and a read
    /// timeout return cleanly once a process shutdown signal is pending
    /// — so a Ctrl-C'd dashboard never dies mid-frame with an error.
    ///
    /// # Errors
    ///
    /// Returns connection failures, an `error` reply, a read timeout
    /// with no shutdown pending, a protocol violation, or a stream that
    /// ends without its closing `end` frame.
    pub fn watch(
        &self,
        interval_ms: u64,
        count: u64,
        mut on_snapshot: impl FnMut(&str, u64, &[WatchRow]) -> bool,
    ) -> io::Result<u64> {
        let stream = self.connect()?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        writeln!(writer, "{}", encode_watch_request(interval_ms, count))?;
        writer.flush()?;
        stream.shutdown(Shutdown::Write).ok();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        let mut received = 0u64;
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "watch stream ended without an end frame",
                    ));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    if signal::shutdown_requested() {
                        return Ok(received);
                    }
                    continue;
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if signal::shutdown_requested() {
                        return Ok(received);
                    }
                    return Err(e);
                }
                Err(e) => return Err(e),
                Ok(_) => {}
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            // `watch` names both a request and a reply frame, so replies
            // are tried first; only the terminating `end` falls through.
            match parse_reply(trimmed) {
                Ok(Reply::Watch { node, seq, rows }) => {
                    received += 1;
                    if !on_snapshot(&node, seq, &rows) {
                        return Ok(received);
                    }
                }
                Ok(Reply::Error { message }) => return Err(io::Error::other(message)),
                Ok(other) => {
                    return Err(io::Error::other(format!(
                        "unexpected frame in watch stream: {other:?}"
                    )));
                }
                Err(_) => match parse_request(trimmed) {
                    Ok(Request::End { .. }) => return Ok(received),
                    _ => {
                        return Err(io::Error::other(format!(
                            "unexpected frame in watch stream: {trimmed}"
                        )));
                    }
                },
            }
        }
    }

    /// One-shot watch: samples the daemon's service rates over a single
    /// `interval_ms` window and returns that snapshot's rows. This is
    /// how the fleet router collects each shard's row per tick.
    ///
    /// # Errors
    ///
    /// As [`watch`](Client::watch), plus an empty stream.
    pub fn watch_once(&self, interval_ms: u64) -> io::Result<Vec<WatchRow>> {
        let mut out: Vec<WatchRow> = Vec::new();
        self.watch(interval_ms, 1, |_, _, rows| {
            out = rows.to_vec();
            false
        })?;
        if out.is_empty() {
            return Err(io::Error::other("watch returned no snapshot"));
        }
        Ok(out)
    }

    /// Asks the daemon to record `bench` at `scale` server-side and
    /// streams the resulting v2 export into `out`. Returns the number of
    /// export lines written.
    ///
    /// # Errors
    ///
    /// Returns connection failures, a `busy`/`error` reply, a line-count
    /// mismatch against the closing `end` frame, or a stream that ends
    /// without one.
    pub fn fetch(&self, bench: &str, scale: u64, mut out: impl Write) -> io::Result<u64> {
        let stream = self.connect()?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        writeln!(writer, "{}", encode_fetch(bench, scale))?;
        writer.flush()?;
        stream.shutdown(Shutdown::Write).ok();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        let mut forwarded = 0u64;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(io::Error::other(
                    "download ended without an end frame (truncated)",
                ));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if is_control_line(trimmed) {
                return match parse_request(trimmed) {
                    Ok(Request::End { lines }) if lines == forwarded => Ok(forwarded),
                    Ok(Request::End { lines }) => Err(io::Error::other(format!(
                        "download truncated: server sent {lines} lines, received {forwarded}"
                    ))),
                    _ => match parse_reply(trimmed) {
                        Ok(Reply::Error { message }) => Err(io::Error::other(message)),
                        Ok(Reply::Busy { queue_depth }) => Err(io::Error::other(format!(
                            "server busy (queue depth {queue_depth})"
                        ))),
                        _ => Err(io::Error::other(format!(
                            "unexpected frame in download: {trimmed}"
                        ))),
                    },
                };
            }
            out.write_all(trimmed.as_bytes())?;
            out.write_all(b"\n")?;
            forwarded += 1;
        }
    }
}

fn read_reply(stream: TcpStream) -> io::Result<Reply> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection without a reply",
        ));
    }
    parse_reply(line.trim_end_matches(['\r', '\n'])).map_err(io::Error::other)
}
