//! The daemon: accept loop, per-connection protocol, and job execution.
//!
//! Memory discipline: a connection thread never holds more than one
//! protocol line plus the bounded ingest channel's in-flight window.
//! Export lines flow socket → bounded channel → [`StreamIngest`], which
//! keeps only the reconstructed frontend traces — peak memory is
//! O(channel depth + resident trace set), never O(stream length). When
//! the worker stalls, the channel fills, the connection thread blocks in
//! `send`, the socket's receive window closes, and backpressure reaches
//! the client as plain TCP flow control. Queue-level backpressure is
//! separate: admission uses a non-blocking submit, and a full queue is
//! answered with a `busy` frame (HTTP 429 in spirit) instead of an
//! ever-growing backlog.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gencache_bench::ingest::{
    render_sim_tables, resolve_sim_specs, run_sim_job, sim_metrics_doc, SimJobOptions, StreamIngest,
};
use gencache_bench::stream_events_to;
use gencache_sim::par::effective_jobs;
use gencache_sim::stream::{bounded, Receiver, Sender};
use gencache_sim::{RecorderOptions, StreamedRecording, DEFAULT_STREAM_DEPTH};
use gencache_workloads::benchmark;
use serde::Value;

use crate::pool::{SubmitError, WorkerPool};
use crate::proto::{
    encode_busy, encode_end, encode_error, encode_metrics, encode_pong, encode_result,
    encode_stats, encode_trace, encode_watch, is_control_line, parse_request, JobSpec, Request,
    WatchRow,
};
use crate::signal;
use crate::stats::{Gauges, ServerStats};
use crate::telemetry::{new_trace_id, LogLevel, Logger, PromText, Span, Telemetry};

/// How a [`Server`] is sized and bounded.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads; `None` defers to `GENCACHE_JOBS`, then the
    /// machine's available parallelism.
    pub workers: Option<usize>,
    /// Pending-job queue depth; `None` means twice the worker count.
    pub queue_depth: Option<usize>,
    /// Bounded ingest/download channel depth, in lines.
    pub channel_depth: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Default per-job wall-clock budget in milliseconds (0 = none);
    /// a job's own `deadline_ms` overrides it.
    pub default_deadline_ms: u64,
    /// Structured log target: `None`/`"none"` disables, `"-"` is
    /// stderr, anything else is a file path.
    pub log: Option<String>,
    /// Minimum level a record needs to be written.
    pub log_level: LogLevel,
    /// Rotate a file log once it would exceed this many bytes (renamed
    /// to `<path>.1`, one generation kept). `None` grows without bound.
    pub log_max_bytes: Option<u64>,
    /// Spans retained in the trace ring; 0 disables tracing entirely.
    pub trace_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: None,
            queue_depth: None,
            channel_depth: DEFAULT_STREAM_DEPTH,
            read_timeout: Duration::from_secs(10),
            default_deadline_ms: 0,
            log: None,
            log_level: LogLevel::Warn,
            log_max_bytes: None,
            trace_capacity: crate::telemetry::DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// Everything a connection thread needs, shared behind one `Arc`.
struct Ctx {
    pool: WorkerPool,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    channel_depth: usize,
    read_timeout: Duration,
    default_deadline_ms: u64,
    telemetry: Arc<Telemetry>,
}

impl Ctx {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::shutdown_requested()
    }

    fn gauges(&self) -> Gauges {
        Gauges {
            queue_depth: self.pool.queue_len(),
            workers: self.pool.workers(),
            panics: self.pool.panics(),
            in_flight: self.pool.active(),
            uptime_ms: self.telemetry.uptime_ms(),
        }
    }
}

/// The simulation service daemon.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    ctx: Arc<Ctx>,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("pool", &self.pool)
            .field("channel_depth", &self.channel_depth)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listener and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let workers = effective_jobs(config.workers);
        let queue_depth = config.queue_depth.unwrap_or(workers * 2);
        let node = listener
            .local_addr()
            .map(|a| format!("serve:{a}"))
            .unwrap_or_else(|_| "serve".to_string());
        let logger = Logger::open_capped(
            "gencache-serve",
            config.log.as_deref(),
            config.log_level,
            config.log_max_bytes,
        )?;
        let ctx = Ctx {
            pool: WorkerPool::new(workers, queue_depth),
            stats: Arc::new(ServerStats::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
            channel_depth: config.channel_depth.max(1),
            read_timeout: config.read_timeout,
            default_deadline_ms: config.default_deadline_ms,
            telemetry: Arc::new(Telemetry::new(&node, config.trace_capacity, logger)),
        };
        Ok(Server {
            listener,
            ctx: Arc::new(ctx),
        })
    }

    /// The bound address (resolves the ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The daemon's counters (live; snapshot via
    /// [`ServerStats::snapshot`]).
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.ctx.stats)
    }

    /// A flag that stops the accept loop when set — how in-process tests
    /// shut the server down without a signal.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.ctx.shutdown)
    }

    /// Serves until the shutdown flag or a SIGTERM/SIGINT arrives, then
    /// drains: stop accepting, join live connections (bounded by the
    /// read timeout plus job deadlines), drain and join the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop failures other than `WouldBlock`.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        loop {
            if self.ctx.draining() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    conns.retain(|h| !h.is_finished());
                    let ctx = Arc::clone(&self.ctx);
                    let handle = std::thread::Builder::new()
                        .name("gencache-conn".to_string())
                        .spawn(move || {
                            if let Err(e) = handle_connection(stream, &ctx) {
                                // A vanished client is routine, not a
                                // daemon failure.
                                if e.kind() != io::ErrorKind::BrokenPipe
                                    && e.kind() != io::ErrorKind::ConnectionReset
                                {
                                    ctx.telemetry.log().event(
                                        LogLevel::Error,
                                        "connection_error",
                                        None,
                                        &[("message", Value::Str(e.to_string()))],
                                    );
                                }
                            }
                        })
                        .expect("spawn connection thread");
                    conns.push(handle);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.ctx.telemetry.log().event(
            LogLevel::Info,
            "drain_start",
            None,
            &[(
                "in_flight",
                Value::UInt(self.ctx.pool.active() + self.ctx.pool.queue_len() as u64),
            )],
        );
        for handle in conns {
            let _ = handle.join();
        }
        self.ctx.pool.shutdown();
        self.ctx
            .telemetry
            .log()
            .event(LogLevel::Info, "drain_finish", None, &[]);
        Ok(())
    }
}

/// What flows from the connection thread to the ingesting worker.
enum IngestItem {
    /// One raw export line.
    Line(String),
    /// The client's `end` frame: claimed line count for integrity.
    End {
        lines: u64,
    },
    /// The upload failed (read error, bad frame); the worker must not
    /// treat what it has as a complete export.
    Abort(String),
}

/// A finished job's reply payload, handed back to the connection thread.
struct ResultParts {
    doc: Value,
    table: String,
    benches: u64,
    specs: u64,
    elapsed_us: u64,
}

type JobOutcome = Result<ResultParts, String>;

fn send_line(writer: &mut impl Write, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Reads and discards the rest of an upload after an early reply
/// (`busy`/`error`), so closing the socket cannot RST the reply out of
/// the client's receive buffer. Bounded: stops at EOF, any read error
/// (including the read timeout), or a 64 MiB cap.
pub(crate) fn drain_discard(reader: &mut impl Read) {
    let mut buf = [0u8; 8192];
    let mut total = 0u64;
    while total < 64 * 1024 * 1024 {
        match reader.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => total += n as u64,
        }
    }
}

fn handle_connection(stream: TcpStream, ctx: &Ctx) -> io::Result<()> {
    ServerStats::bump(&ctx.stats.connections);
    stream.set_read_timeout(Some(ctx.read_timeout))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut first = String::new();
    if reader.read_line(&mut first)? == 0 {
        return Ok(()); // connected and left — nothing to do
    }
    let line = first.trim_end_matches(['\r', '\n']);
    if !is_control_line(line) {
        return send_line(
            &mut writer,
            &encode_error("expected a control frame ({\"type\":...}) first"),
        );
    }
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => return send_line(&mut writer, &encode_error(&e)),
    };
    match request {
        Request::Stats => {
            let snapshot = ctx.stats.snapshot(&ctx.gauges());
            send_line(&mut writer, &encode_stats(snapshot))
        }
        Request::Trace { trace_id } => {
            let spans: Vec<Value> = ctx
                .telemetry
                .spans_for(&trace_id)
                .iter()
                .map(Span::to_value)
                .collect();
            send_line(&mut writer, &encode_trace(&trace_id, Value::Array(spans)))
        }
        Request::Metrics => send_line(&mut writer, &encode_metrics(&server_metrics(ctx))),
        // Watch runs right here on the connection thread — a slow or
        // idle dashboard never occupies a worker slot.
        Request::Watch { interval_ms, count } => {
            handle_watch(ctx, &mut writer, interval_ms, count)
        }
        Request::End { .. } => send_line(
            &mut writer,
            &encode_error("end frame outside a job upload"),
        ),
        // Fleet-only frames: a plain daemon is not a router.
        Request::Shards | Request::Route { .. } => send_line(
            &mut writer,
            &encode_error("not a fleet router; ask a gencache-shard daemon"),
        ),
        Request::Ping { hold_ms } => handle_ping(ctx, &mut writer, hold_ms),
        Request::Job(spec) => {
            if ctx.draining() {
                return send_line(
                    &mut writer,
                    &encode_error("shutting down; not accepting new jobs"),
                );
            }
            handle_job(ctx, &mut reader, &mut writer, spec)
        }
        Request::Fetch { bench, scale } => {
            if ctx.draining() {
                return send_line(
                    &mut writer,
                    &encode_error("shutting down; not accepting new jobs"),
                );
            }
            handle_fetch(ctx, &mut writer, &bench, scale)
        }
    }
}

/// Renders the daemon's counters, gauges, and latency histogram as a
/// Prometheus text exposition document.
fn server_metrics(ctx: &Ctx) -> String {
    let load = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
    let mut p = PromText::new();
    p.gauge(
        "gencache_uptime_ms",
        "Milliseconds since the daemon started.",
        ctx.telemetry.uptime_ms(),
    );
    p.gauge(
        "gencache_workers",
        "Worker threads in the pool.",
        ctx.pool.workers() as u64,
    );
    p.gauge(
        "gencache_queue_depth",
        "Jobs queued, not yet running.",
        ctx.pool.queue_len() as u64,
    );
    p.gauge(
        "gencache_in_flight_jobs",
        "Jobs currently executing on a worker.",
        ctx.pool.active(),
    );
    p.counter(
        "gencache_connections_total",
        "Connections accepted.",
        load(&ctx.stats.connections),
    );
    p.counter(
        "gencache_jobs_accepted_total",
        "Jobs admitted to the queue.",
        load(&ctx.stats.jobs_accepted),
    );
    p.counter(
        "gencache_jobs_completed_total",
        "Jobs finished successfully.",
        load(&ctx.stats.jobs_completed),
    );
    p.counter(
        "gencache_jobs_rejected_total",
        "Jobs shed with a busy reply.",
        load(&ctx.stats.jobs_rejected),
    );
    p.counter(
        "gencache_jobs_failed_total",
        "Jobs that ended in an error reply.",
        load(&ctx.stats.jobs_failed),
    );
    p.counter(
        "gencache_jobs_panicked_total",
        "Jobs that panicked mid-run.",
        ctx.pool.panics(),
    );
    p.counter(
        "gencache_bytes_ingested_total",
        "Export bytes ingested across job uploads.",
        load(&ctx.stats.bytes_ingested),
    );
    p.counter(
        "gencache_lines_served_total",
        "Export lines streamed back by fetch downloads.",
        load(&ctx.stats.lines_served),
    );
    p.gauge_f64(
        "gencache_window_miss_rate",
        "Final-window miss rate of the most recent windowed job.",
        ctx.stats.window_miss_rate(),
    );
    p.counter(
        "gencache_drift_events_total",
        "Drift annotations emitted across windowed jobs.",
        load(&ctx.stats.drift_events),
    );
    let (hist, sum) = ctx.stats.latency();
    p.histogram(
        "gencache_job_latency_us",
        "Completed job wall-clock latency in microseconds.",
        &hist,
        sum,
    );
    p.into_string()
}

/// Assembles this daemon's current [`WatchRow`]: counter deltas since
/// the previous tick become rates, gauges are read point-in-time, and
/// the latency quantiles come from the cumulative job histogram.
fn watch_row(ctx: &Ctx, prev: &mut (u64, u64, Instant)) -> WatchRow {
    let load = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
    let jobs = load(&ctx.stats.jobs_completed);
    let shed = load(&ctx.stats.jobs_rejected);
    let (prev_jobs, prev_shed, prev_at) = *prev;
    let window = prev_at.elapsed();
    let secs = window.as_secs_f64().max(1e-9);
    *prev = (jobs, shed, Instant::now());
    let (hist, _) = ctx.stats.latency();
    WatchRow {
        node: ctx.telemetry.node().to_string(),
        uptime_ms: ctx.telemetry.uptime_ms(),
        window_ms: window.as_millis() as u64,
        jobs_per_sec: jobs.saturating_sub(prev_jobs) as f64 / secs,
        shed_per_sec: shed.saturating_sub(prev_shed) as f64 / secs,
        in_flight: ctx.pool.active(),
        queue_depth: ctx.pool.queue_len() as u64,
        p50_us: hist.quantile(0.5),
        p99_us: hist.quantile(0.99),
        jobs_total: jobs,
        window_miss_rate: ctx.stats.window_miss_rate(),
        drift_events: load(&ctx.stats.drift_events),
    }
}

/// Streams `watch` snapshots every `interval_ms` until `count` frames
/// have been sent (0 = unbounded), the client hangs up, or the daemon
/// starts draining — then closes the stream with an `end` frame. Runs
/// on the connection thread; the sleep is chopped into short slices so
/// a drain is noticed within ~100ms.
fn handle_watch(
    ctx: &Ctx,
    writer: &mut impl Write,
    interval_ms: u64,
    count: u64,
) -> io::Result<()> {
    let interval = Duration::from_millis(interval_ms.clamp(50, 60_000));
    let mut prev = (
        ctx.stats.jobs_completed.load(Ordering::Relaxed),
        ctx.stats.jobs_rejected.load(Ordering::Relaxed),
        Instant::now(),
    );
    let mut sent = 0u64;
    loop {
        // One full interval elapses before each snapshot, so every
        // frame's rates cover a real window.
        let tick_end = Instant::now() + interval;
        while Instant::now() < tick_end {
            if ctx.draining() {
                return send_line(writer, &encode_end(sent));
            }
            let left = tick_end.saturating_duration_since(Instant::now());
            std::thread::sleep(left.min(Duration::from_millis(100)));
        }
        let row = watch_row(ctx, &mut prev);
        // A failed write means the dashboard hung up; nothing to tear
        // down — the stream owns no worker or channel.
        send_line(
            writer,
            &encode_watch(ctx.telemetry.node(), sent, &[row]),
        )?;
        sent += 1;
        if count > 0 && sent >= count {
            return send_line(writer, &encode_end(sent));
        }
    }
}

fn handle_ping(ctx: &Ctx, writer: &mut impl Write, hold_ms: u64) -> io::Result<()> {
    let (done_tx, mut done_rx) = bounded::<()>(1);
    let job = Box::new(move || {
        if hold_ms > 0 {
            std::thread::sleep(Duration::from_millis(hold_ms));
        }
        let _ = done_tx.send(());
    });
    match ctx.pool.try_submit(job) {
        Ok(()) => {
            ServerStats::bump(&ctx.stats.jobs_accepted);
            done_rx.recv();
            ServerStats::bump(&ctx.stats.jobs_completed);
            send_line(writer, &encode_pong())
        }
        Err((_, SubmitError::Full)) => {
            ServerStats::bump(&ctx.stats.jobs_rejected);
            send_line(writer, &encode_busy(ctx.pool.queue_len() as u64))
        }
        Err((_, SubmitError::Closed)) => send_line(
            writer,
            &encode_error("shutting down; not accepting new jobs"),
        ),
    }
}

fn handle_job(
    ctx: &Ctx,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    mut spec: JobSpec,
) -> io::Result<()> {
    // Every job gets a trace id: the client normally stamps one; a bare
    // frame gets a server-generated id so its spans are still findable.
    let trace_id = match &spec.trace_id {
        Some(id) => id.clone(),
        None => {
            let id = new_trace_id();
            spec.trace_id = Some(id.clone());
            id
        }
    };
    let deadline_ms = spec.deadline_ms.unwrap_or(ctx.default_deadline_ms);
    let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
    let (lines_tx, lines_rx) = bounded::<IngestItem>(ctx.channel_depth);
    let (reply_tx, mut reply_rx) = bounded::<JobOutcome>(1);
    // The deadline clock starts at admission, not at worker pickup —
    // time spent queued behind the bounded pool counts against the
    // budget, so a deadline'd job cannot wait unboundedly.
    let admitted = Instant::now();
    let tel = Arc::clone(&ctx.telemetry);
    let stats = Arc::clone(&ctx.stats);
    let job_trace = trace_id.clone();
    let job = Box::new(move || {
        run_job(
            &spec, lines_rx, &reply_tx, deadline, admitted, &tel, &stats, &job_trace,
        );
    });
    match ctx.pool.try_submit(job) {
        Err((_, SubmitError::Full)) => {
            ServerStats::bump(&ctx.stats.jobs_rejected);
            let depth = ctx.pool.queue_len() as u64;
            if let Some(sp) = ctx.telemetry.span(&trace_id, "accept", admitted) {
                sp.outcome("busy").end();
            }
            ctx.telemetry.log().event(
                LogLevel::Warn,
                "job_shed",
                Some(&trace_id),
                &[("queue_depth", Value::UInt(depth))],
            );
            send_line(writer, &encode_busy(depth))?;
            drain_discard(reader);
            return Ok(());
        }
        Err((_, SubmitError::Closed)) => {
            if let Some(sp) = ctx.telemetry.span(&trace_id, "accept", admitted) {
                sp.outcome("error: shutting down").end();
            }
            return send_line(
                writer,
                &encode_error("shutting down; not accepting new jobs"),
            );
        }
        Ok(()) => {}
    }
    ServerStats::bump(&ctx.stats.jobs_accepted);
    if let Some(sp) = ctx.telemetry.span(&trace_id, "accept", admitted) {
        sp.end();
    }
    ctx.telemetry.log().event(
        LogLevel::Info,
        "job_admitted",
        Some(&trace_id),
        &[
            ("queue_depth", Value::UInt(ctx.pool.queue_len() as u64)),
            ("deadline_ms", Value::UInt(deadline_ms)),
        ],
    );

    // Forward the upload line by line; the bounded send blocks when the
    // worker falls behind, which is exactly the backpressure we want.
    let mut buf = String::new();
    loop {
        buf.clear();
        match reader.read_line(&mut buf) {
            Ok(0) => {
                let _ = lines_tx.send(IngestItem::Abort(
                    "connection closed mid-upload".to_string(),
                ));
                break;
            }
            Err(e) => {
                let _ = lines_tx.send(IngestItem::Abort(format!("upload read failed: {e}")));
                break;
            }
            Ok(n) => {
                ServerStats::add(&ctx.stats.bytes_ingested, n as u64);
                let line = buf.trim_end_matches(['\r', '\n']);
                if is_control_line(line) {
                    let item = match parse_request(line) {
                        Ok(Request::End { lines }) => IngestItem::End { lines },
                        Ok(_) => IngestItem::Abort(
                            "unexpected control frame inside an export upload".to_string(),
                        ),
                        Err(e) => IngestItem::Abort(e),
                    };
                    let _ = lines_tx.send(item);
                    break;
                }
                if lines_tx.send(IngestItem::Line(line.to_string())).is_err() {
                    // The worker already gave up (deadline, malformed
                    // stream); its reply is waiting for us.
                    break;
                }
            }
        }
    }
    drop(lines_tx);

    match reply_rx.recv() {
        Some(Ok(parts)) => {
            ServerStats::bump(&ctx.stats.jobs_completed);
            ctx.stats.record_latency(admitted.elapsed().as_micros() as u64);
            let reply_started = Instant::now();
            let line = encode_result(
                parts.doc,
                &parts.table,
                parts.benches,
                parts.specs,
                parts.elapsed_us,
            );
            let sent = send_line(writer, &line);
            if let Some(sp) = ctx.telemetry.span(&trace_id, "reply", reply_started) {
                let outcome = if sent.is_ok() {
                    "ok"
                } else {
                    "error: reply write failed"
                };
                sp.bytes(line.len() as u64 + 1).outcome(outcome).end();
            }
            sent
        }
        Some(Err(message)) => {
            ServerStats::bump(&ctx.stats.jobs_failed);
            ctx.telemetry.log().event(
                LogLevel::Warn,
                "job_failed",
                Some(&trace_id),
                &[("message", Value::Str(message.clone()))],
            );
            let reply_started = Instant::now();
            let line = encode_error(&message);
            let sent = send_line(writer, &line);
            if let Some(sp) = ctx.telemetry.span(&trace_id, "reply", reply_started) {
                sp.bytes(line.len() as u64 + 1).end();
            }
            sent?;
            drain_discard(reader);
            Ok(())
        }
        None => {
            ServerStats::bump(&ctx.stats.jobs_failed);
            send_line(writer, &encode_error("job worker terminated unexpectedly"))
        }
    }
}

/// The worker side of a job: bounded ingest, then the shared simulation
/// runner — the exact machinery behind offline `simulate`, so the reply
/// document is byte-identical to `simulate --metrics-out`.
#[allow(clippy::too_many_arguments)]
fn run_job(
    spec: &JobSpec,
    mut lines_rx: Receiver<IngestItem>,
    reply_tx: &Sender<JobOutcome>,
    deadline: Option<Duration>,
    admitted: Instant,
    tel: &Telemetry,
    stats: &ServerStats,
    trace_id: &str,
) {
    let started = admitted;
    let picked_up = Instant::now();
    let fail = |message: String| {
        let _ = reply_tx.send(Err(message));
    };
    // A failing stage records its span with the error as the outcome, so
    // a trace of a failed job shows exactly where it died.
    let fail_stage = |stage: &str, stage_start: Instant, message: String| {
        if let Some(sp) = tel.span(trace_id, stage, stage_start) {
            sp.outcome(&format!("error: {message}")).end();
        }
        fail(message);
    };
    let log_deadline = |stage: &str| {
        tel.log().event(
            LogLevel::Warn,
            "deadline_exceeded",
            Some(trace_id),
            &[("stage", Value::Str(stage.to_string()))],
        );
    };
    // Dead on dequeue: the queue wait alone consumed the budget.
    if deadline.is_some_and(|d| started.elapsed() >= d) {
        log_deadline("queue");
        return fail_stage(
            "queue",
            admitted,
            format!(
                "deadline of {}ms exceeded",
                deadline.unwrap_or_default().as_millis()
            ),
        );
    }
    if let Some(sp) = tel.span(trace_id, "queue", admitted) {
        sp.dur(picked_up.saturating_duration_since(admitted)).end();
    }
    let ingest_started = Instant::now();
    let mut ingest = StreamIngest::new();
    let mut received = 0u64;
    let mut complete = false;
    while let Some(item) = lines_rx.recv() {
        if deadline.is_some_and(|d| started.elapsed() >= d) {
            log_deadline("ingest");
            return fail_stage(
                "ingest",
                ingest_started,
                "deadline exceeded during ingest".to_string(),
            );
        }
        match item {
            IngestItem::Line(line) => {
                received += 1;
                if let Err(e) = ingest.push_line(&line) {
                    return fail_stage("ingest", ingest_started, e);
                }
            }
            IngestItem::End { lines } => {
                if lines != received {
                    return fail_stage(
                        "ingest",
                        ingest_started,
                        format!(
                            "upload truncated: client sent {lines} export lines, received {received}"
                        ),
                    );
                }
                complete = true;
                break;
            }
            IngestItem::Abort(reason) => return fail_stage("ingest", ingest_started, reason),
        }
    }
    // Dropping the receiver here unblocks a connection thread still
    // stuck in `send` on a full channel.
    drop(lines_rx);
    if !complete {
        return fail_stage(
            "ingest",
            ingest_started,
            "upload ended without an end frame".to_string(),
        );
    }
    if let Some(sp) = tel.span(trace_id, "ingest", ingest_started) {
        sp.lines(ingest.lines()).bytes(ingest.bytes()).end();
    }
    let inputs = match ingest.into_inputs(
        spec.bench.as_deref(),
        spec.model.as_deref(),
        spec.capacity,
    ) {
        Ok(i) => i,
        Err(e) => return fail(e),
    };
    let specs = match resolve_sim_specs(&spec.specs, spec.grid) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };

    // Replay with a watchdog flipping the cancel flag at the deadline;
    // the runner polls it between (benchmark, spec) cells.
    let replay_started = Instant::now();
    let cancel = AtomicBool::new(false);
    let done = AtomicBool::new(false);
    let (cancel, done) = (&cancel, &done);
    let outcome = std::thread::scope(|scope| {
        if let Some(d) = deadline {
            scope.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    if started.elapsed() >= d {
                        cancel.store(true, Ordering::Relaxed);
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }
        // Within one job the pool's width is the concurrency budget, so
        // the replay itself runs single-threaded.
        let options = SimJobOptions {
            oracle: spec.oracle,
            windows: spec.windows,
            window_width: spec.window_width,
            regret_top: spec.regret_top.map(|t| t as usize),
        };
        let outcome = run_sim_job(&inputs, &specs, options, 1, Some(cancel));
        done.store(true, Ordering::Relaxed);
        outcome
    });
    match outcome {
        Ok(out) => {
            // Feed the windowed-telemetry gauges: the job's final
            // window's miss rate and its total drift annotations.
            if spec.windows {
                let mut drift = 0u64;
                let mut rate = 0.0;
                for bench in &out.benches {
                    for sim in &bench.sims {
                        if let Some(w) = &sim.windows {
                            drift += w.annotations.len() as u64;
                            if let Some(last) = w.windows.last() {
                                rate = last.miss_rate();
                            }
                        }
                    }
                }
                stats.record_windows(rate, drift);
            }
            // One span per spec: the sum of that spec's replay cells
            // across all benchmarks, timed inside `run_sim_job`.
            if tel.tracing() {
                for (si, label) in out.labels.iter().enumerate() {
                    let cell_total: u64 = out
                        .benches
                        .iter()
                        .map(|b| b.cell_us.get(si).copied().unwrap_or(0))
                        .sum();
                    if let Some(sp) = tel.span(trace_id, &format!("replay:{label}"), replay_started)
                    {
                        sp.dur(Duration::from_micros(cell_total)).end();
                    }
                }
            }
            let parts = ResultParts {
                doc: sim_metrics_doc(&out),
                table: render_sim_tables(&out),
                benches: out.benches.len() as u64,
                specs: out.labels.len() as u64,
                elapsed_us: started.elapsed().as_micros() as u64,
            };
            let _ = reply_tx.send(Ok(parts));
        }
        Err(e) => {
            if cancel.load(Ordering::Relaxed) {
                log_deadline("replay");
                fail_stage(
                    "replay",
                    replay_started,
                    format!(
                        "deadline of {}ms exceeded",
                        deadline.unwrap_or_default().as_millis()
                    ),
                );
            } else {
                fail_stage("replay", replay_started, e);
            }
        }
    }
}

/// Adapts the bounded channel into an `io::Write` so the streamed
/// export writer can feed a socket-bound download line by line.
struct ChannelWriter {
    tx: Sender<String>,
    buf: Vec<u8>,
}

impl ChannelWriter {
    fn new(tx: Sender<String>) -> Self {
        ChannelWriter {
            tx,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, upto: usize) -> io::Result<()> {
        let line = String::from_utf8_lossy(&self.buf[..upto]).into_owned();
        self.buf.drain(..=upto);
        self.tx
            .send(line)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "download receiver dropped"))
    }
}

impl Write for ChannelWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            self.send(pos)?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn handle_fetch(
    ctx: &Ctx,
    writer: &mut impl Write,
    bench: &str,
    scale: u64,
) -> io::Result<()> {
    let (line_tx, mut line_rx) = bounded::<String>(ctx.channel_depth);
    let bench_name = bench.to_string();
    let depth = ctx.channel_depth;
    let job = Box::new(move || {
        let Some(profile) = benchmark(&bench_name) else {
            let _ = line_tx.send(encode_error(&format!("unknown benchmark {bench_name:?}")));
            return;
        };
        let profile = if scale > 1 {
            profile.scaled_down(scale)
        } else {
            profile
        };
        let rec = match StreamedRecording::probe(&profile, RecorderOptions::default(), depth) {
            Ok(r) => r,
            Err(e) => {
                let _ = line_tx.send(encode_error(&format!("{bench_name}: {e:?}")));
                return;
            }
        };
        let runs = vec![(profile, rec)];
        match stream_events_to(ChannelWriter::new(line_tx.clone()), &runs) {
            Ok((w, lines)) => {
                drop(w);
                let _ = line_tx.send(encode_end(lines));
            }
            Err(_) => {
                // Receiver vanished: the client hung up; nothing to do.
            }
        }
    });
    match ctx.pool.try_submit(job) {
        Err((_, SubmitError::Full)) => {
            ServerStats::bump(&ctx.stats.jobs_rejected);
            return send_line(writer, &encode_busy(ctx.pool.queue_len() as u64));
        }
        Err((_, SubmitError::Closed)) => {
            return send_line(
                writer,
                &encode_error("shutting down; not accepting new jobs"),
            );
        }
        Ok(()) => {}
    }
    ServerStats::bump(&ctx.stats.jobs_accepted);
    let mut failed = false;
    while let Some(line) = line_rx.recv() {
        // Counters track export payload, not the trailing control frame.
        if !is_control_line(&line) {
            ServerStats::bump(&ctx.stats.lines_served);
        }
        if send_line(writer, &line).is_err() {
            // Client hung up; dropping the receiver aborts the worker's
            // next send.
            failed = true;
            break;
        }
    }
    if failed {
        ServerStats::bump(&ctx.stats.jobs_failed);
    } else {
        ServerStats::bump(&ctx.stats.jobs_completed);
    }
    Ok(())
}
