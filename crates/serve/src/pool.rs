//! A fixed-size worker pool over the bounded channel from
//! `gencache_sim::stream`.
//!
//! Admission is non-blocking: [`WorkerPool::try_submit`] either enqueues
//! the job or hands it straight back when the queue is full, which the
//! daemon turns into a `busy` reply — load is shed at the door instead
//! of building an unbounded backlog. Workers share the single receiver
//! behind a mutex; a worker blocked in `recv` holds the lock only until
//! a job arrives, so dequeueing serializes but execution does not.
//!
//! Jobs run under `catch_unwind`: a panicking job is counted (see
//! [`WorkerPool::panics`]) but never takes its worker thread with it, so
//! pool capacity stays fixed and shutdown joins cleanly.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use gencache_sim::stream::{bounded, Receiver, Sender, TrySendError};

/// A unit of work for the pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`WorkerPool::try_submit`] handed a job back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — shed the load.
    Full,
    /// The pool is shutting down and accepts nothing new.
    Closed,
}

/// Fixed worker threads draining a bounded job queue. The sender and
/// the worker handles sit behind mutexes so a pool shared through an
/// `Arc` can still shut down by `&self`.
pub struct WorkerPool {
    tx: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
    panics: Arc<AtomicU64>,
    active: Arc<AtomicU64>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.worker_count)
            .field("queued", &self.queue_len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` threads behind a queue of `queue_depth` pending
    /// jobs (both clamped to at least 1).
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = bounded::<Job>(queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let panics = Arc::new(AtomicU64::new(0));
        let active = Arc::new(AtomicU64::new(0));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let panics = Arc::clone(&panics);
                let active = Arc::clone(&active);
                std::thread::Builder::new()
                    .name(format!("gencache-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &panics, &active))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(handles),
            worker_count: workers,
            panics,
            active,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Jobs that panicked while running. The worker survives each one;
    /// the counter is the observable trace a panic leaves behind.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Jobs currently executing on a worker thread — the in-flight
    /// gauge the `stats` and `metrics` frames expose.
    pub fn active(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queue_len(&self) -> usize {
        self.tx
            .lock()
            .expect("job sender poisoned")
            .as_ref()
            .map_or(0, Sender::len)
    }

    /// Enqueues `job` without blocking.
    ///
    /// # Errors
    ///
    /// Returns the job back with [`SubmitError::Full`] when the queue is
    /// at capacity, or [`SubmitError::Closed`] once shutdown began.
    pub fn try_submit(&self, job: Job) -> Result<(), (Job, SubmitError)> {
        let tx = self.tx.lock().expect("job sender poisoned");
        let Some(tx) = tx.as_ref() else {
            return Err((job, SubmitError::Closed));
        };
        match tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job)) => Err((job, SubmitError::Full)),
            Err(TrySendError::Disconnected(job)) => Err((job, SubmitError::Closed)),
        }
    }

    /// Stops accepting work, drains the queue, and joins every worker —
    /// in-flight jobs run to completion. Idempotent.
    pub fn shutdown(&self) {
        *self.tx.lock().expect("job sender poisoned") = None;
        let handles: Vec<JoinHandle<()>> =
            self.workers.lock().expect("worker handles poisoned").drain(..).collect();
        for handle in handles {
            handle.join().expect("worker thread panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, panics: &AtomicU64, active: &AtomicU64) {
    loop {
        let job = {
            let mut rx = rx.lock().expect("job queue poisoned");
            rx.recv()
        };
        match job {
            // AssertUnwindSafe: the job is FnOnce and consumed here; any
            // state it shares across the boundary (channels, atomics)
            // already tolerates a sender vanishing mid-protocol.
            Some(job) => {
                active.fetch_add(1, Ordering::Relaxed);
                if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
                    panics.fetch_add(1, Ordering::Relaxed);
                }
                active.fetch_sub(1, Ordering::Relaxed);
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn jobs_run_and_drain_on_shutdown() {
        let ran = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(2, 8);
        for _ in 0..8 {
            let ran = Arc::clone(&ran);
            let mut job: Job = Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
            loop {
                match pool.try_submit(job) {
                    Ok(()) => break,
                    Err((back, _)) => {
                        job = back;
                        std::thread::yield_now();
                    }
                }
            }
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn full_queue_sheds_without_blocking() {
        let pool = WorkerPool::new(1, 1);
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        // Occupy the single worker...
        assert!(pool
            .try_submit(Box::new(move || {
                started_tx.send(()).unwrap();
                hold_rx.recv().unwrap();
            }))
            .is_ok());
        started_rx.recv().unwrap();
        // ...fill the queue...
        assert!(pool.try_submit(Box::new(|| {})).is_ok());
        // ...and the next submission is shed immediately.
        let err = pool.try_submit(Box::new(|| {})).unwrap_err().1;
        assert_eq!(err, SubmitError::Full);
        hold_tx.send(()).unwrap();
    }

    #[test]
    fn panicking_job_leaves_pool_alive_and_counted() {
        // A single worker makes the ordering airtight: if the panic had
        // killed the thread, the follow-up job could never run and
        // shutdown would hang or blow up on join.
        let pool = WorkerPool::new(1, 4);
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the backtrace
        for _ in 0..3 {
            let mut job: Job = Box::new(|| panic!("job blew up"));
            loop {
                match pool.try_submit(job) {
                    Ok(()) => break,
                    Err((back, _)) => {
                        job = back;
                        std::thread::yield_now();
                    }
                }
            }
        }
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let mut job: Job = Box::new(move || {
            ran2.fetch_add(1, Ordering::SeqCst);
        });
        loop {
            match pool.try_submit(job) {
                Ok(()) => break,
                Err((back, _)) => {
                    job = back;
                    std::thread::yield_now();
                }
            }
        }
        pool.shutdown(); // must not panic on join
        std::panic::set_hook(prev_hook);
        assert_eq!(ran.load(Ordering::SeqCst), 1, "worker survived the panics");
        assert_eq!(pool.panics(), 3, "every panic was counted");
    }
}
