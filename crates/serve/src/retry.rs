//! Bounded, deterministic retry with capped exponential backoff.
//!
//! One policy serves both sides of the fleet: `gencache-client` retries
//! a `busy` daemon instead of giving up on the first shed, and the
//! `gencache-shard` router retries busy shards before failing over to
//! the next-preferred one. Delays are deterministic (no jitter): the
//! attempt sequence is `base, base*2, base*4, …` capped at `cap`, so
//! tests can reason about exact timing and two runs behave identically.

use std::time::Duration;

/// How many times to retry and how long to wait between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries *after* the first attempt (0 = try once, never retry).
    pub retries: u32,
    /// Delay before the first retry; doubles each retry.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    /// A few quick attempts: 3 retries starting at 200 ms, capped at 2 s
    /// — enough to ride out a transient queue spike without stalling an
    /// interactive caller for long.
    fn default() -> Self {
        RetryPolicy {
            retries: 3,
            base: Duration::from_millis(200),
            cap: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// A policy with `retries` attempts starting at `base_ms`
    /// milliseconds (cap fixed at 10× the base).
    pub fn new(retries: u32, base_ms: u64) -> Self {
        RetryPolicy {
            retries,
            base: Duration::from_millis(base_ms),
            cap: Duration::from_millis(base_ms.saturating_mul(10)),
        }
    }

    /// The delay before retry number `attempt` (0-based): `base * 2^attempt`,
    /// capped.
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base.saturating_mul(factor).min(self.cap)
    }

    /// Total attempts this policy makes (the first try plus retries).
    pub fn attempts(&self) -> u32 {
        self.retries.saturating_add(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_then_cap() {
        let policy = RetryPolicy {
            retries: 6,
            base: Duration::from_millis(100),
            cap: Duration::from_millis(500),
        };
        let delays: Vec<u64> = (0..5).map(|i| policy.delay(i).as_millis() as u64).collect();
        assert_eq!(delays, vec![100, 200, 400, 500, 500]);
        assert_eq!(policy.attempts(), 7);
    }

    #[test]
    fn shift_overflow_saturates_at_the_cap() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.delay(40), policy.cap);
    }

    #[test]
    fn none_never_retries() {
        assert_eq!(RetryPolicy::none().attempts(), 1);
    }
}
