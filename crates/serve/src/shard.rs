//! `gencache-shard`: the fleet router.
//!
//! A router daemon speaks the exact `gencache-serve` protocol on the
//! front and fans work out to N backend daemons on the back, so a
//! client cannot tell a fleet from a single node — except that capacity
//! scales with the shard count. The pieces:
//!
//! * **Consistent-hash routing.** Every `(benchmark, model)` stream
//!   group routes by its *benchmark* component (all model streams of a
//!   benchmark must land together — the backend verifies them against
//!   each other), through an FNV-1a ring with virtual nodes. Each
//!   benchmark has a deterministic preference order of shards; the
//!   first live one wins, so placement is stable while the fleet is
//!   healthy and moves minimally when a shard goes down.
//! * **Byte-identical merge.** A `job` upload is split per benchmark
//!   into per-shard sub-jobs (dispatched concurrently through
//!   [`par_map`]); the per-shard metrics documents are deserialized
//!   into typed reports and reassembled with the same
//!   input-index-deterministic merge offline `simulate` uses
//!   ([`merge_metrics_docs`]), so the fleet reply is byte-for-byte what
//!   a single node would have produced.
//! * **Health + retry.** A background thread pings every shard each
//!   `health_interval`, marking shards down and back up. Dispatch
//!   retries a `busy` shard with the shared capped-exponential
//!   [`RetryPolicy`], then fails over to the next-preferred shard;
//!   connection failures mark the shard down immediately and re-route.
//! * **Fleet stats.** A `stats` request aggregates every live shard's
//!   counters (summed) and log2 latency histograms (merged exactly),
//!   plus router-side routing counters and the shard health table.
//!
//! The router buffers a job upload in memory (per-benchmark line
//! groups) so a failed shard's share can be re-sent elsewhere — the
//! trade against the daemon's bounded-memory ingest is deliberate:
//! routers are few, shards are many, and retryability is what makes
//! mid-run shard loss invisible to the client.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, BufWriter, Cursor, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gencache_bench::ingest::{classify_line, merge_metrics_docs, merge_sim_tables, RouteClass};
use gencache_obs::Log2Histogram;
use gencache_sim::par::par_map;
use serde::{Deserialize, Serialize, Value};

use crate::client::Client;
use crate::proto::{
    encode_end, encode_error, encode_metrics, encode_pong, encode_result, encode_route,
    encode_shards, encode_stats, encode_trace, encode_watch, is_control_line, parse_request,
    JobSpec, Reply, Request, WatchRow,
};
use crate::retry::RetryPolicy;
use crate::server::drain_discard;
use crate::signal;
use crate::telemetry::{
    new_trace_id, prom_label_escape, LogLevel, Logger, PromText, Span, Telemetry,
};

/// How a [`ShardRouter`] is sized and wired.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Backend `gencache-serve` addresses (`host:port`), at least one.
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the hash ring — more replicas, finer
    /// balance.
    pub replicas: usize,
    /// Socket read timeout, applied to client connections and to every
    /// shard conversation.
    pub read_timeout: Duration,
    /// How often the health thread pings every shard.
    pub health_interval: Duration,
    /// Busy-retry policy per shard before failing over to the
    /// next-preferred one.
    pub retry: RetryPolicy,
    /// Structured log target: `None`/`"none"` disables, `"-"` is
    /// stderr, anything else is a file opened append-only.
    pub log: Option<String>,
    /// Minimum level a record needs to reach the log sink.
    pub log_level: LogLevel,
    /// Spans retained in the in-memory trace ring; 0 disables tracing.
    pub trace_capacity: usize,
    /// Rotate the log file once (to `<path>.1`) when it would exceed
    /// this many bytes; `None` (and `Some(0)`) never rotate. Only file
    /// targets rotate — stderr is unaffected.
    pub log_max_bytes: Option<u64>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            replicas: 32,
            read_timeout: Duration::from_secs(10),
            health_interval: Duration::from_secs(1),
            retry: RetryPolicy::default(),
            log: None,
            log_level: LogLevel::Warn,
            trace_capacity: crate::telemetry::DEFAULT_TRACE_CAPACITY,
            log_max_bytes: None,
        }
    }
}

/// FNV-1a 64 with a murmur3-style avalanche finalizer. Raw FNV-1a maps
/// near-identical strings (`addr#0`, `addr#1`, …) to one contiguous
/// band of the ring — every replica of a shard clusters and the ring
/// degenerates; the finalizer spreads a one-byte difference across all
/// 64 bits. Hand-rolled because ring placement must be deterministic
/// across processes (std's `DefaultHasher` is seeded per-process).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^ (hash >> 33)
}

/// One backend's live state: health flag plus routing counters.
struct Shard {
    addr: String,
    up: AtomicBool,
    jobs_routed: AtomicU64,
    busy_retries: AtomicU64,
    failovers: AtomicU64,
    /// Round trip of the most recent successful health ping, in
    /// microseconds; 0 until the first ping lands.
    last_ping_us: AtomicU64,
}

/// The consistent-hash ring over the configured backends.
struct ShardTable {
    shards: Vec<Shard>,
    /// `(point, shard index)` sorted by point.
    ring: Vec<(u64, usize)>,
}

impl ShardTable {
    fn new(backends: &[String], replicas: usize) -> Self {
        let shards = backends
            .iter()
            .map(|addr| Shard {
                addr: addr.clone(),
                up: AtomicBool::new(true),
                jobs_routed: AtomicU64::new(0),
                busy_retries: AtomicU64::new(0),
                failovers: AtomicU64::new(0),
                last_ping_us: AtomicU64::new(0),
            })
            .collect();
        let mut ring = Vec::with_capacity(backends.len() * replicas.max(1));
        for (i, addr) in backends.iter().enumerate() {
            for r in 0..replicas.max(1) {
                ring.push((fnv1a(format!("{addr}#{r}").as_bytes()), i));
            }
        }
        ring.sort_unstable();
        ShardTable { shards, ring }
    }

    /// Deterministic preference order for `key`: distinct shards in the
    /// order the ring walk meets them, starting at the key's hash point.
    fn preference(&self, key: &str) -> Vec<usize> {
        let point = fnv1a(key.as_bytes());
        let start = self.ring.partition_point(|&(p, _)| p < point);
        let mut seen = vec![false; self.shards.len()];
        let mut order = Vec::with_capacity(self.shards.len());
        for i in 0..self.ring.len() {
            let (_, s) = self.ring[(start + i) % self.ring.len()];
            if !seen[s] {
                seen[s] = true;
                order.push(s);
                if order.len() == self.shards.len() {
                    break;
                }
            }
        }
        order
    }

    /// The first live, non-excluded shard in `key`'s preference order.
    fn route(&self, key: &str, excluded: &[usize]) -> Option<usize> {
        self.preference(key).into_iter().find(|&s| {
            self.shards[s].up.load(Ordering::Relaxed) && !excluded.contains(&s)
        })
    }

    fn doc(&self) -> Value {
        Value::Array(
            self.shards
                .iter()
                .map(|s| {
                    Value::Object(vec![
                        ("addr".to_string(), Value::Str(s.addr.clone())),
                        ("up".to_string(), Value::Bool(s.up.load(Ordering::Relaxed))),
                        (
                            "jobs_routed".to_string(),
                            Value::UInt(s.jobs_routed.load(Ordering::Relaxed)),
                        ),
                        (
                            "busy_retries".to_string(),
                            Value::UInt(s.busy_retries.load(Ordering::Relaxed)),
                        ),
                        (
                            "failovers".to_string(),
                            Value::UInt(s.failovers.load(Ordering::Relaxed)),
                        ),
                        (
                            "last_ping_us".to_string(),
                            Value::UInt(s.last_ping_us.load(Ordering::Relaxed)),
                        ),
                    ])
                })
                .collect(),
        )
    }
}

/// Router-side counters (shard counters live in the table).
#[derive(Default)]
struct RouterStats {
    connections: AtomicU64,
    fleet_jobs: AtomicU64,
    fleet_jobs_completed: AtomicU64,
    fleet_jobs_failed: AtomicU64,
    subjobs: AtomicU64,
    /// Largest single job upload buffered in router memory, in bytes —
    /// the router holds a whole upload for retryability, so this is its
    /// per-job memory high-water mark.
    upload_buffer_peak_bytes: AtomicU64,
    busy_retries: AtomicU64,
    failovers: AtomicU64,
}

struct RouterCtx {
    table: ShardTable,
    retry: RetryPolicy,
    read_timeout: Duration,
    health_interval: Duration,
    shutdown: Arc<AtomicBool>,
    stats: RouterStats,
    telemetry: Arc<Telemetry>,
}

impl RouterCtx {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::shutdown_requested()
    }

    fn shard_client(&self, shard: &Shard) -> Client {
        Client::with_timeout(&shard.addr, self.read_timeout)
    }
}

/// The fleet router daemon. Binds like a [`Server`](crate::Server),
/// speaks the same protocol, and proxies/merges across its backends.
pub struct ShardRouter {
    listener: TcpListener,
    ctx: Arc<RouterCtx>,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.ctx.table.shards.len())
            .finish_non_exhaustive()
    }
}

impl ShardRouter {
    /// Binds the router's listener over the configured backends.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure; an empty backend list is
    /// `InvalidInput`.
    pub fn bind(config: &ShardConfig) -> io::Result<ShardRouter> {
        if config.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "gencache-shard needs at least one backend",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let node = listener
            .local_addr()
            .map_or_else(|_| "router".to_string(), |a| format!("router:{a}"));
        let logger = Logger::open_capped(
            "gencache-shard",
            config.log.as_deref(),
            config.log_level,
            config.log_max_bytes,
        )?;
        let ctx = RouterCtx {
            table: ShardTable::new(&config.backends, config.replicas),
            retry: config.retry,
            read_timeout: config.read_timeout,
            health_interval: config.health_interval,
            shutdown: Arc::new(AtomicBool::new(false)),
            stats: RouterStats::default(),
            telemetry: Arc::new(Telemetry::new(&node, config.trace_capacity, logger)),
        };
        Ok(ShardRouter {
            listener,
            ctx: Arc::new(ctx),
        })
    }

    /// The bound address (resolves the ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag that stops the accept loop when set — how in-process tests
    /// shut the router down without a signal.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.ctx.shutdown)
    }

    /// Serves until the shutdown flag or a SIGTERM/SIGINT arrives, then
    /// drains: stop accepting, join live connections, stop the health
    /// thread.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop failures other than `WouldBlock`.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let health = {
            let ctx = Arc::clone(&self.ctx);
            std::thread::Builder::new()
                .name("gencache-shard-health".to_string())
                .spawn(move || health_loop(&ctx))
                .expect("spawn health thread")
        };
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        loop {
            if self.ctx.draining() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    conns.retain(|h| !h.is_finished());
                    let ctx = Arc::clone(&self.ctx);
                    let handle = std::thread::Builder::new()
                        .name("gencache-shard-conn".to_string())
                        .spawn(move || {
                            if let Err(e) = handle_connection(stream, &ctx) {
                                if e.kind() != io::ErrorKind::BrokenPipe
                                    && e.kind() != io::ErrorKind::ConnectionReset
                                {
                                    ctx.telemetry.log().event(
                                        LogLevel::Error,
                                        "connection_error",
                                        None,
                                        &[("message", Value::Str(e.to_string()))],
                                    );
                                }
                            }
                        })
                        .expect("spawn connection thread");
                    conns.push(handle);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.ctx.telemetry.log().event(
            LogLevel::Info,
            "drain_start",
            None,
            &[("connections", Value::UInt(conns.len() as u64))],
        );
        for handle in conns {
            let _ = handle.join();
        }
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        let _ = health.join();
        self.ctx
            .telemetry
            .log()
            .event(LogLevel::Info, "drain_finish", None, &[]);
        Ok(())
    }
}

/// Periodic shard health: `ping` every backend, mark down on failure
/// and back up on recovery. Dispatch also marks down eagerly on
/// connection failure; this loop is what brings a shard back.
fn health_loop(ctx: &RouterCtx) {
    // Sleep first: shards start optimistically up, so the first pass can
    // wait a full interval. Probing at t=0 would race the dispatch path
    // (which marks dead shards down by itself) and makes startup order
    // matter; sleeping first keeps "who discovered the death" —
    // dispatch within an interval, this loop after — deterministic.
    loop {
        let slept = Instant::now();
        while slept.elapsed() < ctx.health_interval {
            if ctx.draining() {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        for shard in &ctx.table.shards {
            if ctx.draining() {
                return;
            }
            let pinged = Instant::now();
            let alive = match ctx.shard_client(shard).ping(0) {
                Ok(Reply::Pong | Reply::Busy { .. }) => true,
                Ok(Reply::Error { message }) => !message.contains("shutting down"),
                Ok(_) => true,
                Err(_) => false,
            };
            if alive {
                shard
                    .last_ping_us
                    .store(pinged.elapsed().as_micros() as u64, Ordering::Relaxed);
            }
            let was = shard.up.swap(alive, Ordering::Relaxed);
            if was != alive {
                ctx.telemetry.log().event(
                    LogLevel::Warn,
                    if alive { "shard_up" } else { "shard_down" },
                    None,
                    &[("addr", Value::Str(shard.addr.clone()))],
                );
            }
        }
    }
}

fn send_line(writer: &mut impl Write, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn handle_connection(stream: TcpStream, ctx: &RouterCtx) -> io::Result<()> {
    AtomicU64::fetch_add(&ctx.stats.connections, 1, Ordering::Relaxed);
    stream.set_read_timeout(Some(ctx.read_timeout))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut first = String::new();
    if reader.read_line(&mut first)? == 0 {
        return Ok(());
    }
    let line = first.trim_end_matches(['\r', '\n']);
    if !is_control_line(line) {
        return send_line(
            &mut writer,
            &encode_error("expected a control frame ({\"type\":...}) first"),
        );
    }
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => return send_line(&mut writer, &encode_error(&e)),
    };
    match request {
        Request::Stats => send_line(&mut writer, &encode_stats(fleet_stats(ctx))),
        Request::Ping { .. } => send_line(&mut writer, &encode_pong()),
        Request::Shards => send_line(&mut writer, &encode_shards(ctx.table.doc())),
        Request::Trace { trace_id } => {
            send_line(&mut writer, &encode_trace(&trace_id, fleet_trace(ctx, &trace_id)))
        }
        Request::Metrics => send_line(&mut writer, &encode_metrics(&router_metrics(ctx))),
        Request::Route { bench } => match ctx.table.route(&bench, &[]) {
            Some(s) => send_line(
                &mut writer,
                &encode_route(&bench, &ctx.table.shards[s].addr),
            ),
            None => send_line(&mut writer, &encode_error("no live shards")),
        },
        Request::End { .. } => {
            send_line(&mut writer, &encode_error("end frame outside a job upload"))
        }
        Request::Job(spec) => {
            if ctx.draining() {
                return send_line(
                    &mut writer,
                    &encode_error("shutting down; not accepting new jobs"),
                );
            }
            handle_job(ctx, &mut reader, &mut writer, spec)
        }
        Request::Fetch { bench, scale } => {
            if ctx.draining() {
                return send_line(
                    &mut writer,
                    &encode_error("shutting down; not accepting new jobs"),
                );
            }
            handle_fetch(ctx, &mut writer, &bench, scale)
        }
        Request::Watch { interval_ms, count } => {
            handle_watch(ctx, &mut writer, interval_ms, count)
        }
    }
}

/// Streams fleet-wide watch snapshots: each tick samples every live
/// shard's service rates concurrently (one short `watch` round per
/// shard) and stitches the rows into a single frame in shard-table
/// order, so a dashboard sees the whole fleet per tick. Runs on the
/// connection thread; a shard that fails its sample is marked down and
/// dropped from subsequent ticks until the health loop revives it.
fn handle_watch(
    ctx: &RouterCtx,
    writer: &mut impl Write,
    interval_ms: u64,
    count: u64,
) -> io::Result<()> {
    let interval = Duration::from_millis(interval_ms.clamp(50, 60_000));
    // Each shard sample must finish inside the router→shard read
    // timeout, so long client intervals sample briefly and sleep out
    // the remainder.
    let sample = interval.min(ctx.read_timeout / 2).max(Duration::from_millis(50));
    let mut sent = 0u64;
    loop {
        let started = Instant::now();
        let live: Vec<&Shard> = ctx
            .table
            .shards
            .iter()
            .filter(|s| s.up.load(Ordering::Relaxed))
            .collect();
        if live.is_empty() {
            return send_line(writer, &encode_error("no live shards"));
        }
        let sampled = par_map(&live, live.len(), |shard| {
            ctx.shard_client(shard)
                .watch_once(sample.as_millis() as u64)
        });
        let mut rows: Vec<WatchRow> = Vec::new();
        for (shard, result) in live.iter().zip(sampled) {
            match result {
                Ok(shard_rows) => rows.extend(shard_rows),
                Err(_) => {
                    shard.up.store(false, Ordering::Relaxed);
                }
            }
        }
        while started.elapsed() < interval {
            if ctx.draining() {
                return send_line(writer, &encode_end(sent));
            }
            let left = interval - started.elapsed();
            std::thread::sleep(left.min(Duration::from_millis(100)));
        }
        if ctx.draining() {
            return send_line(writer, &encode_end(sent));
        }
        send_line(writer, &encode_watch(ctx.telemetry.node(), sent, &rows))?;
        sent += 1;
        if count > 0 && sent >= count {
            return send_line(writer, &encode_end(sent));
        }
    }
}

/// A job upload, regrouped per benchmark for routing. Headers are kept
/// apart and broadcast to every sub-upload; blank lines are counted
/// (the `end` integrity check covers them) but not forwarded.
struct Upload {
    prelude: Vec<String>,
    order: Vec<String>,
    groups: BTreeMap<String, Vec<String>>,
    /// Export lines received (everything between `job` and `end`).
    lines: u64,
    /// Bytes received, counting the newline each line arrived with.
    bytes: u64,
}

/// Refuses an in-flight upload: send the error frame, discard the rest
/// of the stream so the client's write side never jams, report "no
/// upload" to the caller.
fn refuse<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    message: &str,
) -> io::Result<Option<Upload>> {
    send_line(writer, &encode_error(message))?;
    drain_discard(reader);
    Ok(None)
}

fn read_upload(reader: &mut impl BufRead, writer: &mut impl Write) -> io::Result<Option<Upload>> {
    let mut upload = Upload {
        prelude: Vec::new(),
        order: Vec::new(),
        groups: BTreeMap::new(),
        lines: 0,
        bytes: 0,
    };
    let mut received = 0u64;
    let mut buf = String::new();
    loop {
        buf.clear();
        match reader.read_line(&mut buf) {
            Ok(0) => return refuse(reader, writer, "connection closed mid-upload"),
            Err(e) => return refuse(reader, writer, &format!("upload read failed: {e}")),
            Ok(_) => {}
        }
        let line = buf.trim_end_matches(['\r', '\n']);
        if is_control_line(line) {
            match parse_request(line) {
                Ok(Request::End { lines }) => {
                    if lines != received {
                        return refuse(
                            reader,
                            writer,
                            &format!(
                                "upload truncated: client sent {lines} export lines, \
                                 received {received}"
                            ),
                        );
                    }
                    upload.lines = received;
                    return Ok(Some(upload));
                }
                Ok(_) => {
                    return refuse(
                        reader,
                        writer,
                        "unexpected control frame inside an export upload",
                    )
                }
                Err(e) => return refuse(reader, writer, &e),
            }
        }
        received += 1;
        upload.bytes += line.len() as u64 + 1;
        match classify_line(line) {
            Ok(RouteClass::Blank) => {}
            Ok(RouteClass::Header) => upload.prelude.push(line.to_string()),
            Ok(RouteClass::Stream(bench)) => {
                if !upload.groups.contains_key(&bench) {
                    upload.order.push(bench.clone());
                }
                upload
                    .groups
                    .entry(bench)
                    .or_default()
                    .push(line.to_string());
            }
            Err(e) => return refuse(reader, writer, &e),
        }
    }
}

/// One shard's completed sub-job.
struct SubReply {
    doc: String,
    table: String,
    specs: u64,
}

/// Why one dispatch attempt did not produce a result.
enum SubError {
    /// The shard is unreachable or died mid-conversation — mark it down
    /// and re-route its benchmarks.
    Dead(String),
    /// The shard stayed busy through every retry — leave it up but route
    /// around it for this job.
    Busy,
    /// The job itself failed (bad spec, divergent export, deadline) —
    /// re-routing cannot help; fail the fleet job with this message.
    Terminal(String),
}

/// Sends one sub-job to one shard, retrying `busy` under the shared
/// policy. The sub-upload is the prelude plus the selected benchmarks'
/// lines, in upload order.
fn dispatch_once(
    ctx: &RouterCtx,
    spec: &JobSpec,
    upload: &Upload,
    shard_idx: usize,
    benches: &[String],
) -> Result<SubReply, SubError> {
    let shard = &ctx.table.shards[shard_idx];
    let mut body = String::new();
    for line in &upload.prelude {
        body.push_str(line);
        body.push('\n');
    }
    for bench in benches {
        for line in &upload.groups[bench] {
            body.push_str(line);
            body.push('\n');
        }
    }
    let client = ctx.shard_client(shard);
    AtomicU64::fetch_add(&ctx.stats.subjobs, 1, Ordering::Relaxed);
    let mut attempt = 0u32;
    loop {
        match client.submit(Cursor::new(body.as_bytes()), spec) {
            Ok(Reply::Result {
                doc, table, specs, ..
            }) => {
                shard.jobs_routed.fetch_add(1, Ordering::Relaxed);
                return Ok(SubReply { doc, table, specs });
            }
            Ok(Reply::Busy { .. }) => {
                if attempt < ctx.retry.retries {
                    shard.busy_retries.fetch_add(1, Ordering::Relaxed);
                    AtomicU64::fetch_add(&ctx.stats.busy_retries, 1, Ordering::Relaxed);
                    std::thread::sleep(ctx.retry.delay(attempt));
                    attempt += 1;
                } else {
                    return Err(SubError::Busy);
                }
            }
            Ok(Reply::Error { message }) if message.contains("shutting down") => {
                return Err(SubError::Dead(format!("shard {}: {message}", shard.addr)));
            }
            Ok(Reply::Error { message }) => {
                return Err(SubError::Terminal(format!(
                    "shard {}: {message}",
                    shard.addr
                )));
            }
            Ok(other) => {
                return Err(SubError::Terminal(format!(
                    "shard {}: unexpected reply {other:?}",
                    shard.addr
                )));
            }
            Err(e) => return Err(SubError::Dead(format!("shard {}: {e}", shard.addr))),
        }
    }
}

/// Routes, dispatches, fails over, and merges one fleet job.
fn run_fleet_job(
    ctx: &RouterCtx,
    spec: &JobSpec,
    upload: &Upload,
) -> Result<(Value, String, u64, u64), String> {
    let selected: Vec<String> = match &spec.bench {
        Some(want) => {
            if upload.groups.contains_key(want) {
                vec![want.clone()]
            } else {
                // Mirror the single-node diagnostic exactly.
                return Err(format!(
                    "benchmark {want:?} not in export; available: {}",
                    upload.order.join(", ")
                ));
            }
        }
        None => upload.order.clone(),
    };
    if selected.is_empty() {
        return Err("export contains no event streams".to_string());
    }
    let mut pending = selected.clone();
    let mut excluded: Vec<usize> = Vec::new(); // busy-exhausted, this job only
    let mut replies: Vec<SubReply> = Vec::new();
    while !pending.is_empty() {
        // Group the pending benchmarks by their first live shard.
        let mut assign: Vec<(usize, Vec<String>)> = Vec::new();
        for bench in pending.drain(..) {
            let Some(s) = ctx.table.route(&bench, &excluded) else {
                return Err(format!("no live shard available for benchmark {bench:?}"));
            };
            match assign.iter_mut().find(|(idx, _)| *idx == s) {
                Some((_, group)) => group.push(bench),
                None => assign.push((s, vec![bench])),
            }
        }
        // Concurrent dispatch, one worker per shard group; results come
        // back in assignment order regardless of scheduling.
        let results = par_map(&assign, assign.len().max(1), |(shard_idx, benches)| {
            let dispatch_started = Instant::now();
            let result = dispatch_once(ctx, spec, upload, *shard_idx, benches);
            if let Some(id) = spec.trace_id.as_deref() {
                let stage = format!("dispatch:{}", ctx.table.shards[*shard_idx].addr);
                let outcome = match &result {
                    Ok(_) => "ok".to_string(),
                    Err(SubError::Busy) => "busy".to_string(),
                    Err(SubError::Dead(why)) => format!("error: {why}"),
                    Err(SubError::Terminal(message)) => format!("error: {message}"),
                };
                if let Some(span) = ctx.telemetry.span(id, &stage, dispatch_started) {
                    span.outcome(&outcome).end();
                }
            }
            result
        });
        for ((shard_idx, benches), result) in assign.into_iter().zip(results) {
            match result {
                Ok(reply) => replies.push(reply),
                Err(SubError::Dead(why)) => {
                    ctx.telemetry.log().event(
                        LogLevel::Warn,
                        "shard_reroute",
                        spec.trace_id.as_deref(),
                        &[
                            ("addr", Value::Str(ctx.table.shards[shard_idx].addr.clone())),
                            ("benches", Value::UInt(benches.len() as u64)),
                            ("why", Value::Str(why)),
                        ],
                    );
                    let was = ctx.table.shards[shard_idx].up.swap(false, Ordering::Relaxed);
                    if was {
                        ctx.telemetry.log().event(
                            LogLevel::Warn,
                            "shard_down",
                            None,
                            &[("addr", Value::Str(ctx.table.shards[shard_idx].addr.clone()))],
                        );
                    }
                    ctx.table.shards[shard_idx]
                        .failovers
                        .fetch_add(1, Ordering::Relaxed);
                    AtomicU64::fetch_add(&ctx.stats.failovers, 1, Ordering::Relaxed);
                    pending.extend(benches);
                }
                Err(SubError::Busy) => {
                    ctx.table.shards[shard_idx]
                        .failovers
                        .fetch_add(1, Ordering::Relaxed);
                    AtomicU64::fetch_add(&ctx.stats.failovers, 1, Ordering::Relaxed);
                    excluded.push(shard_idx);
                    pending.extend(benches);
                }
                Err(SubError::Terminal(message)) => return Err(message),
            }
        }
    }
    let merge_started = Instant::now();
    let docs: Vec<Value> = replies
        .iter()
        .map(|r| {
            serde_json::value_from_str(&r.doc)
                .map_err(|e| format!("shard returned an unparseable doc: {e}"))
        })
        .collect::<Result<_, String>>()?;
    let doc = merge_metrics_docs(&selected, &docs)?;
    let tables: Vec<String> = replies.iter().map(|r| r.table.clone()).collect();
    let table = merge_sim_tables(&selected, &tables)?;
    if let Some(id) = spec.trace_id.as_deref() {
        if let Some(span) = ctx.telemetry.span(id, "merge", merge_started) {
            span.end();
        }
    }
    let specs = replies.first().map_or(0, |r| r.specs);
    Ok((doc, table, selected.len() as u64, specs))
}

fn handle_job(
    ctx: &RouterCtx,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    mut spec: JobSpec,
) -> io::Result<()> {
    let admitted = Instant::now();
    // Stamp a trace id before dispatch so every shard sub-job carries
    // the same one (encode_job forwards it).
    let trace_id = match &spec.trace_id {
        Some(id) => id.clone(),
        None => {
            let id = new_trace_id();
            spec.trace_id = Some(id.clone());
            id
        }
    };
    if let Some(span) = ctx.telemetry.span(&trace_id, "accept", admitted) {
        span.end();
    }
    ctx.telemetry
        .log()
        .event(LogLevel::Info, "job_admitted", Some(&trace_id), &[]);
    let ingest_started = Instant::now();
    let Some(upload) = read_upload(reader, writer)? else {
        // Already refused with an error frame.
        if let Some(span) = ctx.telemetry.span(&trace_id, "ingest", ingest_started) {
            span.outcome("error: upload refused").end();
        }
        return Ok(());
    };
    if let Some(span) = ctx.telemetry.span(&trace_id, "ingest", ingest_started) {
        span.lines(upload.lines).bytes(upload.bytes).end();
    }
    ctx.stats
        .upload_buffer_peak_bytes
        .fetch_max(upload.bytes, Ordering::Relaxed);
    AtomicU64::fetch_add(&ctx.stats.fleet_jobs, 1, Ordering::Relaxed);
    match run_fleet_job(ctx, &spec, &upload) {
        Ok((doc, table, benches, specs)) => {
            AtomicU64::fetch_add(&ctx.stats.fleet_jobs_completed, 1, Ordering::Relaxed);
            let reply_started = Instant::now();
            let line = encode_result(
                doc,
                &table,
                benches,
                specs,
                admitted.elapsed().as_micros() as u64,
            );
            let sent = send_line(writer, &line);
            if let Some(span) = ctx.telemetry.span(&trace_id, "reply", reply_started) {
                span.bytes(line.len() as u64 + 1)
                    .outcome(if sent.is_ok() { "ok" } else { "error: reply write failed" })
                    .end();
            }
            sent
        }
        Err(message) => {
            AtomicU64::fetch_add(&ctx.stats.fleet_jobs_failed, 1, Ordering::Relaxed);
            ctx.telemetry.log().event(
                LogLevel::Warn,
                "fleet_job_failed",
                Some(&trace_id),
                &[("message", Value::Str(message.clone()))],
            );
            let reply_started = Instant::now();
            let line = encode_error(&message);
            let sent = send_line(writer, &line);
            if let Some(span) = ctx.telemetry.span(&trace_id, "reply", reply_started) {
                span.bytes(line.len() as u64 + 1)
                    .outcome(&format!("error: {message}"))
                    .end();
            }
            sent
        }
    }
}

/// Counts lines forwarded to the client so a fetch proxy can append a
/// faithful `end` frame.
struct CountingWriter<W: Write> {
    inner: W,
    lines: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(data)?;
        self.lines += data[..n].iter().filter(|&&b| b == b'\n').count() as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Proxies a `fetch` to the benchmark's preferred shard, walking the
/// preference order while nothing has been forwarded yet. Once lines
/// have gone out, a failure turns into an `error` frame (the client's
/// `end`-count check rejects the truncated download anyway).
fn handle_fetch(
    ctx: &RouterCtx,
    writer: &mut impl Write,
    bench: &str,
    scale: u64,
) -> io::Result<()> {
    let mut last_error = "no live shards".to_string();
    for s in ctx.table.preference(bench) {
        let shard = &ctx.table.shards[s];
        if !shard.up.load(Ordering::Relaxed) {
            continue;
        }
        let mut counting = CountingWriter {
            inner: &mut *writer,
            lines: 0,
        };
        match ctx.shard_client(shard).fetch(bench, scale, &mut counting) {
            Ok(lines) => {
                shard.jobs_routed.fetch_add(1, Ordering::Relaxed);
                return send_line(writer, &encode_end(lines));
            }
            Err(e) if counting.lines == 0 => {
                last_error = format!("shard {}: {e}", shard.addr);
            }
            Err(e) => {
                return send_line(
                    writer,
                    &encode_error(&format!("download failed mid-stream: {e}")),
                );
            }
        }
    }
    send_line(writer, &encode_error(&last_error))
}

/// Stitches the fleet-wide span tree for one trace: the router's own
/// spans first, then every live shard's (each span already carries its
/// `node`, so the client can tell the layers apart).
fn fleet_trace(ctx: &RouterCtx, trace_id: &str) -> Value {
    let mut spans: Vec<Value> = ctx
        .telemetry
        .spans_for(trace_id)
        .iter()
        .map(Span::to_value)
        .collect();
    for shard in &ctx.table.shards {
        if !shard.up.load(Ordering::Relaxed) {
            continue;
        }
        if let Ok(Reply::Trace { doc, .. }) = ctx.shard_client(shard).trace(trace_id) {
            if let Ok(Value::Array(items)) = serde_json::value_from_str(&doc) {
                spans.extend(items);
            }
        }
    }
    Value::Array(spans)
}

/// The router's own metrics in Prometheus text exposition format.
/// Shard-side job metrics stay on the shards (scrape them directly or
/// through the summed `stats` frame); this view is routing health.
fn router_metrics(ctx: &RouterCtx) -> String {
    let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
    let (up, down) = ctx.table.shards.iter().fold((0u64, 0u64), |(u, d), s| {
        if s.up.load(Ordering::Relaxed) {
            (u + 1, d)
        } else {
            (u, d + 1)
        }
    });
    let mut p = PromText::new();
    p.gauge(
        "gencache_uptime_ms",
        "Milliseconds since the router started.",
        ctx.telemetry.uptime_ms(),
    );
    p.gauge("gencache_shards_up", "Backends currently marked healthy.", up);
    p.gauge("gencache_shards_down", "Backends currently marked down.", down);
    p.counter(
        "gencache_router_connections_total",
        "Connections accepted by the router.",
        load(&ctx.stats.connections),
    );
    p.counter(
        "gencache_fleet_jobs_total",
        "Fleet jobs admitted past upload.",
        load(&ctx.stats.fleet_jobs),
    );
    p.counter(
        "gencache_fleet_jobs_completed_total",
        "Fleet jobs merged and answered.",
        load(&ctx.stats.fleet_jobs_completed),
    );
    p.counter(
        "gencache_fleet_jobs_failed_total",
        "Fleet jobs that ended in an error frame.",
        load(&ctx.stats.fleet_jobs_failed),
    );
    p.counter(
        "gencache_subjobs_total",
        "Per-shard sub-jobs dispatched.",
        load(&ctx.stats.subjobs),
    );
    p.counter(
        "gencache_busy_retries_total",
        "Busy replies retried under the backoff policy.",
        load(&ctx.stats.busy_retries),
    );
    p.counter(
        "gencache_failovers_total",
        "Sub-jobs re-routed to another shard.",
        load(&ctx.stats.failovers),
    );
    p.gauge(
        "gencache_upload_buffer_peak_bytes",
        "Largest single job upload buffered in router memory.",
        load(&ctx.stats.upload_buffer_peak_bytes),
    );
    let row = |f: &dyn Fn(&Shard) -> u64| -> Vec<(String, u64)> {
        ctx.table
            .shards
            .iter()
            .map(|s| (format!("addr=\"{}\"", prom_label_escape(&s.addr)), f(s)))
            .collect()
    };
    p.gauge_rows(
        "gencache_shard_up",
        "Per-shard health (1 = up).",
        &row(&|s| u64::from(s.up.load(Ordering::Relaxed))),
    );
    p.gauge_rows(
        "gencache_shard_last_ping_us",
        "Per-shard round trip of the last successful health ping.",
        &row(&|s| s.last_ping_us.load(Ordering::Relaxed)),
    );
    p.gauge_rows(
        "gencache_shard_jobs_routed",
        "Per-shard sub-jobs answered successfully.",
        &row(&|s| s.jobs_routed.load(Ordering::Relaxed)),
    );
    p.into_string()
}

fn field<'v>(doc: &'v Value, name: &str) -> Option<&'v Value> {
    doc.as_object()?
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
}

/// The counters summed across shards into the fleet view — the same
/// keys, in the same order, as one daemon's stats document.
const FLEET_COUNTERS: [&str; 11] = [
    "workers",
    "queue_depth",
    "in_flight",
    "connections",
    "jobs_accepted",
    "jobs_completed",
    "jobs_rejected",
    "jobs_failed",
    "jobs_panicked",
    "bytes_ingested",
    "lines_served",
];

/// Aggregates every live shard's stats into one fleet document:
/// counters summed, latency histograms merged exactly, plus the
/// router's own counters and the shard table.
fn fleet_stats(ctx: &RouterCtx) -> Value {
    let mut sums = [0u64; FLEET_COUNTERS.len()];
    let mut latency = Log2Histogram::new();
    for shard in &ctx.table.shards {
        if !shard.up.load(Ordering::Relaxed) {
            continue;
        }
        let doc = match ctx.shard_client(shard).stats() {
            Ok(Reply::Stats { doc }) => doc,
            _ => {
                shard.up.store(false, Ordering::Relaxed);
                continue;
            }
        };
        let Ok(doc) = serde_json::value_from_str(&doc) else {
            continue;
        };
        for (i, name) in FLEET_COUNTERS.iter().enumerate() {
            if let Some(Value::UInt(n)) = field(&doc, name) {
                sums[i] += n;
            }
        }
        if let Some(h) = field(&doc, "latency_us") {
            if let Ok(h) = Log2Histogram::from_value(h) {
                latency.merge(&h);
            }
        }
    }
    let get = |c: &AtomicU64| Value::UInt(c.load(Ordering::Relaxed));
    let (up, down) =
        ctx.table.shards.iter().fold((0u64, 0u64), |(up, down), s| {
            if s.up.load(Ordering::Relaxed) {
                (up + 1, down)
            } else {
                (up, down + 1)
            }
        });
    let mut pairs: Vec<(String, Value)> = FLEET_COUNTERS
        .iter()
        .zip(sums)
        .map(|(name, n)| ((*name).to_string(), Value::UInt(n)))
        .collect();
    pairs.push((
        "uptime_ms".to_string(),
        Value::UInt(ctx.telemetry.uptime_ms()),
    ));
    pairs.push(("latency_us".to_string(), latency.to_value()));
    pairs.push((
        "router".to_string(),
        Value::Object(vec![
            ("connections".to_string(), get(&ctx.stats.connections)),
            ("fleet_jobs".to_string(), get(&ctx.stats.fleet_jobs)),
            (
                "fleet_jobs_completed".to_string(),
                get(&ctx.stats.fleet_jobs_completed),
            ),
            (
                "fleet_jobs_failed".to_string(),
                get(&ctx.stats.fleet_jobs_failed),
            ),
            ("subjobs".to_string(), get(&ctx.stats.subjobs)),
            ("busy_retries".to_string(), get(&ctx.stats.busy_retries)),
            ("failovers".to_string(), get(&ctx.stats.failovers)),
            (
                "upload_buffer_peak_bytes".to_string(),
                get(&ctx.stats.upload_buffer_peak_bytes),
            ),
            ("shards_up".to_string(), Value::UInt(up)),
            ("shards_down".to_string(), Value::UInt(down)),
        ]),
    ));
    pairs.push(("shards".to_string(), ctx.table.doc()));
    Value::Object(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn preference_is_deterministic_and_covers_every_shard() {
        let table = ShardTable::new(&addrs(5), 32);
        for key in ["word", "solitaire", "gcc", "anything-at-all"] {
            let a = table.preference(key);
            let b = table.preference(key);
            assert_eq!(a, b, "preference must be stable");
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "all shards, each once");
        }
    }

    #[test]
    fn routing_spreads_keys_across_shards() {
        let table = ShardTable::new(&addrs(3), 32);
        let mut counts = [0usize; 3];
        for i in 0..300 {
            let s = table.route(&format!("bench-{i}"), &[]).unwrap();
            counts[s] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 30, "shard {i} got only {c}/300 keys — ring is unbalanced");
        }
    }

    #[test]
    fn down_shards_are_skipped_and_only_their_keys_move() {
        let table = ShardTable::new(&addrs(4), 32);
        let keys: Vec<String> = (0..200).map(|i| format!("bench-{i}")).collect();
        let before: Vec<usize> = keys.iter().map(|k| table.route(k, &[]).unwrap()).collect();
        table.shards[2].up.store(false, Ordering::Relaxed);
        for (k, &was) in keys.iter().zip(&before) {
            let now = table.route(k, &[]).unwrap();
            assert_ne!(now, 2, "down shard must not be routed to");
            if was != 2 {
                assert_eq!(now, was, "healthy placements must not move");
            }
        }
        table.shards[2].up.store(true, Ordering::Relaxed);
        let after: Vec<usize> = keys.iter().map(|k| table.route(k, &[]).unwrap()).collect();
        assert_eq!(after, before, "mark-up restores the original placement");
    }

    #[test]
    fn excluded_shards_route_like_down_shards() {
        let table = ShardTable::new(&addrs(2), 32);
        let s = table.route("word", &[]).unwrap();
        let other = table.route("word", &[s]).unwrap();
        assert_ne!(s, other);
        assert_eq!(table.route("word", &[0, 1]), None);
    }

    #[test]
    fn bind_requires_backends() {
        let err = ShardRouter::bind(&ShardConfig::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
