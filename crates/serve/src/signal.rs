//! SIGTERM/SIGINT → a process-wide shutdown flag, with no libc crate.
//!
//! The container bakes in only the Rust toolchain, so instead of a
//! signal-handling dependency this declares the one libc symbol the
//! daemon needs. The handler does the one thing that is
//! async-signal-safe: store to an atomic. The accept loop polls the
//! flag (the listener runs non-blocking) and drains gracefully.
//!
//! The flag is process-global because signals are; in-process tests
//! never touch it and stop their servers through the per-server
//! [`shutdown_flag`](crate::Server::shutdown_flag) instead.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Routes SIGTERM and SIGINT to the shutdown flag. Call once at daemon
/// startup, before accepting connections.
pub fn install_handlers() {
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

/// Whether a shutdown signal has been delivered.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}
