//! End-to-end pipeline benchmark: record a scaled-down benchmark through
//! the DBT frontend, then replay its log into the Figure 9 comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use gencache_sim::{compare_figure9, record};
use gencache_workloads::benchmark;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let profile = benchmark("gzip").expect("known benchmark").scaled_down(4);
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("record_gzip_div4", |b| {
        b.iter(|| black_box(record(&profile).expect("plans")));
    });
    let run = record(&profile).expect("plans");
    group.bench_function("replay_figure9_gzip_div4", |b| {
        b.iter(|| black_box(compare_figure9(&run.log)));
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
