//! Microbenchmarks of the cache models: access cost on a churn-heavy
//! stream for the unified baseline and the generational hierarchy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gencache_cache::{TraceId, TraceRecord};
use gencache_core::{
    CacheModel, GenerationalConfig, GenerationalModel, PromotionPolicy, Proportions, UnifiedModel,
};
use gencache_program::{Addr, Time};
use std::hint::black_box;

fn rec(id: u64) -> TraceRecord {
    TraceRecord::new(TraceId::new(id), 242, Addr::new(0x1000 + id))
}

/// A mixed stream: 70% re-accesses of a hot set, 30% fresh traces.
fn drive(model: &mut dyn CacheModel, step: &mut u64) {
    *step += 1;
    let id = if *step % 10 < 7 {
        *step % 64
    } else {
        1000 + *step
    };
    black_box(model.on_access(rec(id), Time::from_micros(*step)));
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_access");
    group.bench_function(BenchmarkId::from_parameter("unified"), |b| {
        let mut model = UnifiedModel::new(64 * 1024);
        let mut step = 0u64;
        b.iter(|| drive(&mut model, &mut step));
    });
    for (label, proportions, policy) in [
        (
            "gen_45_10_45_hit1",
            Proportions::best_overall(),
            PromotionPolicy::OnHit { hits: 1 },
        ),
        (
            "gen_33_33_33_ev10",
            Proportions::even_thirds(),
            PromotionPolicy::OnEviction { threshold: 10 },
        ),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut model =
                GenerationalModel::new(GenerationalConfig::new(64 * 1024, proportions, policy));
            let mut step = 0u64;
            b.iter(|| drive(&mut model, &mut step));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
