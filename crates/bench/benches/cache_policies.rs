//! Microbenchmarks of the local cache policies: steady-state insertion
//! (with evictions) and hit-path touch cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gencache_cache::{
    CodeCache, FlushCache, LruCache, PseudoCircularCache, TraceId, TraceRecord, UnboundedCache,
};
use gencache_program::{Addr, Time};
use std::hint::black_box;

type CacheCtor = fn() -> Box<dyn CodeCache>;

fn rec(id: u64) -> TraceRecord {
    TraceRecord::new(TraceId::new(id), 242, Addr::new(0x1000 + id))
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_with_eviction");
    let make: [(&str, CacheCtor); 4] = [
        ("pseudo_circular", || {
            Box::new(PseudoCircularCache::new(64 * 1024))
        }),
        ("lru", || Box::new(LruCache::new(64 * 1024))),
        ("flush", || Box::new(FlushCache::new(64 * 1024))),
        ("unbounded", || Box::new(UnboundedCache::new())),
    ];
    for (name, ctor) in make {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut cache = ctor();
            let mut id = 0u64;
            b.iter(|| {
                id += 1;
                black_box(cache.insert(rec(id), Time::from_micros(id)).is_ok());
            });
        });
    }
    group.finish();
}

fn bench_touch(c: &mut Criterion) {
    let mut group = c.benchmark_group("touch_hit");
    let resident = 200u64;
    let make: [(&str, CacheCtor); 3] = [
        ("pseudo_circular", || {
            Box::new(PseudoCircularCache::new(64 * 1024))
        }),
        ("lru", || Box::new(LruCache::new(64 * 1024))),
        ("flush", || Box::new(FlushCache::new(64 * 1024))),
    ];
    for (name, ctor) in make {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut cache = ctor();
            for id in 0..resident {
                cache.insert(rec(id), Time::ZERO).unwrap();
            }
            let mut id = 0u64;
            b.iter(|| {
                id = (id + 1) % resident;
                black_box(cache.touch(TraceId::new(id), Time::from_micros(id)));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_touch);
criterion_main!(benches);
