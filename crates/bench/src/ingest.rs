//! Bounded-memory ingestion of `gencache-events` exports, and the
//! shared what-if simulation job runner.
//!
//! Three consumers drive the same machinery: the offline `simulate`
//! binary (file or stdin), the `gencache-serve` daemon (lines arriving
//! over TCP through a bounded channel), and tests. [`StreamIngest`]
//! consumes an export **one line at a time** and keeps only
//!
//! * the first-seen model stream's reconstructed frontend trace per
//!   benchmark (the reference), and
//! * an O(1) verification cursor per additional model stream,
//!
//! so peak memory is O(reconstructed frontend trace + per-trace size
//! maps), never O(event-stream length) — the raw events (hits, misses,
//! insertions, evictions, promotions…) are inverted on the fly by
//! [`TraceRebuilder`] and dropped. Cross-stream verification is the same
//! invariant the offline simulator enforces: every model stream of a
//! benchmark must reconstruct the *identical* frontend trace, else the
//! export mixes runs.
//!
//! [`run_sim_job`] then replays the recovered traces against a spec
//! list. The serve daemon and the offline tool both assemble their
//! metrics documents through [`metrics_doc`], so a served reply is
//! byte-identical to `simulate --metrics-out` on the same export.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::sync::atomic::{AtomicBool, Ordering};

use gencache_obs::{
    oracle_replay, parse_stream_line, CostReport, MetricsReport, NextUseIndex, OracleResult,
    RegretReport, RunMeta, SimTrace, StreamLine, TraceRebuilder, WindowReport, METRICS_SCHEMA,
    METRICS_VERSION,
};
use gencache_core::SwitchReport;
use gencache_sim::par::par_map;
use gencache_sim::report::TextTable;
use gencache_sim::{
    parse_spec, policy_grid, proportion_grid, simulate_costs, simulate_metrics, simulate_regret,
    simulate_regret_top, simulate_switches, simulate_windows, trace_to_log, AccessLog, ModelSpec,
    SimSpec, SimulatedSpec,
};
use serde::{Deserialize, Value};

use crate::{export_specs, metrics_doc, sample_interval, SpecReports};

/// Opens `path` for line reading, with `-` meaning stdin — so exports
/// can be piped (`gencache-client fetch … | simulate --events -`)
/// without temp files.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be opened.
pub fn open_lines(path: &str) -> io::Result<Box<dyn BufRead>> {
    if path == "-" {
        Ok(Box::new(BufReader::new(io::stdin())))
    } else {
        Ok(Box::new(BufReader::new(File::open(path)?)))
    }
}

/// How one model stream relates to its benchmark's reference trace.
enum ModelRole {
    /// First stream seen for the benchmark: its ops *are* the reference.
    Builder,
    /// Later stream: verified op-by-op against the reference with a
    /// cursor — O(1) extra memory per stream.
    Checker { cursor: usize },
}

/// Ingestion state for one model stream.
struct ModelState {
    rebuilder: TraceRebuilder,
    role: ModelRole,
}

/// Ingestion state for one benchmark.
#[derive(Default)]
struct BenchIngest {
    models: Vec<String>,
    meta: BTreeMap<String, RunMeta>,
    reference: SimTrace,
    states: BTreeMap<String, ModelState>,
}

/// Incremental, bounded-memory parser for a v2 `gencache-events`
/// export. Feed lines with [`push_line`](StreamIngest::push_line), then
/// convert with [`into_inputs`](StreamIngest::into_inputs).
#[derive(Default)]
pub struct StreamIngest {
    saw_header: bool,
    lines: u64,
    bytes: u64,
    order: Vec<String>,
    benches: BTreeMap<String, BenchIngest>,
    /// The `(source, model)` stream currently delivering events; a
    /// previously-seen stream reappearing after another means the upload
    /// interleaves streams, which the O(1) cursor verification cannot
    /// process — caught here with a clear error instead of a confusing
    /// op-by-op divergence report.
    active: Option<(String, String)>,
}

impl std::fmt::Debug for StreamIngest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamIngest")
            .field("lines", &self.lines)
            .field("bytes", &self.bytes)
            .field("benchmarks", &self.order)
            .finish_non_exhaustive()
    }
}

impl StreamIngest {
    /// An ingest with nothing consumed yet.
    pub fn new() -> Self {
        StreamIngest::default()
    }

    /// Non-empty lines consumed so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Bytes consumed so far (including line terminators).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Whether a schema header line has been seen yet.
    pub fn has_header(&self) -> bool {
        self.saw_header
    }

    /// Consumes one export line. Blank lines are counted as bytes but
    /// otherwise ignored.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed line, an invalid header,
    /// or a cross-stream divergence (streams that cannot come from the
    /// same frontend run).
    pub fn push_line(&mut self, line: &str) -> Result<(), String> {
        self.bytes += line.len() as u64 + 1;
        if line.trim().is_empty() {
            return Ok(());
        }
        self.lines += 1;
        match parse_stream_line(line)? {
            StreamLine::Header(header) => {
                header.validate()?;
                self.saw_header = true;
            }
            StreamLine::Meta(meta) => {
                let bench = bench_entry(&mut self.order, &mut self.benches, &meta.source);
                if !bench.models.contains(&meta.model) {
                    bench.models.push(meta.model.clone());
                }
                bench.meta.insert(meta.model.clone(), meta);
            }
            StreamLine::Event(record) => {
                let source = record.source;
                let model = record.model;
                let bench = bench_entry(&mut self.order, &mut self.benches, &source);
                let key = (source.clone(), model.clone());
                if self.active.as_ref() != Some(&key) {
                    if bench.states.contains_key(&model) {
                        return Err(format!(
                            "{source}: stream for model {model:?} reappears after \
                             another stream — the upload interleaves (source, model) \
                             streams; lines must stay grouped per stream exactly as \
                             the exporter writes them"
                        ));
                    }
                    self.active = Some(key);
                }
                if !bench.models.contains(&model) {
                    bench.models.push(model.clone());
                }
                if !bench.states.contains_key(&model) {
                    // The first stream that produces events builds the
                    // reference; everything after verifies against it.
                    let role = if bench
                        .states
                        .values()
                        .any(|s| matches!(s.role, ModelRole::Builder))
                    {
                        ModelRole::Checker { cursor: 0 }
                    } else {
                        ModelRole::Builder
                    };
                    bench.states.insert(
                        model.clone(),
                        ModelState {
                            rebuilder: TraceRebuilder::new(),
                            role,
                        },
                    );
                }
                let state = bench.states.get_mut(&model).expect("just inserted");
                let op = state
                    .rebuilder
                    .push(&record.event)
                    .map_err(|e| format!("{source} [{model}]: {e}"))?;
                if let Some(op) = op {
                    match &mut state.role {
                        ModelRole::Builder => bench.reference.ops.push(op),
                        ModelRole::Checker { cursor } => {
                            if bench.reference.ops.get(*cursor) != Some(&op) {
                                return Err(format!(
                                    "{source}: stream for {model:?} diverges from the \
                                     benchmark's reference frontend trace at op {} — the \
                                     export mixes runs (or interleaves streams out of \
                                     export order)",
                                    *cursor
                                ));
                            }
                            *cursor += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Finishes ingestion: checks every verified stream covered the full
    /// reference trace and converts each selected benchmark into a
    /// simulation input.
    ///
    /// `bench` restricts to one benchmark; `model` picks which stream's
    /// run metadata fixes capacity/duration/phases (default: the
    /// first-appearing model); `capacity` overrides the budget (and is
    /// required for pre-v2 exports with no metadata).
    ///
    /// # Errors
    ///
    /// Returns a description of an empty export, a missing
    /// benchmark/model, a truncated verified stream, or missing run
    /// metadata without a `capacity` override.
    pub fn into_inputs(
        self,
        bench: Option<&str>,
        model: Option<&str>,
        capacity: Option<u64>,
    ) -> Result<Vec<SimJobInput>, String> {
        if self.order.is_empty() {
            return Err("export contains no event streams".to_string());
        }
        let mut inputs = Vec::new();
        for name in &self.order {
            if bench.is_some_and(|want| want != name) {
                continue;
            }
            let b = &self.benches[name];
            let chosen = match model {
                Some(label) => {
                    if !b.states.contains_key(label) {
                        return Err(format!(
                            "{name}: no stream for model {label:?}; available: {}",
                            b.models.join(", ")
                        ));
                    }
                    label.to_string()
                }
                None => b.models.first().expect("non-empty bench").clone(),
            };
            for (m, state) in &b.states {
                if let ModelRole::Checker { cursor } = state.role {
                    if cursor != b.reference.ops.len() {
                        return Err(format!(
                            "{name}: streams reconstruct different frontend traces \
                             ({} vs {} ops for {m:?}) — the export mixes runs",
                            b.reference.ops.len(),
                            cursor
                        ));
                    }
                }
            }
            let meta = b.meta.get(&chosen);
            let peak = match (meta, capacity) {
                (Some(m), _) => m.peak_trace_bytes,
                // Pre-v2 stream: peak footprint unknown; an explicit
                // capacity pins the budget and the peak is only cosmetic.
                (None, Some(capacity)) => capacity * 2,
                (None, None) => {
                    return Err(format!(
                        "{name}: stream carries no run metadata (pre-v2 export); \
                         pass --capacity to fix the cache budget"
                    ))
                }
            };
            let duration_us = meta.map_or_else(
                || {
                    b.reference
                        .ops
                        .iter()
                        .filter_map(|op| match *op {
                            gencache_obs::TraceOp::Create { time, .. }
                            | gencache_obs::TraceOp::Access { time, .. }
                            | gencache_obs::TraceOp::Invalidate { time, .. } => {
                                Some(time.as_micros())
                            }
                            _ => None,
                        })
                        .max()
                        .map_or(0, |t| t + 1)
                },
                |m| m.duration_us,
            );
            let cap = capacity.unwrap_or_else(|| (peak / 2).max(1));
            let phases = meta.map_or(1, |m| m.phases.max(1));
            let trace = self.benches[name].reference.clone();
            let log = trace_to_log(&trace, name.clone(), duration_us, peak);
            inputs.push(SimJobInput {
                name: name.clone(),
                trace,
                log,
                capacity: cap,
                phases,
            });
        }
        if inputs.is_empty() {
            return Err(match bench {
                Some(want) => format!(
                    "benchmark {want:?} not in export; available: {}",
                    self.order.join(", ")
                ),
                None => "no benchmarks selected".to_string(),
            });
        }
        Ok(inputs)
    }
}

fn bench_entry<'a>(
    order: &mut Vec<String>,
    benches: &'a mut BTreeMap<String, BenchIngest>,
    source: &str,
) -> &'a mut BenchIngest {
    if !benches.contains_key(source) {
        order.push(source.to_string());
        benches.insert(source.to_string(), BenchIngest::default());
    }
    benches.get_mut(source).expect("just inserted")
}

/// One benchmark ready to simulate: its recovered frontend trace plus
/// the replay parameters the events alone cannot supply.
#[derive(Debug)]
pub struct SimJobInput {
    /// Benchmark name (the export's `source`).
    pub name: String,
    /// The recovered frontend request trace.
    pub trace: SimTrace,
    /// The trace re-synthesized as a replayable access log.
    pub log: AccessLog,
    /// Cache budget in bytes.
    pub capacity: u64,
    /// Cost-attribution phase count.
    pub phases: u32,
}

/// Resolves a simulation spec list: explicit labels, plus the §6 sweep
/// grid under `grid`, defaulting to the live export's configurations.
/// Deduped by label, keeping first appearance.
///
/// # Errors
///
/// Returns the parse error of the first malformed label.
pub fn resolve_sim_specs(labels: &[String], grid: bool) -> Result<Vec<SimSpec>, String> {
    let mut specs = Vec::new();
    for label in labels {
        specs.push(parse_spec(label)?);
    }
    if grid {
        specs.push(SimSpec::Model(ModelSpec::Unified));
        for proportions in proportion_grid() {
            for policy in policy_grid() {
                specs.push(SimSpec::Model(ModelSpec::Generational {
                    proportions,
                    policy,
                }));
            }
        }
    }
    if specs.is_empty() {
        for (_, spec) in export_specs() {
            specs.push(SimSpec::Model(spec));
        }
    }
    let mut seen = Vec::new();
    specs.retain(|s| {
        let label = s.label();
        if seen.contains(&label) {
            false
        } else {
            seen.push(label);
            true
        }
    });
    Ok(specs)
}

/// One simulated benchmark: every spec's outcome plus the optional
/// oracle lower bound.
#[derive(Debug)]
pub struct BenchSim {
    /// Benchmark name.
    pub name: String,
    /// Frontend ops replayed.
    pub ops: u64,
    /// Cache budget in bytes.
    pub capacity: u64,
    /// Cost-attribution phase count.
    pub phases: u32,
    /// One outcome per spec, in spec order.
    pub sims: Vec<SimulatedSpec>,
    /// Replay wall-clock per spec cell in microseconds, in spec order —
    /// telemetry only, never part of the metrics document.
    pub cell_us: Vec<u64>,
    /// Belady-style furthest-next-use lower bound, when requested.
    pub oracle: Option<OracleResult>,
}

/// A complete simulation job outcome, in input order.
#[derive(Debug)]
pub struct SimJobOutput {
    /// Spec labels, in spec order (the metrics document's columns).
    pub labels: Vec<String>,
    /// Per-benchmark outcomes.
    pub benches: Vec<BenchSim>,
}

/// Per-job analysis knobs shared by every `run_sim_job` caller: the
/// offline `simulate` tool, the serve daemon, and the fleet router all
/// thread the same options through, so a served reply stays
/// byte-identical to the offline document for the same knob values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimJobOptions {
    /// Replay the Belady oracle per benchmark and attach a regret
    /// attribution to every cell.
    pub oracle: bool,
    /// Fold every cell's event stream into a windowed time-series
    /// report with drift annotations.
    pub windows: bool,
    /// Window width in accesses for the `windows` report. `None` keeps
    /// the default: the timeline sample interval (≈ accesses / 64).
    pub window_width: Option<u64>,
    /// Cap on per-trace regret contributors kept per phase and in the
    /// run total. `None` keeps the default cap.
    pub regret_top: Option<usize>,
}

impl SimJobOptions {
    /// Options with one knob set: `oracle`, everything else default —
    /// the most common caller shape.
    pub fn oracle(oracle: bool) -> Self {
        SimJobOptions {
            oracle,
            ..SimJobOptions::default()
        }
    }
}

/// Runs the benchmark × spec cross product across `jobs` workers,
/// reassembling in input order — bit-identical for any worker count,
/// and byte-identical whether driven by the offline tool or the serve
/// daemon. When `options.windows` is set, every cell also folds its
/// event stream into a windowed time-series report with drift
/// annotations (window width = `options.window_width`, defaulting to
/// the timeline sample interval). Adaptive cells additionally replay
/// their policy controller and attach its switch report.
///
/// `cancel` is polled between cells: once set (deadline expiry,
/// shutdown), remaining cells are skipped and the job returns an error
/// instead of a partial result.
///
/// # Errors
///
/// Returns `"job canceled"`-style text when `cancel` fired.
pub fn run_sim_job(
    inputs: &[SimJobInput],
    specs: &[SimSpec],
    options: SimJobOptions,
    jobs: usize,
    cancel: Option<&AtomicBool>,
) -> Result<SimJobOutput, String> {
    let canceled = || cancel.is_some_and(|c| c.load(Ordering::Relaxed));
    let cells: Vec<(usize, SimSpec)> = inputs
        .iter()
        .enumerate()
        .flat_map(|(i, _)| specs.iter().map(move |&s| (i, s)))
        .collect();
    // Under --oracle every cell also gets a Belady-regret walk, which
    // needs the clairvoyant next-use index of its input's frontend
    // trace. Built once per input, shared by all of that input's cells.
    let indexes: Vec<Option<NextUseIndex>> = inputs
        .iter()
        .map(|input| options.oracle.then(|| NextUseIndex::build(&input.trace)))
        .collect();
    let simulated: Vec<Option<(SimulatedSpec, u64)>> = par_map(&cells, jobs, |&(i, spec)| {
        if canceled() {
            return None;
        }
        let started = std::time::Instant::now();
        let input = &inputs[i];
        let every = sample_interval(&input.log);
        let width = options.window_width.unwrap_or(every).max(1);
        let (result, metrics) = simulate_metrics(&input.log, spec, input.capacity, every);
        let (_, costs) = simulate_costs(&input.log, spec, input.capacity, input.phases);
        let regret = indexes[i].as_ref().map(|index| match options.regret_top {
            Some(top) => {
                simulate_regret_top(&input.log, spec, input.capacity, input.phases, index, top).1
            }
            None => simulate_regret(&input.log, spec, input.capacity, input.phases, index).1,
        });
        let windows = options
            .windows
            .then(|| simulate_windows(&input.log, spec, input.capacity, width).1);
        let switches = simulate_switches(&input.log, spec, input.capacity);
        let sim = SimulatedSpec {
            label: spec.label(),
            result,
            metrics,
            costs,
            regret,
            windows,
            switches,
        };
        Some((sim, started.elapsed().as_micros() as u64))
    });
    if canceled() || simulated.iter().any(Option::is_none) {
        return Err("job canceled before completion (deadline or shutdown)".to_string());
    }
    let (simulated, cell_us): (Vec<SimulatedSpec>, Vec<u64>) =
        simulated.into_iter().flatten().unzip();
    let oracles: Vec<Option<OracleResult>> = if options.oracle {
        let results = par_map(inputs, jobs, |input| {
            if canceled() {
                None
            } else {
                Some(oracle_replay(&input.trace, input.capacity))
            }
        });
        if results.iter().any(Option::is_none) {
            return Err("job canceled before completion (deadline or shutdown)".to_string());
        }
        results
    } else {
        inputs.iter().map(|_| None).collect()
    };
    let per_bench = specs.len().max(1);
    let benches = inputs
        .iter()
        .zip(simulated.chunks(per_bench))
        .zip(cell_us.chunks(per_bench))
        .zip(oracles)
        .map(|(((input, sims), cells), oracle)| BenchSim {
            name: input.name.clone(),
            ops: input.trace.ops.len() as u64,
            capacity: input.capacity,
            phases: input.phases,
            sims: sims.to_vec(),
            cell_us: cells.to_vec(),
            oracle,
        })
        .collect();
    Ok(SimJobOutput {
        labels: specs.iter().map(|s| s.label()).collect(),
        benches,
    })
}

/// Assembles the job's metrics document — the same
/// [`metrics_doc`] the live export and the offline simulator use, so
/// every consumer's document is byte-comparable.
pub fn sim_metrics_doc(out: &SimJobOutput) -> Value {
    let benchmarks: Vec<(String, Vec<SpecReports>)> = out
        .benches
        .iter()
        .map(|b| {
            let reports = b
                .sims
                .iter()
                .map(|sim| {
                    (
                        sim.metrics.clone(),
                        sim.costs.clone(),
                        None,
                        sim.regret.clone(),
                        sim.windows.clone(),
                        sim.switches.clone(),
                    )
                })
                .collect();
            (b.name.clone(), reports)
        })
        .collect();
    metrics_doc(&out.labels, &benchmarks)
}

/// Renders the human-readable per-benchmark result tables (the offline
/// tool's stdout and the client's `--table` display).
pub fn render_sim_tables(out: &SimJobOutput) -> String {
    use std::fmt::Write as _;
    let mut text = String::new();
    for bench in &out.benches {
        let _ = writeln!(
            text,
            "\n=== {}: {} ops, capacity {} bytes, {} phases ===",
            bench.name, bench.ops, bench.capacity, bench.phases,
        );
        let with_regret = bench.sims.iter().any(|s| s.regret.is_some());
        if with_regret {
            let mut table = TextTable::new([
                "spec", "accesses", "hits", "misses", "miss%", "Minstr", "regret",
            ]);
            for sim in &bench.sims {
                table.row([
                    sim.label.clone(),
                    sim.metrics.accesses.to_string(),
                    sim.metrics.hits.to_string(),
                    sim.metrics.misses.to_string(),
                    format!("{:.2}", sim.metrics.miss_rate() * 100.0),
                    format!("{:.2}", sim.costs.total.total() / 1e6),
                    sim.regret
                        .as_ref()
                        .map_or_else(|| "-".to_string(), |r| r.total.regret_sum.to_string()),
                ]);
            }
            if let Some(oracle) = &bench.oracle {
                table.row([
                    "oracle".to_string(),
                    oracle.accesses.to_string(),
                    oracle.hits.to_string(),
                    oracle.misses.to_string(),
                    format!("{:.2}", oracle.miss_rate() * 100.0),
                    "lower bound".to_string(),
                    "0".to_string(),
                ]);
            }
            text.push_str(&table.render());
            continue;
        }
        let mut table = TextTable::new(["spec", "accesses", "hits", "misses", "miss%", "Minstr"]);
        for sim in &bench.sims {
            table.row([
                sim.label.clone(),
                sim.metrics.accesses.to_string(),
                sim.metrics.hits.to_string(),
                sim.metrics.misses.to_string(),
                format!("{:.2}", sim.metrics.miss_rate() * 100.0),
                format!("{:.2}", sim.costs.total.total() / 1e6),
            ]);
        }
        if let Some(oracle) = &bench.oracle {
            table.row([
                "oracle".to_string(),
                oracle.accesses.to_string(),
                oracle.hits.to_string(),
                oracle.misses.to_string(),
                format!("{:.2}", oracle.miss_rate() * 100.0),
                "lower bound".to_string(),
            ]);
        }
        text.push_str(&table.render());
    }
    text
}

/// How a fleet router classifies one upload line for per-benchmark
/// routing (see `gencache-shard`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteClass {
    /// Blank — counted but never forwarded.
    Blank,
    /// The export's schema header — broadcast to every sub-upload.
    Header,
    /// A stream line belonging to the named benchmark (`source`).
    Stream(String),
}

/// Classifies an export line for routing. Fast path: export records
/// serialize `source` as their *first* key, so a prefix scan recovers
/// the routing key without JSON parsing; headers and anything unusual
/// fall back to the full parser so diagnostics match single-node ingest.
///
/// # Errors
///
/// Returns the same description single-node ingest would give for a
/// malformed line.
pub fn classify_line(line: &str) -> Result<RouteClass, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(RouteClass::Blank);
    }
    if let Some(rest) = trimmed.strip_prefix("{\"source\":\"") {
        if let Some(end) = rest.find('"') {
            if !rest[..end].contains('\\') {
                return Ok(RouteClass::Stream(rest[..end].to_string()));
            }
        }
    }
    match parse_stream_line(trimmed)? {
        StreamLine::Header(_) => Ok(RouteClass::Header),
        StreamLine::Meta(meta) => Ok(RouteClass::Stream(meta.source)),
        StreamLine::Event(record) => Ok(RouteClass::Stream(record.source)),
    }
}

fn doc_field<'a>(doc: &'a Value, key: &str) -> Option<&'a Value> {
    doc.as_object()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

/// Merges per-shard metrics documents back into the single document the
/// whole job would have produced on one node.
///
/// Every `(benchmark, label)` section is deserialized into its typed
/// report and the document is reassembled with [`metrics_doc`] with the
/// benchmarks in `order` (the upload's first-appearance order) — the
/// exact assembly single-node `simulate` performs. The vendored JSON
/// layer round-trips every number exactly (shortest-roundtrip floats,
/// native integers), so the merged document is **byte-identical** to
/// the single-node one.
///
/// # Errors
///
/// Returns a description when a document has the wrong schema, the
/// shards disagree on spec labels, a benchmark is missing, duplicated,
/// or unknown to `order`, or a section fails to deserialize.
pub fn merge_metrics_docs(order: &[String], docs: &[Value]) -> Result<Value, String> {
    let mut labels: Option<Vec<String>> = None;
    let mut sections: BTreeMap<String, Vec<SpecReports>> = BTreeMap::new();
    for doc in docs {
        match doc_field(doc, "schema") {
            Some(Value::Str(s)) if s == METRICS_SCHEMA => {}
            other => return Err(format!("shard doc has schema {other:?}, not {METRICS_SCHEMA:?}")),
        }
        match doc_field(doc, "version") {
            Some(Value::UInt(v)) if *v == u64::from(METRICS_VERSION) => {}
            other => {
                return Err(format!(
                    "shard doc has version {other:?}, not {METRICS_VERSION}"
                ))
            }
        }
        let suite = doc_field(doc, "suite")
            .and_then(Value::as_object)
            .ok_or("shard doc has no suite section")?;
        let doc_labels: Vec<String> = suite.iter().map(|(k, _)| k.clone()).collect();
        match &labels {
            None => labels = Some(doc_labels),
            Some(first) if *first == doc_labels => {}
            Some(first) => {
                return Err(format!(
                    "shards disagree on spec labels: {first:?} vs {doc_labels:?}"
                ))
            }
        }
        let labels = labels.as_ref().expect("just set");
        let benches = doc_field(doc, "benchmarks")
            .and_then(Value::as_array)
            .ok_or("shard doc has no benchmarks section")?;
        for bench in benches {
            let name = match doc_field(bench, "benchmark") {
                Some(Value::Str(name)) => name.clone(),
                other => return Err(format!("benchmark entry names {other:?}")),
            };
            let mut reports: Vec<SpecReports> = Vec::with_capacity(labels.len());
            for label in labels {
                let section = doc_field(bench, label)
                    .ok_or_else(|| format!("{name}: no section for spec {label:?}"))?;
                if doc_field(section, "sampled").is_some() {
                    return Err(format!(
                        "{name}/{label}: sampled sections cannot be fleet-merged"
                    ));
                }
                let metrics = doc_field(section, "metrics")
                    .ok_or_else(|| format!("{name}/{label}: no metrics"))
                    .and_then(|v| {
                        MetricsReport::from_value(v)
                            .map_err(|e| format!("{name}/{label}: bad metrics: {e}"))
                    })?;
                let costs = doc_field(section, "costs")
                    .ok_or_else(|| format!("{name}/{label}: no costs"))
                    .and_then(|v| {
                        CostReport::from_value(v)
                            .map_err(|e| format!("{name}/{label}: bad costs: {e}"))
                    })?;
                let regret = match doc_field(section, "regret") {
                    Some(v) => Some(
                        RegretReport::from_value(v)
                            .map_err(|e| format!("{name}/{label}: bad regret: {e}"))?,
                    ),
                    None => None,
                };
                let windows = match doc_field(section, "windows") {
                    Some(v) => Some(
                        WindowReport::from_value(v)
                            .map_err(|e| format!("{name}/{label}: bad windows: {e}"))?,
                    ),
                    None => None,
                };
                let switches = match doc_field(section, "switches") {
                    Some(v) => Some(
                        SwitchReport::from_value(v)
                            .map_err(|e| format!("{name}/{label}: bad switches: {e}"))?,
                    ),
                    None => None,
                };
                reports.push((metrics, costs, None, regret, windows, switches));
            }
            if sections.insert(name.clone(), reports).is_some() {
                return Err(format!("benchmark {name:?} appears in more than one shard doc"));
            }
        }
    }
    let labels = labels.ok_or("no shard documents to merge")?;
    let mut benchmarks: Vec<(String, Vec<SpecReports>)> = Vec::with_capacity(order.len());
    for name in order {
        let reports = sections
            .remove(name)
            .ok_or_else(|| format!("no shard produced benchmark {name:?}"))?;
        benchmarks.push((name.clone(), reports));
    }
    if let Some(extra) = sections.keys().next() {
        return Err(format!("shard docs contain unexpected benchmark {extra:?}"));
    }
    Ok(metrics_doc(&labels, &benchmarks))
}

/// Merges per-shard result tables (the human-readable rendering) back
/// into single-node order. Each benchmark's segment starts with the
/// `\n=== name: …` banner [`render_sim_tables`] writes, which is the
/// split point.
///
/// # Errors
///
/// Returns a description when a benchmark is missing, duplicated, or
/// unknown to `order`.
pub fn merge_sim_tables(order: &[String], tables: &[String]) -> Result<String, String> {
    let mut segments: BTreeMap<String, String> = BTreeMap::new();
    for table in tables {
        for seg in table.split("\n=== ") {
            if seg.is_empty() {
                continue;
            }
            let name = seg.split(':').next().unwrap_or_default();
            if name.is_empty() {
                return Err(format!("malformed result table segment {seg:?}"));
            }
            if segments
                .insert(name.to_string(), format!("\n=== {seg}"))
                .is_some()
            {
                return Err(format!(
                    "benchmark {name:?} appears in more than one shard table"
                ));
            }
        }
    }
    let mut text = String::new();
    for name in order {
        match segments.remove(name) {
            Some(seg) => text.push_str(&seg),
            None => return Err(format!("no shard table covers benchmark {name:?}")),
        }
    }
    if let Some(extra) = segments.keys().next() {
        return Err(format!("shard tables contain unexpected benchmark {extra:?}"));
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite_export(benches: usize, tag: &str) -> String {
        let mut opts = crate::HarnessOptions {
            scale: 64,
            suite: Some(gencache_workloads::Suite::Interactive),
            jobs: Some(1),
            ..crate::HarnessOptions::default()
        };
        let dir = std::env::temp_dir().join(format!(
            "gencache-ingest-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl").to_str().unwrap().to_string();
        opts.events_out = Some(path.clone());
        let runs = crate::record_all(&opts);
        crate::export_telemetry(&opts, &runs[..benches]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        text
    }

    fn tiny_export() -> String {
        suite_export(1, "one")
    }

    #[test]
    fn line_at_a_time_ingest_matches_bulk_reconstruction() {
        let text = tiny_export();
        let mut ingest = StreamIngest::new();
        for line in text.lines() {
            ingest.push_line(line).unwrap();
        }
        assert!(ingest.has_header());
        assert!(ingest.bytes() >= text.len() as u64);
        let inputs = ingest.into_inputs(None, None, None).unwrap();
        assert_eq!(inputs.len(), 1);
        assert!(inputs[0].trace.access_count() > 0);
        assert_eq!(inputs[0].log.access_count(), inputs[0].trace.access_count());
    }

    #[test]
    fn truncated_checker_stream_is_rejected() {
        let text = tiny_export();
        let mut ingest = StreamIngest::new();
        // Drop the final line (part of the second model's stream): the
        // checker cursor cannot reach the reference length.
        let lines: Vec<&str> = text.lines().collect();
        for line in &lines[..lines.len() - 1] {
            ingest.push_line(line).unwrap();
        }
        let err = ingest.into_inputs(None, None, None).unwrap_err();
        assert!(
            err.contains("different frontend traces"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn garbage_line_is_a_clean_error() {
        let mut ingest = StreamIngest::new();
        assert!(ingest.push_line("{not json").is_err());
        assert!(StreamIngest::new().push_line("[1,2,3]").is_err());
    }

    #[test]
    fn interleaved_streams_get_a_clear_error() {
        let text = tiny_export();
        let lines: Vec<&str> = text.lines().collect();
        // Replaying the first model's first event after the second
        // model's stream makes the first stream "reappear".
        let (first_event, first_model) = lines
            .iter()
            .find_map(|l| match parse_stream_line(l) {
                Ok(StreamLine::Event(r)) => Some((*l, r.model)),
                _ => None,
            })
            .expect("export has event lines");
        let mut ingest = StreamIngest::new();
        for line in &lines {
            ingest.push_line(line).unwrap();
        }
        let err = ingest.push_line(first_event).unwrap_err();
        assert!(err.contains("interleaves"), "unexpected error: {err}");
        assert!(
            err.contains(&first_model),
            "error does not name the offending stream: {err}"
        );
    }

    #[test]
    fn classify_line_routes_by_source() {
        let text = tiny_export();
        let mut saw_header = false;
        let mut saw_stream = false;
        for line in text.lines() {
            match classify_line(line).unwrap() {
                RouteClass::Header => saw_header = true,
                RouteClass::Stream(name) => {
                    assert!(!name.is_empty());
                    saw_stream = true;
                }
                RouteClass::Blank => {}
            }
        }
        assert!(saw_header && saw_stream);
        assert_eq!(classify_line("   ").unwrap(), RouteClass::Blank);
        assert!(classify_line("{not json").is_err());
    }

    #[test]
    fn fleet_merge_reassembles_byte_identical_docs() {
        let text = suite_export(2, "merge");
        let mut ingest = StreamIngest::new();
        for line in text.lines() {
            ingest.push_line(line).unwrap();
        }
        let mut inputs = ingest.into_inputs(None, None, None).unwrap();
        assert_eq!(inputs.len(), 2);
        let order: Vec<String> = inputs.iter().map(|i| i.name.clone()).collect();
        let specs = resolve_sim_specs(&[], false).unwrap();
        let whole = run_sim_job(&inputs, &specs, SimJobOptions::default(), 1, None).unwrap();
        let whole_doc = crate::value_to_json(&sim_metrics_doc(&whole));
        let whole_table = render_sim_tables(&whole);
        // Split the job as the fleet router would: one benchmark per
        // "shard", merged back in upload order.
        let second = inputs.split_off(1);
        let out_a = run_sim_job(&inputs, &specs, SimJobOptions::default(), 1, None).unwrap();
        let out_b = run_sim_job(&second, &specs, SimJobOptions::default(), 1, None).unwrap();
        let docs = [sim_metrics_doc(&out_b), sim_metrics_doc(&out_a)];
        let merged = merge_metrics_docs(&order, &docs).unwrap();
        assert_eq!(
            crate::value_to_json(&merged),
            whole_doc,
            "fleet-merged doc is not byte-identical"
        );
        let tables = [render_sim_tables(&out_b), render_sim_tables(&out_a)];
        assert_eq!(merge_sim_tables(&order, &tables).unwrap(), whole_table);
        // A missing benchmark is an error, not a silent gap.
        let err = merge_metrics_docs(&order, &docs[..1]).unwrap_err();
        assert!(err.contains("no shard produced"), "unexpected error: {err}");
    }

    #[test]
    fn adaptive_doc_is_jobs_invariant() {
        let text = suite_export(2, "adaptive-jobs");
        let mut ingest = StreamIngest::new();
        for line in text.lines() {
            ingest.push_line(line).unwrap();
        }
        let inputs = ingest.into_inputs(None, None, None).unwrap();
        let specs = resolve_sim_specs(
            &["adaptive".to_string(), "lru".to_string()],
            false,
        )
        .unwrap();
        let options = SimJobOptions {
            oracle: true,
            windows: true,
            window_width: Some(32),
            regret_top: Some(8),
        };
        let serial = run_sim_job(&inputs, &specs, options, 1, None).unwrap();
        let serial_doc = crate::value_to_json(&sim_metrics_doc(&serial));
        assert!(
            serial_doc.contains("\"switches\""),
            "adaptive spec must emit a switches section"
        );
        for jobs in [2, 8] {
            let par = run_sim_job(&inputs, &specs, options, jobs, None).unwrap();
            assert_eq!(
                crate::value_to_json(&sim_metrics_doc(&par)),
                serial_doc,
                "adaptive doc with {jobs} jobs diverged from serial"
            );
        }
    }

    #[test]
    fn canceled_job_returns_error_not_partial_output() {
        let text = tiny_export();
        let mut ingest = StreamIngest::new();
        for line in text.lines() {
            ingest.push_line(line).unwrap();
        }
        let inputs = ingest.into_inputs(None, None, None).unwrap();
        let specs = resolve_sim_specs(&[], false).unwrap();
        let cancel = AtomicBool::new(true);
        let err = run_sim_job(&inputs, &specs, SimJobOptions::default(), 1, Some(&cancel)).unwrap_err();
        assert!(err.contains("canceled"), "unexpected error: {err}");
    }
}
