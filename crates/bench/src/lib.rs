//! # gencache-bench
//!
//! The benchmark harness regenerating every table and figure of
//! *Generational Cache Management of Code Traces in Dynamic Optimization
//! Systems* (Hazelwood & Smith, MICRO 2003). Each `src/bin/` target
//! reproduces one artifact:
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `table1_benchmarks` | Table 1 — interactive benchmark roster |
//! | `table2_costs` | Table 2 — overhead cost model |
//! | `fig1_max_cache_size` | Figure 1 — unbounded cache sizes |
//! | `fig2_code_expansion` | Figure 2 — code expansion |
//! | `fig3_insertion_rate` | Figure 3 — trace insertion rates |
//! | `fig4_unmapped` | Figure 4 — unmapped-memory deletions |
//! | `fig6_lifetimes` | Figure 6 — trace lifetime histograms |
//! | `fig9_miss_rates` | Figure 9 — generational miss-rate reduction |
//! | `fig10_misses_eliminated` | Figure 10 — absolute misses eliminated |
//! | `fig11_overhead` | Figure 11 — instruction-overhead ratio |
//! | `sweep_proportions` | §6 proportions × threshold sweep |
//! | `ablate_local_policy` | §4 local-policy ablation (extension) |
//! | `ablate_probation` | §5.3 probation-cache ablation (extension) |
//! | `ablate_exceptions` | §4.2 undeletable-trace ablation (extension) |
//! | `explain` | one benchmark's event stream as a narrative (extension) |
//! | `delta` | phase-by-phase diff of two exported event streams (extension) |
//! | `simulate` | offline what-if replay of an exported stream (extension) |
//!
//! All binaries accept `--scale N` to divide every benchmark's footprint
//! by `N` (for quick smoke runs), `--suite spec|interactive` to limit
//! the benchmark set, and `--jobs N` to set the worker-thread count
//! (default: the `GENCACHE_JOBS` environment variable, then the
//! machine's available parallelism). Record and replay fan out across
//! benchmarks; output is deterministic and identical for every job
//! count. Observability flags: `--events-out` / `--metrics-out` /
//! `--sample N` / `--sample-seed S` / `--progress`. Memory flags:
//! `--stream` runs the figure pipeline through the bounded-channel
//! streamed record path (no full `AccessLog` is ever materialized;
//! peak memory is O(channel depth + model state)), and
//! `--stream-depth N` sets the channel depth.

#![warn(missing_docs)]

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::time::Instant;

use gencache_core::SwitchReport;
use gencache_obs::{
    CostReport, JsonlSink, MetricsReport, RegretReport, RunMeta, SampledReport, SamplingParams,
    StreamHeader, WindowReport, METRICS_SCHEMA, METRICS_VERSION,
};
use serde::{Serialize, Value};
use gencache_sim::par::{par_map, par_map_timed};
use gencache_sim::{
    collect_costs, collect_metrics, collect_sampled, compare_figure9_metered, record,
    replay_observed, Comparison, ModelSpec, ProgressMeter, RecordedRun, RecorderOptions,
    StreamedRecording, DEFAULT_STREAM_DEPTH,
};
use gencache_workloads::{all_benchmarks, Suite, WorkloadProfile};

pub mod ingest;

/// Command-line options shared by every figure binary.
///
/// Scaling caveat: `--scale` shrinks footprints for smoke runs, but the
/// Figure 9/11 economics depend on absolute working-set-to-cache ratios;
/// below roughly 1/8 scale the small benchmarks degenerate to a handful
/// of traces and the generational layouts can look arbitrarily bad. Use
/// full scale for any result you intend to read.
#[derive(Debug, Clone, Default)]
pub struct HarnessOptions {
    /// Divide every footprint by this factor (1 = full scale).
    pub scale: u64,
    /// Restrict to one suite.
    pub suite: Option<Suite>,
    /// Worker-thread count; `None` defers to `GENCACHE_JOBS` and then
    /// the machine's available parallelism.
    pub jobs: Option<usize>,
    /// Write the full cache-event stream here as JSONL (one
    /// [`EventRecord`](gencache_obs::EventRecord) per line).
    pub events_out: Option<String>,
    /// Write aggregated per-benchmark and suite-merged metrics here as
    /// one JSON document.
    pub metrics_out: Option<String>,
    /// Print a rate-limited records-replayed/total heartbeat to stderr.
    pub progress: bool,
    /// Record 1-in-N distribution values through a bounded-memory
    /// [`SamplingObserver`](gencache_obs::SamplingObserver) and add a
    /// `sampled` section to `--metrics-out` (counters stay exact).
    pub sample: Option<u64>,
    /// Seed for the sampling observer's striding/reservoir decisions.
    pub sample_seed: u64,
    /// Run the record→replay pipeline through the bounded-channel
    /// streamed path: no benchmark's full [`AccessLog`] is ever
    /// materialized. Each replay re-records (recording is
    /// deterministic), trading one extra recording pass per replay for
    /// peak memory bounded by O(channel depth + model state).
    pub stream: bool,
    /// Bounded-channel depth for `--stream` (records in flight);
    /// `None` uses [`DEFAULT_STREAM_DEPTH`].
    pub stream_depth: Option<usize>,
}

impl HarnessOptions {
    /// Parses `--scale N`, `--suite spec|interactive`, `--jobs N`,
    /// `--events-out FILE`, `--metrics-out FILE` and `--progress` from
    /// `args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments; these binaries
    /// are terminal tools, so failing loudly is the right interface.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = HarnessOptions {
            scale: 1,
            ..HarnessOptions::default()
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    opts.scale = v.parse().expect("--scale must be a positive integer");
                    assert!(opts.scale > 0, "--scale must be positive");
                }
                "--suite" => {
                    let v = it.next().expect("--suite needs a value");
                    opts.suite = Some(match v.as_str() {
                        "spec" | "spec2000" => Suite::Spec2000,
                        "interactive" | "windows" => Suite::Interactive,
                        "adversarial" => Suite::Adversarial,
                        other => panic!("unknown suite {other:?}; use spec|interactive|adversarial"),
                    });
                }
                "--jobs" => {
                    let v = it.next().expect("--jobs needs a value");
                    let jobs = v.parse().expect("--jobs must be a positive integer");
                    assert!(jobs > 0, "--jobs must be positive");
                    opts.jobs = Some(jobs);
                }
                "--events-out" => {
                    opts.events_out = Some(it.next().expect("--events-out needs a file path"));
                }
                "--metrics-out" => {
                    opts.metrics_out = Some(it.next().expect("--metrics-out needs a file path"));
                }
                "--progress" => {
                    opts.progress = true;
                }
                "--sample" => {
                    let v = it.next().expect("--sample needs a value");
                    let n: u64 = v.parse().expect("--sample must be a positive integer");
                    assert!(n > 0, "--sample must be positive");
                    opts.sample = Some(n);
                }
                "--sample-seed" => {
                    let v = it.next().expect("--sample-seed needs a value");
                    opts.sample_seed = v.parse().expect("--sample-seed must be an integer");
                }
                "--stream" => {
                    opts.stream = true;
                }
                "--stream-depth" => {
                    let v = it.next().expect("--stream-depth needs a value");
                    let depth: usize = v.parse().expect("--stream-depth must be a positive integer");
                    assert!(depth > 0, "--stream-depth must be positive");
                    opts.stream_depth = Some(depth);
                }
                other => panic!(
                    "unknown argument {other:?}; use --scale N / --suite S / --jobs N / \
                     --events-out FILE / --metrics-out FILE / --progress / --sample N / \
                     --sample-seed S / --stream / --stream-depth N"
                ),
            }
        }
        opts
    }

    /// Parses the current process arguments (skipping `argv[0]`).
    pub fn from_env() -> Self {
        HarnessOptions::parse(std::env::args().skip(1))
    }

    /// The resolved worker-thread count: `--jobs`, else `GENCACHE_JOBS`,
    /// else the machine's available parallelism.
    pub fn effective_jobs(&self) -> usize {
        gencache_sim::par::effective_jobs(self.jobs)
    }

    /// The sampling knobs implied by `--sample N` / `--sample-seed S`:
    /// 1-in-N histogram striding and churn tracking, a 512-sample
    /// timeline cap, and a 1024-value reuse reservoir. `None` when
    /// `--sample` was not given.
    pub fn sampling_params(&self) -> Option<SamplingParams> {
        self.sample.map(|n| SamplingParams {
            stride: n,
            timeline_cap: 512,
            churn_every: n,
            reservoir: 1024,
            seed: self.sample_seed,
        })
    }

    /// The bounded-channel depth for streamed replays.
    pub fn effective_stream_depth(&self) -> usize {
        self.stream_depth.unwrap_or(DEFAULT_STREAM_DEPTH)
    }

    /// The benchmark profiles selected by these options.
    pub fn profiles(&self) -> Vec<WorkloadProfile> {
        all_benchmarks()
            .into_iter()
            .filter(|p| self.suite.is_none_or(|s| p.suite == s))
            .map(|p| {
                if self.scale > 1 {
                    p.scaled_down(self.scale)
                } else {
                    p
                }
            })
            .collect()
    }
}

/// Records every selected benchmark, fanning benchmarks across the
/// harness's worker threads and printing per-shard wall-clock timings to
/// stderr. Output order matches [`HarnessOptions::profiles`] regardless
/// of the job count.
pub fn record_all(opts: &HarnessOptions) -> Vec<Run> {
    let profiles = opts.profiles();
    let jobs = opts.effective_jobs();
    eprintln!("recording {} benchmarks ({jobs} jobs) ...", profiles.len());
    let started = Instant::now();
    let results = par_map_timed(&profiles, jobs, |p| {
        record(p).expect("calibrated profiles always plan")
    });
    let mut out = Vec::with_capacity(profiles.len());
    for (profile, (run, shard)) in profiles.into_iter().zip(results) {
        eprintln!("  recorded {:<10} in {:7.3}s", profile.name, shard.as_secs_f64());
        out.push((profile, run));
    }
    eprintln!(
        "recorded {} benchmarks in {:.3}s wall-clock",
        out.len(),
        started.elapsed().as_secs_f64()
    );
    out
}

/// Replays every recorded run through the Figure 9 three-configuration
/// comparison, fanning benchmarks across the harness's worker threads
/// and printing per-shard wall-clock timings to stderr. Output order
/// matches `runs` and is bit-identical for every job count.
pub fn compare_all(opts: &HarnessOptions, runs: &[Run]) -> Vec<(WorkloadProfile, Comparison)> {
    let jobs = opts.effective_jobs();
    eprintln!("replaying {} benchmarks ({jobs} jobs) ...", runs.len());
    let started = Instant::now();
    // Each Figure 9 comparison replays the log into four models:
    // unified plus the three generational configurations.
    let total_records: u64 = runs.iter().map(|(_, r)| r.log.records.len() as u64 * 4).sum();
    let meter = if opts.progress {
        ProgressMeter::new("replay", total_records)
    } else {
        ProgressMeter::disabled("replay", total_records)
    };
    let results = par_map_timed(runs, jobs, |(_, r)| compare_figure9_metered(&r.log, &meter));
    if opts.progress {
        meter.finish();
    }
    let out: Vec<(WorkloadProfile, Comparison)> = runs
        .iter()
        .zip(results)
        .map(|((p, _), (c, shard))| {
            eprintln!("  replayed {:<10} in {:7.3}s", p.name, shard.as_secs_f64());
            (p.clone(), c)
        })
        .collect();
    eprintln!(
        "replayed {} benchmarks in {:.3}s wall-clock",
        out.len(),
        started.elapsed().as_secs_f64()
    );
    out
}

/// A recorded benchmark paired with its profile.
pub type Run = (WorkloadProfile, RecordedRun);

/// A probed streamed recording paired with its profile — the `--stream`
/// counterpart of [`Run`], holding run facts instead of a log.
pub type StreamedRun = (WorkloadProfile, StreamedRecording);

/// Probes every selected benchmark for the streamed pipeline: one
/// recording pass per benchmark that discards records and keeps only the
/// run facts. Fan-out, ordering, and timing output mirror
/// [`record_all`].
pub fn record_all_streamed(opts: &HarnessOptions) -> Vec<StreamedRun> {
    let profiles = opts.profiles();
    let jobs = opts.effective_jobs();
    let depth = opts.effective_stream_depth();
    eprintln!(
        "probing {} benchmarks ({jobs} jobs, stream depth {depth}) ...",
        profiles.len()
    );
    let started = Instant::now();
    let results = par_map_timed(&profiles, jobs, |p| {
        StreamedRecording::probe(p, RecorderOptions::default(), depth)
            .expect("calibrated profiles always plan")
    });
    let mut out = Vec::with_capacity(profiles.len());
    for (profile, (rec, shard)) in profiles.into_iter().zip(results) {
        eprintln!("  probed   {:<10} in {:7.3}s", profile.name, shard.as_secs_f64());
        out.push((profile, rec));
    }
    eprintln!(
        "probed {} benchmarks in {:.3}s wall-clock",
        out.len(),
        started.elapsed().as_secs_f64()
    );
    out
}

/// Streamed counterpart of [`compare_all`]: each benchmark re-records
/// through a bounded channel and drives all four Figure 9 models from
/// the single stream. Output order matches `recs` and is bit-identical
/// to the materialized path for every job count. (`--progress` is a
/// no-op here: the producer thread owns the record counter.)
pub fn compare_all_streamed(
    opts: &HarnessOptions,
    recs: &[StreamedRun],
) -> Vec<(WorkloadProfile, Comparison)> {
    let jobs = opts.effective_jobs();
    eprintln!("replaying {} benchmarks ({jobs} jobs, streamed) ...", recs.len());
    let started = Instant::now();
    let results = par_map_timed(recs, jobs, |(_, rec)| rec.compare_figure9());
    let out: Vec<(WorkloadProfile, Comparison)> = recs
        .iter()
        .zip(results)
        .map(|((p, _), (c, shard))| {
            eprintln!("  replayed {:<10} in {:7.3}s", p.name, shard.as_secs_f64());
            (p.clone(), c)
        })
        .collect();
    eprintln!(
        "replayed {} benchmarks in {:.3}s wall-clock",
        out.len(),
        started.elapsed().as_secs_f64()
    );
    out
}

/// The full record → export → compare pipeline behind every figure
/// binary, dispatching on `--stream`: the materialized path records each
/// benchmark's [`AccessLog`] once and replays it in place, while the
/// streamed path never materializes a log and instead re-records through
/// a bounded channel for each replay. Both produce bit-identical
/// comparisons and telemetry artifacts.
pub fn comparison_pipeline(opts: &HarnessOptions) -> Vec<(WorkloadProfile, Comparison)> {
    if opts.stream {
        let recs = record_all_streamed(opts);
        export_telemetry_streamed(opts, &recs).expect("telemetry export failed");
        compare_all_streamed(opts, &recs)
    } else {
        let runs = record_all(opts);
        export_telemetry(opts, &runs).expect("telemetry export failed");
        compare_all(opts, &runs)
    }
}

/// The organizations exported by `--events-out` / `--metrics-out`: the
/// unified baseline and the paper's best-overall generational layout
/// (45%–10%–45%, promote on first probation hit).
pub fn export_specs() -> [(&'static str, ModelSpec); 2] {
    [
        ("unified", ModelSpec::Unified),
        ("gen-45-10-45@hit1", ModelSpec::best_generational()),
    ]
}

/// Timeline sampling interval giving roughly 64 occupancy samples per
/// replay. Keyed on access counts, not wall clock, so the timeline is
/// deterministic — and reproducible by the offline simulator, whose
/// reconstructed log preserves the access count exactly.
pub fn sample_interval(log: &gencache_sim::AccessLog) -> u64 {
    sample_interval_for(log.access_count())
}

/// [`sample_interval`] keyed on a bare access count, for the streamed
/// path where no log exists.
pub fn sample_interval_for(accesses: u64) -> u64 {
    (accesses / 64).max(1)
}

/// Honors `--events-out` and `--metrics-out`: replays every recorded
/// run through the [`export_specs`] models with instrumentation attached
/// and writes the requested artifacts. A no-op when neither flag is set.
pub fn export_telemetry(opts: &HarnessOptions, runs: &[Run]) -> io::Result<()> {
    if let Some(path) = &opts.events_out {
        let lines = write_events(path, runs)?;
        eprintln!("wrote {lines} events to {path}");
    }
    if let Some(path) = &opts.metrics_out {
        write_metrics(path, runs, opts)?;
        eprintln!("wrote metrics to {path}");
    }
    Ok(())
}

/// Streamed counterpart of [`export_telemetry`]: every artifact is
/// produced through bounded-channel replays (one extra recording pass
/// per instrumented replay) and is byte-identical to the materialized
/// export.
pub fn export_telemetry_streamed(opts: &HarnessOptions, recs: &[StreamedRun]) -> io::Result<()> {
    if let Some(path) = &opts.events_out {
        let lines = write_events_streamed(path, recs)?;
        eprintln!("wrote {lines} events to {path}");
    }
    if let Some(path) = &opts.metrics_out {
        write_metrics_streamed(path, recs, opts)?;
        eprintln!("wrote metrics to {path}");
    }
    Ok(())
}

/// One model's section of the metrics document: exact aggregates, the
/// Table 2 cost attribution, (under `--sample`) the bounded-memory
/// sampled report, (under `--oracle`) the Belady-regret attribution,
/// (under `--windows`) the windowed time-series with drift annotations,
/// and (for adaptive specs) the controller's switch report. Optional
/// sections are emitted only when present, so documents produced
/// without them keep their exact bytes.
fn spec_section(
    metrics: &MetricsReport,
    costs: &CostReport,
    sampled: Option<&SampledReport>,
    regret: Option<&RegretReport>,
    windows: Option<&WindowReport>,
    switches: Option<&SwitchReport>,
) -> Value {
    let mut pairs = vec![
        ("metrics".to_string(), metrics.to_value()),
        ("costs".to_string(), costs.to_value()),
    ];
    if let Some(s) = sampled {
        pairs.push(("sampled".to_string(), s.to_value()));
    }
    if let Some(r) = regret {
        pairs.push(("regret".to_string(), r.to_value()));
    }
    if let Some(w) = windows {
        pairs.push(("windows".to_string(), w.to_value()));
    }
    if let Some(s) = switches {
        pairs.push(("switches".to_string(), s.to_value()));
    }
    Value::Object(pairs)
}

fn write_events(path: &str, runs: &[Run]) -> io::Result<u64> {
    let mut writer = BufWriter::new(File::create(path)?);
    let header =
        serde_json::to_string(&StreamHeader::current()).map_err(|e| io::Error::other(format!("{e:?}")))?;
    writeln!(writer, "{header}")?;
    let mut lines = 1u64;
    for (profile, run) in runs {
        for (label, spec) in export_specs() {
            // The run facts the events alone cannot reproduce; the
            // offline simulator rebuilds capacity / cost attribution
            // from these.
            let meta = RunMeta {
                source: profile.name.clone(),
                model: label.to_string(),
                duration_us: run.log.duration.as_micros(),
                peak_trace_bytes: run.log.peak_trace_bytes,
                phases: profile.phases.max(1),
            };
            let meta = serde_json::to_string(&meta).map_err(|e| io::Error::other(format!("{e:?}")))?;
            writeln!(writer, "{meta}")?;
            lines += 1;
            let sink = JsonlSink::new(writer, profile.name.clone(), label);
            let (_, sink) = replay_observed(&run.log, spec, sink);
            lines += sink.lines();
            writer = sink.finish()?;
        }
    }
    writer.flush()?;
    Ok(lines)
}

fn write_events_streamed(path: &str, recs: &[StreamedRun]) -> io::Result<u64> {
    let writer = BufWriter::new(File::create(path)?);
    let (mut writer, lines) = stream_events_to(writer, recs)?;
    writer.flush()?;
    Ok(lines)
}

/// Streams a v2 `gencache-events` export of `recs` into `writer` —
/// header, then per (benchmark, exported model) a [`RunMeta`] line
/// followed by the event lines, each model's events produced by one
/// bounded-channel replay (never materialized). Byte-identical to the
/// `--events-out` file written by the figure pipeline. Returns the
/// writer and the number of lines written — useful when the writer is a
/// socket (the serve daemon's `fetch`) rather than a file.
///
/// # Errors
///
/// Propagates the writer's I/O errors.
pub fn stream_events_to<W: Write>(mut writer: W, recs: &[StreamedRun]) -> io::Result<(W, u64)> {
    let header =
        serde_json::to_string(&StreamHeader::current()).map_err(|e| io::Error::other(format!("{e:?}")))?;
    writeln!(writer, "{header}")?;
    let mut lines = 1u64;
    for (profile, rec) in recs {
        for (label, spec) in export_specs() {
            let meta = RunMeta {
                source: profile.name.clone(),
                model: label.to_string(),
                duration_us: rec.facts().duration.as_micros(),
                peak_trace_bytes: rec.facts().frontend.peak_trace_bytes,
                phases: profile.phases.max(1),
            };
            let meta = serde_json::to_string(&meta).map_err(|e| io::Error::other(format!("{e:?}")))?;
            writeln!(writer, "{meta}")?;
            lines += 1;
            let sink = JsonlSink::new(writer, profile.name.clone(), label);
            let (_, sink) = rec.replay_observed(spec, sink);
            lines += sink.lines();
            writer = sink.finish()?;
        }
    }
    Ok((writer, lines))
}

/// Per-benchmark artifacts for one exported model: exact metrics, cost
/// attribution, optional sampled report, optional Belady-regret
/// attribution, optional windowed time-series, and (adaptive specs
/// only) the policy controller's switch report.
pub type SpecReports = (
    MetricsReport,
    CostReport,
    Option<SampledReport>,
    Option<RegretReport>,
    Option<WindowReport>,
    Option<SwitchReport>,
);

/// Assembles the `--metrics-out` document from per-benchmark report
/// rows: one entry per benchmark, each carrying one [`SpecReports`] per
/// label in `labels` order.
///
/// Shared by the live export and the offline `simulate` tool — both
/// paths produce a document through this one function, so a simulation
/// of a recorded stream under its original configuration is comparable
/// to the live document byte-for-byte. Suite-level merges fold rows in
/// input order, keeping the document identical for every job count.
pub fn metrics_doc(labels: &[String], benchmarks: &[(String, Vec<SpecReports>)]) -> Value {
    let mut suite: Vec<SpecReports> = labels
        .iter()
        .map(|_| (MetricsReport::new(), CostReport::new(1), None, None, None, None))
        .collect();
    let mut bench_values = Vec::with_capacity(benchmarks.len());
    for (name, reports) in benchmarks {
        let mut pairs = vec![("benchmark".to_string(), Value::Str(name.clone()))];
        for ((label, (metrics, costs, sampled, regret, windows, switches)), merged) in
            labels.iter().zip(reports).zip(suite.iter_mut())
        {
            merged.0.merge(metrics);
            merged.1.merge(costs);
            if let Some(s) = sampled {
                match merged.2.as_mut() {
                    None => merged.2 = Some(s.clone()),
                    Some(m) => m.merge(s),
                }
            }
            if let Some(r) = regret {
                match merged.3.as_mut() {
                    None => merged.3 = Some(r.clone()),
                    Some(m) => m.merge(r),
                }
            }
            if let Some(w) = windows {
                match merged.4.as_mut() {
                    None => merged.4 = Some(w.clone()),
                    Some(m) => m.merge(w),
                }
            }
            if let Some(s) = switches {
                match merged.5.as_mut() {
                    None => merged.5 = Some(s.clone()),
                    Some(m) => m.merge(s),
                }
            }
            pairs.push((
                label.clone(),
                spec_section(
                    metrics,
                    costs,
                    sampled.as_ref(),
                    regret.as_ref(),
                    windows.as_ref(),
                    switches.as_ref(),
                ),
            ));
        }
        bench_values.push(Value::Object(pairs));
    }
    let suite_pairs: Vec<(String, Value)> = labels
        .iter()
        .zip(&suite)
        .map(|(label, (metrics, costs, sampled, regret, windows, switches))| {
            (
                label.clone(),
                spec_section(
                    metrics,
                    costs,
                    sampled.as_ref(),
                    regret.as_ref(),
                    windows.as_ref(),
                    switches.as_ref(),
                ),
            )
        })
        .collect();
    Value::Object(vec![
        ("schema".to_string(), Value::Str(METRICS_SCHEMA.to_string())),
        ("version".to_string(), Value::UInt(u64::from(METRICS_VERSION))),
        ("suite".to_string(), Value::Object(suite_pairs)),
        ("benchmarks".to_string(), Value::Array(bench_values)),
    ])
}

/// Serializes an assembled [`Value`] tree to JSON text — the one
/// rendering every consumer shares, so documents that must compare
/// byte-for-byte (live export, offline simulator, serve daemon) all go
/// through it.
pub fn value_to_json(doc: &Value) -> String {
    serde_json::to_string(&RawValue(doc.clone())).expect("value trees always serialize")
}

/// Serializes an assembled metrics document to `path` (single JSON
/// document, trailing newline).
pub fn write_metrics_doc(path: &str, doc: Value) -> io::Result<()> {
    let json = value_to_json(&doc);
    let mut file = File::create(path)?;
    file.write_all(json.as_bytes())?;
    file.write_all(b"\n")
}

fn write_metrics(path: &str, runs: &[Run], opts: &HarnessOptions) -> io::Result<()> {
    let jobs = opts.effective_jobs();
    let sampling = opts.sampling_params();
    // Per-benchmark reports fan out across workers; document assembly
    // folds them in input-index order, so the output is bit-identical
    // for every jobs value.
    let per_bench: Vec<Vec<SpecReports>> = par_map(runs, jobs, |(profile, run)| {
        export_specs()
            .iter()
            .map(|&(_, spec)| {
                let every = sample_interval(&run.log);
                let metrics = collect_metrics(&run.log, spec, every).1;
                let costs = collect_costs(&run.log, spec, profile.phases.max(1)).1;
                let sampled = sampling.map(|p| collect_sampled(&run.log, spec, p, every).1);
                (metrics, costs, sampled, None, None, None)
            })
            .collect()
    });
    let labels: Vec<String> = export_specs()
        .iter()
        .map(|&(label, _)| label.to_string())
        .collect();
    let benchmarks: Vec<(String, Vec<SpecReports>)> = runs
        .iter()
        .zip(per_bench)
        .map(|((profile, _), reports)| (profile.name.clone(), reports))
        .collect();
    write_metrics_doc(path, metrics_doc(&labels, &benchmarks))
}

fn write_metrics_streamed(path: &str, recs: &[StreamedRun], opts: &HarnessOptions) -> io::Result<()> {
    let jobs = opts.effective_jobs();
    let sampling = opts.sampling_params();
    let per_bench: Vec<Vec<SpecReports>> = par_map(recs, jobs, |(profile, rec)| {
        export_specs()
            .iter()
            .map(|&(_, spec)| {
                let every = sample_interval_for(rec.access_count());
                let metrics = rec.collect_metrics(spec, every).1;
                let costs = rec.collect_costs(spec, profile.phases.max(1)).1;
                let sampled = sampling.map(|p| rec.collect_sampled(spec, p, every).1);
                (metrics, costs, sampled, None, None, None)
            })
            .collect()
    });
    let labels: Vec<String> = export_specs()
        .iter()
        .map(|&(label, _)| label.to_string())
        .collect();
    let benchmarks: Vec<(String, Vec<SpecReports>)> = recs
        .iter()
        .zip(per_bench)
        .map(|((profile, _), reports)| (profile.name.clone(), reports))
        .collect();
    write_metrics_doc(path, metrics_doc(&labels, &benchmarks))
}

/// Adapter so an already-assembled [`Value`] tree can go through
/// `serde_json::to_string`, which wants a [`Serialize`] type.
struct RawValue(Value);

impl Serialize for RawValue {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// One suite's borrowed slice of profile-keyed rows.
pub type SuiteRows<'a, T> = Vec<&'a (WorkloadProfile, T)>;

/// Splits profile-keyed rows (recorded runs, streamed recordings, or
/// comparisons) by suite, preserving order: `(spec, interactive)`.
pub fn by_suite<T>(runs: &[(WorkloadProfile, T)]) -> (SuiteRows<'_, T>, SuiteRows<'_, T>) {
    let spec = runs
        .iter()
        .filter(|(p, _)| p.suite == Suite::Spec2000)
        .collect();
    let inter = runs
        .iter()
        .filter(|(p, _)| p.suite == Suite::Interactive)
        .collect();
    (spec, inter)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_defaults() {
        let o = HarnessOptions::parse(args(&[]));
        assert_eq!(o.scale, 1);
        assert_eq!(o.suite, None);
    }

    #[test]
    fn parse_scale_and_suite() {
        let o = HarnessOptions::parse(args(&["--scale", "8", "--suite", "spec"]));
        assert_eq!(o.scale, 8);
        assert_eq!(o.suite, Some(Suite::Spec2000));
        let o = HarnessOptions::parse(args(&["--suite", "interactive"]));
        assert_eq!(o.suite, Some(Suite::Interactive));
    }

    #[test]
    fn parse_jobs() {
        let o = HarnessOptions::parse(args(&[]));
        assert_eq!(o.jobs, None);
        assert!(o.effective_jobs() >= 1);
        let o = HarnessOptions::parse(args(&["--jobs", "4"]));
        assert_eq!(o.jobs, Some(4));
        assert_eq!(o.effective_jobs(), 4);
    }

    #[test]
    fn parse_sample_flags() {
        let o = HarnessOptions::parse(args(&["--sample", "8", "--sample-seed", "42"]));
        assert_eq!(o.sample, Some(8));
        assert_eq!(o.sample_seed, 42);
        let p = o.sampling_params().unwrap();
        assert_eq!(p.stride, 8);
        assert_eq!(p.churn_every, 8);
        assert_eq!(p.seed, 42);
        assert!(HarnessOptions::parse(args(&[])).sampling_params().is_none());
    }

    #[test]
    #[should_panic(expected = "--jobs must be positive")]
    fn parse_rejects_zero_jobs() {
        let _ = HarnessOptions::parse(args(&["--jobs", "0"]));
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn parse_rejects_garbage() {
        let _ = HarnessOptions::parse(args(&["--bogus"]));
    }

    #[test]
    fn profiles_filter_by_suite() {
        let o = HarnessOptions::parse(args(&["--suite", "spec", "--scale", "64"]));
        let ps = o.profiles();
        assert_eq!(ps.len(), 26);
        assert!(ps.iter().all(|p| p.suite == Suite::Spec2000));
    }
}
