//! Figure 11: instruction-overhead ratio of generational caches to a
//! unified cache (Equation 3), for the best 45%-10%-45% layout. Values
//! below 100% mean the generational scheme spends fewer instructions on
//! cache management; smaller is better.

use gencache_bench::{by_suite, comparison_pipeline, HarnessOptions};
use gencache_sim::report::{bar, geometric_mean, TextTable};
use gencache_sim::Comparison;
use gencache_workloads::WorkloadProfile;

fn render(title: &str, rows: &[&(WorkloadProfile, Comparison)]) -> Vec<f64> {
    println!("\n({title})");
    let ratios: Vec<f64> = rows.iter().map(|(_, c)| c.overhead_ratio(1)).collect();
    let max = ratios.iter().copied().fold(0.0f64, f64::max).max(1.0);
    let mut table = TextTable::new(["Benchmark", "Overhead ratio", ""]);
    for ((p, _), ratio) in rows.iter().zip(&ratios) {
        table.row([
            p.name.clone(),
            format!("{:.1}%", ratio * 100.0),
            bar(*ratio, max, 40),
        ]);
    }
    print!("{}", table.render());
    ratios
}

fn main() {
    let opts = HarnessOptions::from_env();
    println!("Figure 11. Instruction-overhead ratio (generational 45-10-45 / unified).");
    let comparisons = comparison_pipeline(&opts);
    let (spec, inter) = by_suite(&comparisons);
    let mut all = Vec::new();
    if !spec.is_empty() {
        all.extend(render("a) SPEC2000 Benchmarks", &spec));
    }
    if !inter.is_empty() {
        all.extend(render("b) Interactive Windows Benchmarks", &inter));
    }
    if let Some(geo) = geometric_mean(&all) {
        println!(
            "\ngeometric-mean overhead ratio: {:.1}% (paper: 80.7%, i.e. a 19.3% reduction)",
            geo * 100.0
        );
    }
}
