//! Table 2: the instruction-overhead cost model, with the paper's
//! median-trace worked example.

use gencache_core::cost;
use gencache_sim::report::TextTable;

fn main() {
    println!("Table 2. Overheads used in our evaluation.\n");
    let mut table = TextTable::new(["Description", "Overhead (instructions)"]);
    table.row(["Trace Generation", "865 * (traceSizeBytes)^(0.8)"]);
    table.row(["DR Context Switch", "25"]);
    table.row(["Evictions", "2.75 * traceSizeBytes + 2650"]);
    table.row(["Promotions", "22 * traceSizeBytes + 8030"]);
    print!("{}", table.render());

    println!("\nWorked example for the paper's 242-byte median trace:");
    println!(
        "  trace generation : {:>10.0} instructions (paper: 69,834)",
        cost::trace_generation(242)
    );
    println!(
        "  eviction         : {:>10.0} instructions (paper:  3,316)",
        cost::eviction(242)
    );
    println!(
        "  promotion        : {:>10.0} instructions (paper: 13,354)",
        cost::promotion(242)
    );
    println!(
        "  full miss service: {:>10.0} instructions (paper: ~85,000)",
        cost::miss_service(242)
    );
}
