//! `delta` — phase-by-phase comparison of two exported event streams.
//!
//! The first offline event-stream consumer beyond `explain`: it never
//! re-records or re-replays anything. Given one or two `--events-out`
//! JSONL exports it pairs up streams, slices each pair into equal time
//! phases, and reports per-phase deltas in event volume, miss rate,
//! occupancy and Table 2-attributed instruction overhead — ending with
//! the suite-level Equation 3 overhead ratio computed purely from the
//! streams.
//!
//! ```text
//! delta FILE.jsonl
//!     # diff the two exported models (unified vs gen-45-10-45@hit1)
//!     # benchmark by benchmark within one export
//! delta LEFT.jsonl RIGHT.jsonl
//!     # diff identical (benchmark, model) streams across two exports
//!     # (e.g. two proportion configs, or before/after a change)
//! delta LEFT.jsonl RIGHT.jsonl --left-model unified --right-model gen-45-10-45@hit1
//!     # explicit model pairing
//! delta FILE.jsonl --phases 12 --bench word
//! delta FILE.jsonl --regret
//!     # additionally diff the Belady-regret attribution of each pair
//! delta FILE.jsonl --windows
//!     # additionally diff the windowed miss-rate series and each
//!     # side's drift annotations (phase_shift / thrash_onset /
//!     # recovery), window by window
//! gencache-client fetch --addr HOST:PORT --bench word | delta -
//!     # `-` reads an export from stdin (at most one of the two inputs)
//! ```

use std::collections::BTreeMap;
use std::io::BufRead;
use std::process::ExitCode;

use gencache_bench::export_specs;
use gencache_bench::ingest::open_lines;
use gencache_obs::{
    cost, overhead_ratio, parse_stream_line, reconstruct_trace, CacheEvent, CostLedger,
    CostObserver, NextUseIndex, Observer, PhaseRegret, RegretCell, RegretObserver, StreamLine,
    Window, WindowObserver, WindowReport,
};
use gencache_sim::report::{bar, fmt_bytes, sparkline, TextTable};

struct DeltaOptions {
    left: String,
    right: Option<String>,
    left_model: Option<String>,
    right_model: Option<String>,
    bench: Option<String>,
    phases: u32,
    regret: bool,
    windows: bool,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> DeltaOptions {
    let mut opts = DeltaOptions {
        left: String::new(),
        right: None,
        left_model: None,
        right_model: None,
        bench: None,
        phases: 8,
        regret: false,
        windows: false,
    };
    let mut files = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--left-model" => {
                opts.left_model = Some(it.next().expect("--left-model needs a model label"));
            }
            "--right-model" => {
                opts.right_model = Some(it.next().expect("--right-model needs a model label"));
            }
            "--bench" => {
                opts.bench = Some(it.next().expect("--bench needs a benchmark name"));
            }
            "--phases" => {
                let v = it.next().expect("--phases needs a value");
                opts.phases = v.parse().expect("--phases must be a positive integer");
                assert!(opts.phases > 0, "--phases must be positive");
            }
            "--regret" => opts.regret = true,
            "--windows" => opts.windows = true,
            flag if flag.starts_with("--") => panic!(
                "unknown argument {flag:?}; use LEFT.jsonl [RIGHT.jsonl] / --left-model M / \
                 --right-model M / --bench NAME / --phases N / --regret / --windows"
            ),
            file => files.push(file.to_string()),
        }
    }
    match files.len() {
        1 => opts.left = files.remove(0),
        2 => {
            opts.right = Some(files.remove(1));
            opts.left = files.remove(0);
        }
        n => panic!("expected 1 or 2 JSONL files, got {n}"),
    }
    opts
}

/// Event streams keyed by `(benchmark, model)` in deterministic order.
type Streams = BTreeMap<(String, String), Vec<CacheEvent>>;

fn load_streams(path: &str) -> Result<Streams, String> {
    let reader = open_lines(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut streams: Streams = BTreeMap::new();
    let mut saw_header = false;
    let mut warned = false;
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_stream_line(&line).map_err(|e| format!("{path}:{}: {e}", i + 1))? {
            StreamLine::Header(header) => {
                // Unknown schema versions are rejected rather than
                // silently misread as event deltas.
                header
                    .validate()
                    .map_err(|e| format!("{path}:{}: {e}", i + 1))?;
                saw_header = true;
            }
            StreamLine::Meta(_) => {}
            StreamLine::Event(record) => {
                if !saw_header && !warned {
                    eprintln!("warning: {path} has no schema header (pre-v2 export)");
                    warned = true;
                }
                streams
                    .entry((record.source, record.model))
                    .or_default()
                    .push(record.event);
            }
        }
    }
    Ok(streams)
}

/// Renders a stream map's keys for error messages.
fn stream_keys(streams: &Streams) -> String {
    if streams.is_empty() {
        return "none".to_string();
    }
    streams
        .keys()
        .map(|(b, m)| format!("({b}, {m})"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// One paired comparison: a display name plus the two streams.
struct Pair<'a> {
    name: String,
    left: &'a [CacheEvent],
    right: &'a [CacheEvent],
}

/// Pairs streams: with explicit model labels, benchmark-by-benchmark
/// across the two (possibly identical) files; otherwise identical
/// `(benchmark, model)` keys across two files.
fn pair_streams<'a>(opts: &DeltaOptions, left: &'a Streams, right: &'a Streams) -> Vec<Pair<'a>> {
    let mut pairs = Vec::new();
    if let (Some(lm), Some(rm)) = (&opts.left_model, &opts.right_model) {
        let benchmarks: Vec<&String> = left
            .keys()
            .filter(|(_, m)| m == lm)
            .map(|(b, _)| b)
            .collect();
        for b in benchmarks {
            if opts.bench.as_ref().is_some_and(|want| want != b) {
                continue;
            }
            let l = left.get(&(b.clone(), lm.clone()));
            let r = right.get(&(b.clone(), rm.clone()));
            if let (Some(l), Some(r)) = (l, r) {
                pairs.push(Pair {
                    name: b.clone(),
                    left: l,
                    right: r,
                });
            }
        }
    } else {
        for ((b, m), l) in left {
            if opts.bench.as_ref().is_some_and(|want| want != b) {
                continue;
            }
            if let Some(r) = right.get(&(b.clone(), m.clone())) {
                pairs.push(Pair {
                    name: format!("{b} [{m}]"),
                    left: l,
                    right: r,
                });
            }
        }
    }
    pairs
}

/// Phase-local aggregates of one stream side.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseSide {
    events: u64,
    hits: u64,
    misses: u64,
    peak_resident: u64,
}

impl PhaseSide {
    fn miss_pct(&self) -> f64 {
        let accesses = self.hits + self.misses;
        if accesses == 0 {
            0.0
        } else {
            100.0 * self.misses as f64 / accesses as f64
        }
    }
}

fn phase_of(time_us: u64, duration_us: u64, phases: u32) -> usize {
    if duration_us == 0 {
        return 0;
    }
    let p = u64::from(phases);
    (time_us.saturating_mul(p) / duration_us).min(p - 1) as usize
}

/// Aggregates one side into per-phase counters and a cost attribution.
/// Resident occupancy is reconstructed by integrating insert/evict/
/// promote byte flows across the whole hierarchy.
fn analyze(events: &[CacheEvent], duration_us: u64, phases: u32) -> (Vec<PhaseSide>, Vec<CostLedger>, CostLedger) {
    let mut sides = vec![PhaseSide::default(); phases as usize];
    let mut resident = 0i64;
    let mut cost_observer = CostObserver::with_phases(phases, duration_us);
    for event in events {
        cost_observer.on_event(event);
        let p = phase_of(event.time().as_micros(), duration_us, phases);
        let side = &mut sides[p];
        side.events += 1;
        match *event {
            CacheEvent::Hit { .. } => side.hits += 1,
            CacheEvent::Miss { .. } => side.misses += 1,
            CacheEvent::Insert { bytes, .. } => resident += i64::from(bytes),
            CacheEvent::Evict { bytes, .. } => resident -= i64::from(bytes),
            _ => {}
        }
        side.peak_resident = side.peak_resident.max(resident.max(0) as u64);
    }
    let report = cost_observer.into_report();
    let ledgers = report.phases.iter().map(|p| p.ledger).collect();
    (sides, ledgers, report.total)
}

/// Diffs the Belady-regret attribution of the two sides. Both streams
/// must invert to the *same* frontend trace (the export invariant) —
/// the shared next-use index is what makes their regrets comparable.
fn render_regret_pair(pair: &Pair<'_>, phases: u32, duration_us: u64) {
    let trace = match reconstruct_trace(pair.left) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("  regret skipped: left stream does not invert: {e}");
            return;
        }
    };
    match reconstruct_trace(pair.right) {
        Ok(t) if t == trace => {}
        Ok(_) => {
            eprintln!(
                "  regret skipped: the two streams reconstruct different frontend traces"
            );
            return;
        }
        Err(e) => {
            eprintln!("  regret skipped: right stream does not invert: {e}");
            return;
        }
    }
    let index = NextUseIndex::build(&trace);
    let score = |events: &[CacheEvent]| {
        let mut observer = RegretObserver::with_phases(&index, phases, duration_us);
        for event in events {
            observer.on_event(event);
        }
        observer.report()
    };
    let left = score(pair.left);
    let right = score(pair.right);
    let summarize = |c: &RegretCell| {
        format!(
            "{} execs regret ({}/{} evictions, {} re-misses, {:.2} Minstr)",
            c.regret_sum, c.regretful, c.evictions, c.remisses, c.remiss_instructions / 1e6,
        )
    };
    println!(
        "Belady regret: left {} vs right {}",
        summarize(&left.total),
        summarize(&right.total),
    );
    let cell =
        |r: &[PhaseRegret], p: usize| r.get(p).map(|x| x.total).unwrap_or_default();
    let peak = (0..phases as usize)
        .map(|p| {
            (cell(&right.phases, p).regret_sum as i64 - cell(&left.phases, p).regret_sum as i64)
                .unsigned_abs()
        })
        .max()
        .unwrap_or(0)
        .max(1);
    let mut table = TextTable::new([
        "phase", "regret L", "regret R", "Δregret", "remiss L", "remiss R", "",
    ]);
    for p in 0..phases as usize {
        let l = cell(&left.phases, p);
        let r = cell(&right.phases, p);
        if l.evictions == 0 && r.evictions == 0 {
            continue;
        }
        let delta = r.regret_sum as i64 - l.regret_sum as i64;
        table.row([
            p.to_string(),
            l.regret_sum.to_string(),
            r.regret_sum.to_string(),
            format!("{delta:+}"),
            l.remisses.to_string(),
            r.remisses.to_string(),
            bar(delta.unsigned_abs() as f64, peak as f64, 20),
        ]);
    }
    print!("{}", table.render());
}

/// Diffs the windowed time-series of the two sides: both streams fold
/// into windows of the *same* access width (from the larger side, so
/// window i covers the same access range on both), then per-window
/// miss-rate sparklines and a merged table of both sides' drift
/// annotations, each shown against the other side's rate at the same
/// window.
fn render_windows_pair(pair: &Pair<'_>) {
    let accesses = |events: &[CacheEvent]| {
        events
            .iter()
            .filter(|e| matches!(e, CacheEvent::Hit { .. } | CacheEvent::Miss { .. }))
            .count() as u64
    };
    let width = (accesses(pair.left).max(accesses(pair.right)) / 64).max(1);
    let report_of = |events: &[CacheEvent]| -> WindowReport {
        let mut observer = WindowObserver::new(width);
        for event in events {
            observer.on_event(event);
        }
        observer.report()
    };
    let left = report_of(pair.left);
    let right = report_of(pair.right);
    println!(
        "Windowed series ({} accesses/window): left {} windows, {} drift annotation(s); \
         right {} windows, {} annotation(s)",
        width,
        left.windows.len(),
        left.annotations.len(),
        right.windows.len(),
        right.annotations.len(),
    );
    let rates = |r: &WindowReport| -> Vec<u64> {
        r.windows
            .iter()
            .map(|w| (w.miss_rate() * 1000.0) as u64)
            .collect()
    };
    println!("  {:>10} {} (per window)", "miss L", sparkline(&rates(&left)));
    println!("  {:>10} {} (per window)", "miss R", sparkline(&rates(&right)));
    if left.annotations.is_empty() && right.annotations.is_empty() {
        println!("  Neither side drifts: both windowed miss rates are stationary.");
        return;
    }
    // Annotations from both sides interleave by window index, so a
    // cliff one side has and the other avoids reads as a lone row.
    let mut rows: Vec<(u64, &str, String, f64, Option<f64>)> = Vec::new();
    let other_rate = |r: &WindowReport, w: u64| r.windows.get(w as usize).map(Window::miss_rate);
    for a in &left.annotations {
        rows.push((a.window, "L", a.kind.to_string(), a.miss_rate, other_rate(&right, a.window)));
    }
    for a in &right.annotations {
        rows.push((a.window, "R", a.kind.to_string(), a.miss_rate, other_rate(&left, a.window)));
    }
    rows.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    let mut table = TextTable::new(["window", "side", "drift", "miss%", "other side%"]);
    for (window, side, kind, rate, other) in rows {
        table.row([
            window.to_string(),
            side.to_string(),
            kind,
            format!("{:.1}", rate * 100.0),
            other.map_or_else(|| "-".to_string(), |r| format!("{:.1}", r * 100.0)),
        ]);
    }
    print!("{}", table.render());
}

fn render_pair(pair: &Pair<'_>, opts: &DeltaOptions) -> (CostLedger, CostLedger) {
    let phases = opts.phases;
    // Shared phase boundaries: both sides are sliced over the same span.
    let duration_us = pair
        .left
        .iter()
        .chain(pair.right)
        .map(|e| e.time().as_micros())
        .max()
        .map_or(0, |t| t + 1);
    let (left, left_ledgers, left_total) = analyze(pair.left, duration_us, phases);
    let (right, right_ledgers, right_total) = analyze(pair.right, duration_us, phases);

    println!(
        "\n=== {}: {} vs {} events, {:.2} vs {:.2} Minstr attributed, ratio {:.3} ===",
        pair.name,
        pair.left.len(),
        pair.right.len(),
        left_total.total() / 1e6,
        right_total.total() / 1e6,
        overhead_ratio(&right_total, &left_total),
    );
    let peak_delta = left_ledgers
        .iter()
        .zip(&right_ledgers)
        .map(|(l, r)| (r.total() - l.total()).abs())
        .fold(0.0, f64::max);
    let mut table = TextTable::new([
        "phase", "Δevents", "miss% L", "miss% R", "peak L", "peak R", "Minstr L", "Minstr R",
        "ΔMinstr", "",
    ]);
    for (p, ((l, r), (ll, rl))) in left
        .iter()
        .zip(&right)
        .zip(left_ledgers.iter().zip(&right_ledgers))
        .enumerate()
    {
        if l.events == 0 && r.events == 0 {
            continue;
        }
        let delta = rl.total() - ll.total();
        table.row([
            p.to_string(),
            format!("{:+}", r.events as i64 - l.events as i64),
            format!("{:.1}", l.miss_pct()),
            format!("{:.1}", r.miss_pct()),
            fmt_bytes(l.peak_resident),
            fmt_bytes(r.peak_resident),
            format!("{:.2}", ll.total() / 1e6),
            format!("{:.2}", rl.total() / 1e6),
            format!("{:+.2}", delta / 1e6),
            bar(delta.abs(), peak_delta, 20),
        ]);
    }
    print!("{}", table.render());
    if opts.regret {
        render_regret_pair(pair, phases, duration_us);
    }
    if opts.windows {
        render_windows_pair(pair);
    }
    (left_total, right_total)
}

fn main() -> ExitCode {
    let opts = parse_args(std::env::args().skip(1));
    let left = match load_streams(&opts.left) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let right_streams;
    let right = match &opts.right {
        Some(path) => match load_streams(path) {
            Ok(s) => {
                right_streams = s;
                &right_streams
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => &left,
    };

    // One file and no explicit models: diff the two standard exports.
    let mut opts = opts;
    if opts.right.is_none() && opts.left_model.is_none() && opts.right_model.is_none() {
        let [(l, _), (r, _)] = export_specs();
        opts.left_model = Some(l.to_string());
        opts.right_model = Some(r.to_string());
    }

    let pairs = pair_streams(&opts, &left, right);
    if pairs.is_empty() {
        eprintln!(
            "error: the two exports share no comparable (benchmark, model) stream pairs\n\
             left  ({}): {}\n\
             right ({}): {}",
            opts.left,
            stream_keys(&left),
            opts.right.as_deref().unwrap_or(&opts.left),
            stream_keys(right),
        );
        if let (Some(l), Some(r)) = (&opts.left_model, &opts.right_model) {
            eprintln!("pairing required model {l:?} on the left and {r:?} on the right");
        }
        return ExitCode::FAILURE;
    }

    println!(
        "delta: {} pair(s), {} phases{}",
        pairs.len(),
        opts.phases,
        match (&opts.left_model, &opts.right_model) {
            (Some(l), Some(r)) => format!(", {l} vs {r}"),
            _ => String::new(),
        },
    );
    let mut suite_left = CostLedger::new();
    let mut suite_right = CostLedger::new();
    for pair in &pairs {
        let (l, r) = render_pair(pair, &opts);
        suite_left.merge(&l);
        suite_right.merge(&r);
    }

    println!(
        "\nSuite totals: left {:.2} Minstr ({} misses, {} evictions, {} promotions), \
         right {:.2} Minstr ({} misses, {} evictions, {} promotions)",
        suite_left.total() / 1e6,
        suite_left.miss_events,
        suite_left.eviction_events,
        suite_left.promotion_events,
        suite_right.total() / 1e6,
        suite_right.miss_events,
        suite_right.eviction_events,
        suite_right.promotion_events,
    );
    println!(
        "Equation 3 overhead ratio (right/left): {:.3}  \
         [miss service ≈ {:.0} instructions for a median 242 B trace]",
        overhead_ratio(&suite_right, &suite_left),
        cost::miss_service(242),
    );
    ExitCode::SUCCESS
}
