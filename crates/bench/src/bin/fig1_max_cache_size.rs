//! Figure 1: maximum code cache size under an unbounded cache.

use gencache_bench::{by_suite, record_all, HarnessOptions};
use gencache_sim::report::{arithmetic_mean, bar, fmt_bytes, TextTable};
use gencache_sim::RecordedRun;
use gencache_workloads::WorkloadProfile;

fn render(title: &str, runs: &[&(WorkloadProfile, RecordedRun)]) {
    println!("\n({title})");
    let max = runs
        .iter()
        .map(|(_, r)| r.summary.max_cache_bytes as f64)
        .fold(0.0f64, f64::max);
    let mut table = TextTable::new(["Benchmark", "Max cache", ""]);
    for (p, r) in runs {
        let bytes = r.summary.max_cache_bytes;
        table.row([p.name.clone(), fmt_bytes(bytes), bar(bytes as f64, max, 40)]);
    }
    print!("{}", table.render());
    let avg = arithmetic_mean(
        &runs
            .iter()
            .map(|(_, r)| r.summary.max_cache_bytes as f64)
            .collect::<Vec<_>>(),
    )
    .unwrap_or(0.0);
    println!("average: {}", fmt_bytes(avg as u64));
}

fn main() {
    let opts = HarnessOptions::from_env();
    println!("Figure 1. Maximum code cache size reached with an unbounded cache.");
    let runs = record_all(&opts);
    let (spec, inter) = by_suite(&runs);
    if !spec.is_empty() {
        render("a) SPEC2000 Benchmarks", &spec);
    }
    if !inter.is_empty() {
        render("b) Interactive Windows Benchmarks", &inter);
    }
}
