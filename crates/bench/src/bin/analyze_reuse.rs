//! Reuse-distance analysis of the benchmark logs (extension).
//!
//! For each benchmark, computes the byte-weighted stack-distance profile
//! and prints the analytic LRU miss-rate-versus-capacity curve around
//! the paper's operating point (0.5 × maxCache). The distribution's
//! shape explains Figure 9: short distances (nursery hits) and a far
//! spike (the long-lived working set) with little in between.

use gencache_bench::{record_all, HarnessOptions};
use gencache_sim::report::{fmt_bytes, TextTable};
use gencache_sim::reuse_profile;

fn main() {
    let opts = HarnessOptions::from_env();
    println!("Byte-weighted reuse-distance profiles and analytic LRU curves.");
    let runs = record_all(&opts);
    let mut table = TextTable::new([
        "Benchmark",
        "median dist",
        "p90 dist",
        "miss @25%",
        "miss @50%",
        "miss @100%",
        "cold floor",
    ]);
    for (p, r) in &runs {
        eprintln!("analyzing {} ...", p.name);
        let profile = reuse_profile(&r.log);
        let peak = r.log.peak_trace_bytes.max(1);
        let cold = profile.cold_accesses() as f64 / profile.total_accesses().max(1) as f64;
        table.row([
            p.name.clone(),
            profile.median_distance().map_or("-".into(), fmt_bytes),
            profile.percentile(90).map_or("-".into(), fmt_bytes),
            format!("{:.2}%", profile.miss_rate_at(peak / 4) * 100.0),
            format!("{:.2}%", profile.miss_rate_at(peak / 2) * 100.0),
            format!("{:.2}%", profile.miss_rate_at(peak) * 100.0),
            format!("{:.2}%", cold * 100.0),
        ]);
    }
    print!("{}", table.render());
    println!("\n(@X% = analytic LRU miss rate with capacity X% of the unbounded peak)");
}
