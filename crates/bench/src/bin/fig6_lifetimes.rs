//! Figure 6: lifetimes of traces as a percentage of total execution time
//! (Equation 2). The y-axis is the unweighted (static) share of traces in
//! each lifetime bucket; the paper's observation is the U shape.

use gencache_bench::{by_suite, export_telemetry, record_all, HarnessOptions};
use gencache_sim::report::{bar, TextTable};
use gencache_sim::RecordedRun;
use gencache_workloads::WorkloadProfile;

const BUCKETS: [&str; 5] = ["<20%", "20-40%", "40-60%", "60-80%", ">80%"];

fn render(title: &str, runs: &[&(WorkloadProfile, RecordedRun)]) {
    println!("\n({title})");
    let mut table = TextTable::new([
        "Benchmark",
        BUCKETS[0],
        BUCKETS[1],
        BUCKETS[2],
        BUCKETS[3],
        BUCKETS[4],
        "U-shaped",
    ]);
    let mut sums = [0.0f64; 5];
    for (p, r) in runs {
        let f = r.summary.lifetimes.fractions();
        for (s, v) in sums.iter_mut().zip(f) {
            *s += v;
        }
        table.row([
            p.name.clone(),
            format!("{:.0}%", f[0] * 100.0),
            format!("{:.0}%", f[1] * 100.0),
            format!("{:.0}%", f[2] * 100.0),
            format!("{:.0}%", f[3] * 100.0),
            format!("{:.0}%", f[4] * 100.0),
            if r.summary.lifetimes.is_u_shaped() {
                "yes"
            } else {
                "no"
            }
            .to_owned(),
        ]);
    }
    print!("{}", table.render());
    println!("\nsuite average distribution:");
    let n = runs.len() as f64;
    let max = sums.iter().copied().fold(0.0f64, f64::max) / n;
    for (label, s) in BUCKETS.iter().zip(sums) {
        let v = s / n;
        println!("  {label:>7} {:>4.0}% {}", v * 100.0, bar(v, max, 40));
    }
}

fn main() {
    let opts = HarnessOptions::from_env();
    println!("Figure 6. Trace lifetimes as a percentage of execution time.");
    let runs = record_all(&opts);
    export_telemetry(&opts, &runs).expect("telemetry export failed");
    let (spec, inter) = by_suite(&runs);
    if !spec.is_empty() {
        render("a) SPEC2000 Benchmarks", &spec);
    }
    if !inter.is_empty() {
        render("b) Interactive Windows Benchmarks", &inter);
    }
}
