//! `simulate` — offline what-if replay of an exported event stream
//! against hypothetical cache layouts.
//!
//! The paper's methodology separates the frontend request stream from
//! cache management: one recorded stream can evaluate *any* layout.
//! This tool closes that loop offline. It parses a `--events-out`
//! export back into each benchmark's canonical frontend trace — one
//! line at a time through the shared bounded-memory
//! [`StreamIngest`](gencache_bench::ingest::StreamIngest), the same
//! layer the `gencache-serve` daemon drives over TCP — then replays
//! the ordinary machinery against configurations that were never
//! recorded: any capacity, any nursery/probation/persistent split, any
//! promotion rule, any local replacement policy, producing the same
//! metrics/cost documents the live path emits. A Belady-style
//! furthest-next-use oracle provides a lower-bound row, and `--watch`
//! turns the tool into a regression gate against a stored baseline.
//!
//! ```text
//! simulate --events FILE.jsonl [--spec unified] [--spec 30-20-50@evict5] ...
//!          [--grid] [--oracle] [--windows] [--capacity BYTES] [--jobs N]
//!          [--bench NAME] [--model LABEL]
//!          [--metrics-out FILE.json] [--baseline-out FILE.json]
//!          [--stats-out FILE.json] [--watch BASELINE.json] [--tolerance FRAC]
//! ```
//!
//! `--events -` reads the export from stdin, so a fetched or piped
//! stream needs no temp file.
//!
//! Spec labels: `unified`, a local policy (`lru`, `clock`,
//! `flush-on-full`, `preemptive-flush`, `pseudo-circular`, `unbounded`),
//! or `N-P-S@hitK` / `N-P-S@evictK` generational layouts. Defaults to
//! the two configurations the live export records, so
//! `simulate --events X --metrics-out Y` on an unmodified stream
//! reproduces the live `--metrics-out` document byte-for-byte.

use std::fs::File;
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::Instant;

use gencache_bench::ingest::{
    open_lines, render_sim_tables, resolve_sim_specs, run_sim_job, sim_metrics_doc, SimJobOptions,
    SimJobOutput, StreamIngest,
};
use gencache_bench::write_metrics_doc;
use gencache_obs::OracleResult;
use gencache_sim::par::effective_jobs;
use gencache_sim::SimulatedSpec;
use serde::{Deserialize, Serialize};

const USAGE: &str = "use --events FILE / --spec LABEL / --grid / --oracle / --windows / \
     --window-width N / --regret-top N / --capacity BYTES / --jobs N / --bench NAME / \
     --model LABEL / --metrics-out FILE / --baseline-out FILE / --stats-out FILE / \
     --watch FILE / --tolerance FRAC";

struct SimOptions {
    events: String,
    specs: Vec<String>,
    grid: bool,
    oracle: bool,
    windows: bool,
    window_width: Option<u64>,
    regret_top: Option<usize>,
    capacity: Option<u64>,
    jobs: Option<usize>,
    bench: Option<String>,
    model: Option<String>,
    metrics_out: Option<String>,
    baseline_out: Option<String>,
    stats_out: Option<String>,
    watch: Option<String>,
    tolerance: f64,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> SimOptions {
    let mut opts = SimOptions {
        events: String::new(),
        specs: Vec::new(),
        grid: false,
        oracle: false,
        windows: false,
        window_width: None,
        regret_top: None,
        capacity: None,
        jobs: None,
        bench: None,
        model: None,
        metrics_out: None,
        baseline_out: None,
        stats_out: None,
        watch: None,
        tolerance: 0.0,
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--events" => opts.events = it.next().expect("--events needs a file path"),
            "--spec" => opts.specs.push(it.next().expect("--spec needs a label")),
            "--grid" => opts.grid = true,
            "--oracle" => opts.oracle = true,
            "--windows" => opts.windows = true,
            "--window-width" => {
                let v = it.next().expect("--window-width needs an access count");
                let width: u64 = v.parse().expect("--window-width must be a positive integer");
                assert!(width > 0, "--window-width must be positive");
                opts.window_width = Some(width);
            }
            "--regret-top" => {
                let v = it.next().expect("--regret-top needs a count");
                let top: usize = v.parse().expect("--regret-top must be a positive integer");
                assert!(top > 0, "--regret-top must be positive");
                opts.regret_top = Some(top);
            }
            "--capacity" => {
                let v = it.next().expect("--capacity needs a byte count");
                let bytes: u64 = v.parse().expect("--capacity must be a positive integer");
                assert!(bytes > 0, "--capacity must be positive");
                opts.capacity = Some(bytes);
            }
            "--jobs" => {
                let v = it.next().expect("--jobs needs a value");
                let jobs: usize = v.parse().expect("--jobs must be a positive integer");
                assert!(jobs > 0, "--jobs must be positive");
                opts.jobs = Some(jobs);
            }
            "--bench" => opts.bench = Some(it.next().expect("--bench needs a benchmark name")),
            "--model" => opts.model = Some(it.next().expect("--model needs a model label")),
            "--metrics-out" => {
                opts.metrics_out = Some(it.next().expect("--metrics-out needs a file path"));
            }
            "--baseline-out" => {
                opts.baseline_out = Some(it.next().expect("--baseline-out needs a file path"));
            }
            "--stats-out" => {
                opts.stats_out = Some(it.next().expect("--stats-out needs a file path"));
            }
            "--watch" => opts.watch = Some(it.next().expect("--watch needs a baseline file")),
            "--tolerance" => {
                let v = it.next().expect("--tolerance needs a fraction");
                opts.tolerance = v.parse().expect("--tolerance must be a number");
                assert!(opts.tolerance >= 0.0, "--tolerance must be non-negative");
            }
            other => panic!("unknown argument {other:?}; {USAGE}"),
        }
    }
    assert!(!opts.events.is_empty(), "--events FILE is required; {USAGE}");
    opts
}

/// Streams the export (file or stdin) through the shared ingest, line
/// by line — the raw events are never materialized.
fn ingest_export(path: &str) -> Result<StreamIngest, String> {
    let reader = open_lines(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut ingest = StreamIngest::new();
    let mut first_content_line = true;
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        ingest
            .push_line(&line)
            .map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        if first_content_line && !ingest.has_header() {
            eprintln!(
                "warning: {path} has no schema header (pre-v2 export); run metadata is \
                 unavailable, so --capacity is required"
            );
        }
        first_content_line = false;
    }
    if ingest.lines() == 0 {
        return Err(format!("{path} contains no event streams"));
    }
    Ok(ingest)
}

/// The compact per-(benchmark, spec) summary `--baseline-out` stores
/// and `--watch` compares against.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BaselineRow {
    benchmark: String,
    spec: String,
    accesses: u64,
    hits: u64,
    misses: u64,
    uncachable: u64,
    minstr: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Baseline {
    schema: String,
    version: u32,
    rows: Vec<BaselineRow>,
}

const BASELINE_SCHEMA: &str = "gencache-sim-baseline";
const BASELINE_VERSION: u32 = 1;

fn baseline_row(benchmark: &str, sim: &SimulatedSpec) -> BaselineRow {
    BaselineRow {
        benchmark: benchmark.to_string(),
        spec: sim.label.clone(),
        accesses: sim.metrics.accesses,
        hits: sim.metrics.hits,
        misses: sim.metrics.misses,
        uncachable: sim.result.metrics.uncachable,
        minstr: sim.costs.total.total(),
    }
}

fn oracle_row(benchmark: &str, oracle: &OracleResult) -> BaselineRow {
    BaselineRow {
        benchmark: benchmark.to_string(),
        spec: "oracle".to_string(),
        accesses: oracle.accesses,
        hits: oracle.hits,
        misses: oracle.misses,
        uncachable: oracle.uncachable,
        minstr: 0.0,
    }
}

fn baseline_rows(out: &SimJobOutput) -> Vec<BaselineRow> {
    let mut rows = Vec::new();
    for bench in &out.benches {
        for sim in &bench.sims {
            rows.push(baseline_row(&bench.name, sim));
        }
        if let Some(oracle) = &bench.oracle {
            rows.push(oracle_row(&bench.name, oracle));
        }
    }
    rows
}

/// Peak resident set size of this process in bytes, via `getrusage(2)`
/// — the same method the serve-path bench notes in EXPERIMENTS.md use.
/// Declared by hand because the workspace carries no libc binding;
/// `ru_maxrss` is reported in kilobytes on Linux.
#[cfg(target_os = "linux")]
fn peak_rss_bytes() -> u64 {
    #[repr(C)]
    struct Rusage {
        ru_utime: [i64; 2],
        ru_stime: [i64; 2],
        ru_maxrss: i64,
        rest: [i64; 13],
    }
    extern "C" {
        fn getrusage(who: i32, usage: *mut Rusage) -> i32;
    }
    const RUSAGE_SELF: i32 = 0;
    let mut usage = Rusage {
        ru_utime: [0; 2],
        ru_stime: [0; 2],
        ru_maxrss: 0,
        rest: [0; 13],
    };
    if unsafe { getrusage(RUSAGE_SELF, &mut usage) } == 0 {
        usage.ru_maxrss.max(0) as u64 * 1024
    } else {
        0
    }
}

#[cfg(not(target_os = "linux"))]
fn peak_rss_bytes() -> u64 {
    0
}

/// The offline-replay throughput/footprint doc `--stats-out` writes,
/// consumed by `gencache-client bench --replay-stats` for the serve
/// trajectory.
fn replay_stats_doc(cells: u64, wall_us: u64) -> String {
    let cells_per_sec = cells as f64 / (wall_us as f64 / 1e6).max(1e-9);
    let doc = serde::Value::Object(vec![
        (
            "schema".to_string(),
            serde::Value::Str("gencache-sim-replay-stats".to_string()),
        ),
        ("version".to_string(), serde::Value::UInt(1)),
        ("replay_cells".to_string(), serde::Value::UInt(cells)),
        ("replay_wall_us".to_string(), serde::Value::UInt(wall_us)),
        (
            "replay_cells_per_sec".to_string(),
            serde::Value::Float(cells_per_sec),
        ),
        (
            "peak_rss_bytes".to_string(),
            serde::Value::UInt(peak_rss_bytes()),
        ),
    ]);
    gencache_bench::value_to_json(&doc)
}

/// Scores every adaptive spec against the static rows on the
/// oracle-regret scale — one block per benchmark that simulated at
/// least one adaptive spec and one static spec under `--oracle`.
/// The verdict line is the machine-checkable judgment `check.sh`
/// gates on.
fn render_adaptive_regret(out: &SimJobOutput) -> String {
    use std::fmt::Write as _;
    let mut text = String::new();
    for bench in &out.benches {
        let adaptive: Vec<&SimulatedSpec> = bench
            .sims
            .iter()
            .filter(|s| s.switches.is_some() && s.regret.is_some())
            .collect();
        let statics: Vec<&SimulatedSpec> = bench
            .sims
            .iter()
            .filter(|s| s.switches.is_none() && s.regret.is_some())
            .collect();
        if adaptive.is_empty() || statics.is_empty() {
            continue;
        }
        let regret_of = |s: &SimulatedSpec| s.regret.as_ref().expect("filtered").total.regret_sum;
        let best = statics
            .iter()
            .min_by_key(|s| (regret_of(s), s.label.clone()))
            .expect("non-empty");
        let worst = statics
            .iter()
            .max_by_key(|s| (regret_of(s), s.label.clone()))
            .expect("non-empty");
        let _ = writeln!(text, "\n=== adaptive vs static regret: {} ===", bench.name);
        let _ = writeln!(
            text,
            "  best static  {:<24} regret {}",
            best.label,
            regret_of(best)
        );
        let _ = writeln!(
            text,
            "  worst static {:<24} regret {}",
            worst.label,
            regret_of(worst)
        );
        for sim in adaptive {
            let report = sim.switches.as_ref().expect("filtered");
            let a = regret_of(sim);
            let _ = writeln!(
                text,
                "  adaptive     {:<24} regret {} ({} epochs, {} drifts, {} probes, {} switches)",
                sim.label, a, report.epochs, report.drifts, report.probes, report.switches
            );
            let verdict = if a < regret_of(best) {
                "adaptive beats every static spec".to_string()
            } else if a < regret_of(worst) {
                format!(
                    "adaptive beats worst static, trails best static by {}",
                    a - regret_of(best)
                )
            } else {
                "adaptive does not beat worst static".to_string()
            };
            let _ = writeln!(text, "  verdict[{}]: {}", sim.label, verdict);
        }
    }
    text
}

/// Relative drift between a baseline and a current value.
fn drift(base: f64, current: f64) -> f64 {
    if base == current {
        0.0
    } else {
        (current - base).abs() / base.abs().max(1.0)
    }
}

/// Diffs the simulated rows against a stored baseline. Any row drifting
/// past `tolerance` (relative), or missing from the current run, is a
/// violation.
fn watch(path: &str, rows: &[BaselineRow], tolerance: f64) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let baseline: Baseline =
        serde_json::from_str(&text).map_err(|e| format!("{path}: not a simulate baseline: {e}"))?;
    if baseline.schema != BASELINE_SCHEMA {
        return Err(format!(
            "{path}: schema {:?} is not {BASELINE_SCHEMA:?}",
            baseline.schema
        ));
    }
    if baseline.version != BASELINE_VERSION {
        return Err(format!(
            "{path}: unsupported baseline version {} (this build understands {})",
            baseline.version, BASELINE_VERSION
        ));
    }
    let mut violations = 0usize;
    println!("\nregression watch against {path} (tolerance {tolerance}):");
    for base in &baseline.rows {
        let Some(current) = rows
            .iter()
            .find(|r| r.benchmark == base.benchmark && r.spec == base.spec)
        else {
            println!("  MISSING {} [{}]: row not simulated", base.benchmark, base.spec);
            violations += 1;
            continue;
        };
        let worst = [
            ("accesses", base.accesses as f64, current.accesses as f64),
            ("hits", base.hits as f64, current.hits as f64),
            ("misses", base.misses as f64, current.misses as f64),
            ("uncachable", base.uncachable as f64, current.uncachable as f64),
            ("Minstr", base.minstr, current.minstr),
        ]
        .into_iter()
        .map(|(field, b, c)| (field, b, c, drift(b, c)))
        .max_by(|a, b| a.3.total_cmp(&b.3))
        .expect("non-empty field list");
        if worst.3 > tolerance {
            println!(
                "  FAIL {} [{}]: {} drifted {:.4}% ({} -> {})",
                base.benchmark,
                base.spec,
                worst.0,
                worst.3 * 100.0,
                worst.1,
                worst.2,
            );
            violations += 1;
        }
    }
    let tracked = baseline.rows.len();
    let fresh = rows
        .iter()
        .filter(|r| {
            !baseline
                .rows
                .iter()
                .any(|b| b.benchmark == r.benchmark && b.spec == r.spec)
        })
        .count();
    println!(
        "  {} baseline rows checked, {} violations, {} new rows not in baseline",
        tracked, violations, fresh
    );
    Ok(violations)
}

fn main() -> ExitCode {
    let opts = parse_args(std::env::args().skip(1));
    let ingest = match ingest_export(&opts.events) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let inputs = match ingest.into_inputs(
        opts.bench.as_deref(),
        opts.model.as_deref(),
        opts.capacity,
    ) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let specs = match resolve_sim_specs(&opts.specs, opts.grid) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let jobs = effective_jobs(opts.jobs);
    eprintln!(
        "simulating {} benchmarks x {} specs ({jobs} jobs) ...",
        inputs.len(),
        specs.len()
    );
    let started = Instant::now();
    let job_options = SimJobOptions {
        oracle: opts.oracle,
        windows: opts.windows,
        window_width: opts.window_width,
        regret_top: opts.regret_top,
    };
    let out = match run_sim_job(&inputs, &specs, job_options, jobs, None) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();

    print!("{}", render_sim_tables(&out));
    print!("{}", render_adaptive_regret(&out));
    eprintln!(
        "simulated {} replays in {:.3}s wall-clock",
        out.benches.len() * out.labels.len(),
        elapsed.as_secs_f64()
    );
    let rows = baseline_rows(&out);

    if let Some(path) = &opts.metrics_out {
        if let Err(e) = write_metrics_doc(path, sim_metrics_doc(&out)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote metrics to {path}");
    }

    if let Some(path) = &opts.stats_out {
        let cells = (out.benches.len() * out.labels.len()) as u64;
        let json = replay_stats_doc(cells, elapsed.as_micros() as u64);
        let written = File::create(path).and_then(|mut f| {
            f.write_all(json.as_bytes())?;
            f.write_all(b"\n")
        });
        if let Err(e) = written {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote replay stats to {path}");
    }

    if let Some(path) = &opts.baseline_out {
        let doc = Baseline {
            schema: BASELINE_SCHEMA.to_string(),
            version: BASELINE_VERSION,
            rows: rows.clone(),
        };
        let json = match serde_json::to_string(&doc) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("cannot serialize baseline: {e:?}");
                return ExitCode::FAILURE;
            }
        };
        let written = File::create(path).and_then(|mut f| {
            f.write_all(json.as_bytes())?;
            f.write_all(b"\n")
        });
        if let Err(e) = written {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote baseline ({} rows) to {path}", rows.len());
    }

    if let Some(path) = &opts.watch {
        match watch(path, &rows, opts.tolerance) {
            Ok(0) => println!("watch: OK"),
            Ok(n) => {
                println!("watch: {n} violation(s)");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
