//! `simulate` — offline what-if replay of an exported event stream
//! against hypothetical cache layouts.
//!
//! The paper's methodology separates the frontend request stream from
//! cache management: one recorded stream can evaluate *any* layout.
//! This tool closes that loop offline. It parses a `--events-out`
//! export back into each benchmark's canonical frontend trace, then
//! drives the ordinary replay machinery against configurations that
//! were never recorded — any capacity, any nursery/probation/persistent
//! split, any promotion rule, any local replacement policy — producing
//! the same metrics/cost documents the live path emits. A Belady-style
//! furthest-next-use oracle provides a lower-bound row, and `--watch`
//! turns the tool into a regression gate against a stored baseline.
//!
//! ```text
//! simulate --events FILE.jsonl [--spec unified] [--spec 30-20-50@evict5] ...
//!          [--grid] [--oracle] [--capacity BYTES] [--jobs N]
//!          [--bench NAME] [--model LABEL]
//!          [--metrics-out FILE.json] [--baseline-out FILE.json]
//!          [--watch BASELINE.json] [--tolerance FRAC]
//! ```
//!
//! Spec labels: `unified`, a local policy (`lru`, `clock`,
//! `flush-on-full`, `preemptive-flush`, `pseudo-circular`, `unbounded`),
//! or `N-P-S@hitK` / `N-P-S@evictK` generational layouts. Defaults to
//! the two configurations the live export records, so
//! `simulate --events X --metrics-out Y` on an unmodified stream
//! reproduces the live `--metrics-out` document byte-for-byte.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use std::time::Instant;

use gencache_bench::{export_specs, metrics_doc, sample_interval, write_metrics_doc, SpecReports};
use gencache_obs::{
    oracle_replay, parse_stream_line, reconstruct_trace, CacheEvent, OracleResult, RunMeta,
    SimTrace, StreamLine,
};
use gencache_sim::par::{effective_jobs, par_map};
use gencache_sim::report::TextTable;
use gencache_sim::{
    parse_spec, policy_grid, proportion_grid, simulate_costs, simulate_metrics, trace_to_log,
    AccessLog, ModelSpec, SimSpec, SimulatedSpec,
};
use serde::{Deserialize, Serialize};

const USAGE: &str = "use --events FILE / --spec LABEL / --grid / --oracle / --capacity BYTES / \
     --jobs N / --bench NAME / --model LABEL / --metrics-out FILE / --baseline-out FILE / \
     --watch FILE / --tolerance FRAC";

struct SimOptions {
    events: String,
    specs: Vec<String>,
    grid: bool,
    oracle: bool,
    capacity: Option<u64>,
    jobs: Option<usize>,
    bench: Option<String>,
    model: Option<String>,
    metrics_out: Option<String>,
    baseline_out: Option<String>,
    watch: Option<String>,
    tolerance: f64,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> SimOptions {
    let mut opts = SimOptions {
        events: String::new(),
        specs: Vec::new(),
        grid: false,
        oracle: false,
        capacity: None,
        jobs: None,
        bench: None,
        model: None,
        metrics_out: None,
        baseline_out: None,
        watch: None,
        tolerance: 0.0,
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--events" => opts.events = it.next().expect("--events needs a file path"),
            "--spec" => opts.specs.push(it.next().expect("--spec needs a label")),
            "--grid" => opts.grid = true,
            "--oracle" => opts.oracle = true,
            "--capacity" => {
                let v = it.next().expect("--capacity needs a byte count");
                let bytes: u64 = v.parse().expect("--capacity must be a positive integer");
                assert!(bytes > 0, "--capacity must be positive");
                opts.capacity = Some(bytes);
            }
            "--jobs" => {
                let v = it.next().expect("--jobs needs a value");
                let jobs: usize = v.parse().expect("--jobs must be a positive integer");
                assert!(jobs > 0, "--jobs must be positive");
                opts.jobs = Some(jobs);
            }
            "--bench" => opts.bench = Some(it.next().expect("--bench needs a benchmark name")),
            "--model" => opts.model = Some(it.next().expect("--model needs a model label")),
            "--metrics-out" => {
                opts.metrics_out = Some(it.next().expect("--metrics-out needs a file path"));
            }
            "--baseline-out" => {
                opts.baseline_out = Some(it.next().expect("--baseline-out needs a file path"));
            }
            "--watch" => opts.watch = Some(it.next().expect("--watch needs a baseline file")),
            "--tolerance" => {
                let v = it.next().expect("--tolerance needs a fraction");
                opts.tolerance = v.parse().expect("--tolerance must be a number");
                assert!(opts.tolerance >= 0.0, "--tolerance must be non-negative");
            }
            other => panic!("unknown argument {other:?}; {USAGE}"),
        }
    }
    assert!(!opts.events.is_empty(), "--events FILE is required; {USAGE}");
    opts
}

/// One benchmark's streams as loaded from the export: event streams per
/// model (in first-appearance order) and any run metadata.
#[derive(Default)]
struct BenchStreams {
    models: Vec<String>,
    events: BTreeMap<String, Vec<CacheEvent>>,
    meta: BTreeMap<String, RunMeta>,
}

/// The parsed export: benchmarks in first-appearance order.
struct Export {
    order: Vec<String>,
    benches: BTreeMap<String, BenchStreams>,
}

fn load_export(path: &str) -> Result<Export, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut export = Export {
        order: Vec::new(),
        benches: BTreeMap::new(),
    };
    let mut saw_header = false;
    let mut first_content_line = true;
    for (i, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let parsed =
            parse_stream_line(&line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        match parsed {
            StreamLine::Header(header) => {
                header
                    .validate()
                    .map_err(|e| format!("{path}:{}: {e}", i + 1))?;
                saw_header = true;
            }
            StreamLine::Meta(meta) => {
                let bench = bench_entry(&mut export, &meta.source);
                if !bench.models.contains(&meta.model) {
                    bench.models.push(meta.model.clone());
                }
                bench.meta.insert(meta.model.clone(), meta);
            }
            StreamLine::Event(record) => {
                let bench = bench_entry(&mut export, &record.source);
                if !bench.models.contains(&record.model) {
                    bench.models.push(record.model.clone());
                }
                bench.events.entry(record.model).or_default().push(record.event);
            }
        }
        if first_content_line && !saw_header {
            eprintln!(
                "warning: {path} has no schema header (pre-v2 export); run metadata is \
                 unavailable, so --capacity is required"
            );
        }
        first_content_line = false;
    }
    if export.order.is_empty() {
        return Err(format!("{path} contains no event streams"));
    }
    Ok(export)
}

fn bench_entry<'a>(export: &'a mut Export, source: &str) -> &'a mut BenchStreams {
    if !export.benches.contains_key(source) {
        export.order.push(source.to_string());
        export.benches.insert(source.to_string(), BenchStreams::default());
    }
    export.benches.get_mut(source).expect("just inserted")
}

/// One benchmark ready to simulate: its recovered frontend trace plus
/// the replay parameters the events alone cannot supply.
struct SimInput {
    name: String,
    trace: SimTrace,
    log: AccessLog,
    capacity: u64,
    phases: u32,
}

/// Recovers each benchmark's frontend trace from its streams.
///
/// When the export carries several models of the same benchmark, every
/// stream must reconstruct to the *same* frontend trace — the frontend
/// is independent of cache management by construction, so a mismatch
/// means the file mixes runs and simulating it would be meaningless.
fn reconstruct_inputs(export: &Export, opts: &SimOptions) -> Result<Vec<SimInput>, String> {
    let mut inputs = Vec::new();
    for name in &export.order {
        if opts.bench.as_ref().is_some_and(|want| want != name) {
            continue;
        }
        let bench = &export.benches[name];
        let chosen = match &opts.model {
            Some(label) => {
                if !bench.events.contains_key(label) {
                    return Err(format!(
                        "{name}: no stream for model {label:?}; available: {}",
                        bench.models.join(", ")
                    ));
                }
                label.clone()
            }
            None => bench.models.first().expect("non-empty bench").clone(),
        };
        let trace = reconstruct_trace(&bench.events[&chosen])
            .map_err(|e| format!("{name} [{chosen}]: {e}"))?;
        for (model, events) in &bench.events {
            if model == &chosen {
                continue;
            }
            let other = reconstruct_trace(events).map_err(|e| format!("{name} [{model}]: {e}"))?;
            if other != trace {
                return Err(format!(
                    "{name}: streams for {chosen:?} and {model:?} reconstruct different \
                     frontend traces ({} vs {} ops) — the export mixes runs",
                    trace.ops.len(),
                    other.ops.len()
                ));
            }
        }
        let meta = bench.meta.get(&chosen);
        let peak = match (meta, opts.capacity) {
            (Some(m), _) => m.peak_trace_bytes,
            // Pre-v2 stream: peak footprint unknown; an explicit
            // capacity pins the budget and the peak is only cosmetic.
            (None, Some(capacity)) => capacity * 2,
            (None, None) => {
                return Err(format!(
                    "{name}: stream carries no run metadata (pre-v2 export); \
                     pass --capacity to fix the cache budget"
                ))
            }
        };
        let duration_us = meta.map_or_else(
            || {
                trace
                    .ops
                    .iter()
                    .filter_map(|op| match *op {
                        gencache_obs::TraceOp::Create { time, .. }
                        | gencache_obs::TraceOp::Access { time, .. }
                        | gencache_obs::TraceOp::Invalidate { time, .. } => {
                            Some(time.as_micros())
                        }
                        _ => None,
                    })
                    .max()
                    .map_or(0, |t| t + 1)
            },
            |m| m.duration_us,
        );
        let capacity = opts.capacity.unwrap_or_else(|| (peak / 2).max(1));
        let phases = meta.map_or(1, |m| m.phases.max(1));
        let log = trace_to_log(&trace, name.clone(), duration_us, peak);
        inputs.push(SimInput {
            name: name.clone(),
            trace,
            log,
            capacity,
            phases,
        });
    }
    if inputs.is_empty() {
        return Err(match &opts.bench {
            Some(want) => format!(
                "benchmark {want:?} not in export; available: {}",
                export.order.join(", ")
            ),
            None => "no benchmarks selected".to_string(),
        });
    }
    Ok(inputs)
}

/// Resolves the spec list: explicit `--spec` labels, plus the §6 sweep
/// grid under `--grid`, defaulting to the live export's configurations.
fn resolve_specs(opts: &SimOptions) -> Result<Vec<SimSpec>, String> {
    let mut specs = Vec::new();
    for label in &opts.specs {
        specs.push(parse_spec(label)?);
    }
    if opts.grid {
        specs.push(SimSpec::Model(ModelSpec::Unified));
        for proportions in proportion_grid() {
            for policy in policy_grid() {
                specs.push(SimSpec::Model(ModelSpec::Generational {
                    proportions,
                    policy,
                }));
            }
        }
    }
    if specs.is_empty() {
        for (_, spec) in export_specs() {
            specs.push(SimSpec::Model(spec));
        }
    }
    // Dedupe by label, keeping first appearance.
    let mut seen = Vec::new();
    specs.retain(|s| {
        let label = s.label();
        if seen.contains(&label) {
            false
        } else {
            seen.push(label);
            true
        }
    });
    Ok(specs)
}

/// The compact per-(benchmark, spec) summary `--baseline-out` stores
/// and `--watch` compares against.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BaselineRow {
    benchmark: String,
    spec: String,
    accesses: u64,
    hits: u64,
    misses: u64,
    uncachable: u64,
    minstr: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Baseline {
    schema: String,
    version: u32,
    rows: Vec<BaselineRow>,
}

const BASELINE_SCHEMA: &str = "gencache-sim-baseline";
const BASELINE_VERSION: u32 = 1;

fn baseline_row(benchmark: &str, sim: &SimulatedSpec) -> BaselineRow {
    BaselineRow {
        benchmark: benchmark.to_string(),
        spec: sim.label.clone(),
        accesses: sim.metrics.accesses,
        hits: sim.metrics.hits,
        misses: sim.metrics.misses,
        uncachable: sim.result.metrics.uncachable,
        minstr: sim.costs.total.total(),
    }
}

fn oracle_row(benchmark: &str, oracle: &OracleResult) -> BaselineRow {
    BaselineRow {
        benchmark: benchmark.to_string(),
        spec: "oracle".to_string(),
        accesses: oracle.accesses,
        hits: oracle.hits,
        misses: oracle.misses,
        uncachable: oracle.uncachable,
        minstr: 0.0,
    }
}

/// Relative drift between a baseline and a current value.
fn drift(base: f64, current: f64) -> f64 {
    if base == current {
        0.0
    } else {
        (current - base).abs() / base.abs().max(1.0)
    }
}

/// Diffs the simulated rows against a stored baseline. Any row drifting
/// past `tolerance` (relative), or missing from the current run, is a
/// violation.
fn watch(path: &str, rows: &[BaselineRow], tolerance: f64) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let baseline: Baseline =
        serde_json::from_str(&text).map_err(|e| format!("{path}: not a simulate baseline: {e}"))?;
    if baseline.schema != BASELINE_SCHEMA {
        return Err(format!(
            "{path}: schema {:?} is not {BASELINE_SCHEMA:?}",
            baseline.schema
        ));
    }
    if baseline.version != BASELINE_VERSION {
        return Err(format!(
            "{path}: unsupported baseline version {} (this build understands {})",
            baseline.version, BASELINE_VERSION
        ));
    }
    let mut violations = 0usize;
    println!("\nregression watch against {path} (tolerance {tolerance}):");
    for base in &baseline.rows {
        let Some(current) = rows
            .iter()
            .find(|r| r.benchmark == base.benchmark && r.spec == base.spec)
        else {
            println!("  MISSING {} [{}]: row not simulated", base.benchmark, base.spec);
            violations += 1;
            continue;
        };
        let worst = [
            ("accesses", base.accesses as f64, current.accesses as f64),
            ("hits", base.hits as f64, current.hits as f64),
            ("misses", base.misses as f64, current.misses as f64),
            ("uncachable", base.uncachable as f64, current.uncachable as f64),
            ("Minstr", base.minstr, current.minstr),
        ]
        .into_iter()
        .map(|(field, b, c)| (field, b, c, drift(b, c)))
        .max_by(|a, b| a.3.total_cmp(&b.3))
        .expect("non-empty field list");
        if worst.3 > tolerance {
            println!(
                "  FAIL {} [{}]: {} drifted {:.4}% ({} -> {})",
                base.benchmark,
                base.spec,
                worst.0,
                worst.3 * 100.0,
                worst.1,
                worst.2,
            );
            violations += 1;
        }
    }
    let tracked = baseline.rows.len();
    let fresh = rows
        .iter()
        .filter(|r| {
            !baseline
                .rows
                .iter()
                .any(|b| b.benchmark == r.benchmark && b.spec == r.spec)
        })
        .count();
    println!(
        "  {} baseline rows checked, {} violations, {} new rows not in baseline",
        tracked, violations, fresh
    );
    Ok(violations)
}

fn main() -> ExitCode {
    let opts = parse_args(std::env::args().skip(1));
    let export = match load_export(&opts.events) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let inputs = match reconstruct_inputs(&export, &opts) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let specs = match resolve_specs(&opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let jobs = effective_jobs(opts.jobs);
    eprintln!(
        "simulating {} benchmarks x {} specs ({jobs} jobs) ...",
        inputs.len(),
        specs.len()
    );
    let started = Instant::now();

    // Fan the whole benchmark x spec cross product across the worker
    // pool; results reassemble in input order, so every output below is
    // bit-identical for any --jobs value.
    let cells: Vec<(usize, SimSpec)> = inputs
        .iter()
        .enumerate()
        .flat_map(|(i, _)| specs.iter().map(move |&s| (i, s)))
        .collect();
    let simulated: Vec<SimulatedSpec> = par_map(&cells, jobs, |&(i, spec)| {
        let input = &inputs[i];
        let every = sample_interval(&input.log);
        let (result, metrics) = simulate_metrics(&input.log, spec, input.capacity, every);
        let (_, costs) = simulate_costs(&input.log, spec, input.capacity, input.phases);
        SimulatedSpec {
            label: spec.label(),
            result,
            metrics,
            costs,
        }
    });
    let per_bench: Vec<&[SimulatedSpec]> = simulated.chunks(specs.len()).collect();
    let oracles: Vec<Option<OracleResult>> = if opts.oracle {
        par_map(&inputs, jobs, |input| {
            Some(oracle_replay(&input.trace, input.capacity))
        })
    } else {
        inputs.iter().map(|_| None).collect()
    };
    let elapsed = started.elapsed();

    let mut rows: Vec<BaselineRow> = Vec::new();
    for ((input, sims), oracle) in inputs.iter().zip(&per_bench).zip(&oracles) {
        println!(
            "\n=== {}: {} ops, capacity {} bytes, {} phases ===",
            input.name,
            input.trace.ops.len(),
            input.capacity,
            input.phases,
        );
        let mut table = TextTable::new(["spec", "accesses", "hits", "misses", "miss%", "Minstr"]);
        for sim in *sims {
            table.row([
                sim.label.clone(),
                sim.metrics.accesses.to_string(),
                sim.metrics.hits.to_string(),
                sim.metrics.misses.to_string(),
                format!("{:.2}", sim.metrics.miss_rate() * 100.0),
                format!("{:.2}", sim.costs.total.total() / 1e6),
            ]);
            rows.push(baseline_row(&input.name, sim));
        }
        if let Some(oracle) = oracle {
            table.row([
                "oracle".to_string(),
                oracle.accesses.to_string(),
                oracle.hits.to_string(),
                oracle.misses.to_string(),
                format!("{:.2}", oracle.miss_rate() * 100.0),
                "lower bound".to_string(),
            ]);
            rows.push(oracle_row(&input.name, oracle));
        }
        print!("{}", table.render());
    }
    eprintln!(
        "simulated {} replays in {:.3}s wall-clock",
        simulated.len(),
        elapsed.as_secs_f64()
    );

    if let Some(path) = &opts.metrics_out {
        let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
        let benchmarks: Vec<(String, Vec<SpecReports>)> = inputs
            .iter()
            .zip(&per_bench)
            .map(|(input, sims)| {
                let reports = sims
                    .iter()
                    .map(|sim| (sim.metrics.clone(), sim.costs.clone(), None))
                    .collect();
                (input.name.clone(), reports)
            })
            .collect();
        if let Err(e) = write_metrics_doc(path, metrics_doc(&labels, &benchmarks)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote metrics to {path}");
    }

    if let Some(path) = &opts.baseline_out {
        let doc = Baseline {
            schema: BASELINE_SCHEMA.to_string(),
            version: BASELINE_VERSION,
            rows: rows.clone(),
        };
        let json = match serde_json::to_string(&doc) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("cannot serialize baseline: {e:?}");
                return ExitCode::FAILURE;
            }
        };
        let written = File::create(path).and_then(|mut f| {
            f.write_all(json.as_bytes())?;
            f.write_all(b"\n")
        });
        if let Err(e) = written {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote baseline ({} rows) to {path}", rows.len());
    }

    if let Some(path) = &opts.watch {
        match watch(path, &rows, opts.tolerance) {
            Ok(0) => println!("watch: OK"),
            Ok(n) => {
                println!("watch: {n} violation(s)");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
