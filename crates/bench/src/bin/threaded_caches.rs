//! Thread-private versus thread-shared code caches (extension).
//!
//! DynamoRIO's caches are thread-private; the paper's generational
//! design multiplies the caches per thread further. Privacy removes
//! synchronization but fragments the capacity budget. This study splits
//! each benchmark's traces across simulated threads (by code module),
//! gives each thread `1/T` of the 0.5 × maxCache budget, and compares
//! the summed miss behaviour against a single shared cache.

use gencache_bench::{record_all, HarnessOptions};
use gencache_sim::report::{arithmetic_mean, TextTable};
use gencache_sim::{replay_thread_private, replay_thread_shared, BudgetSplit, ThreadCacheKind};

fn main() {
    let opts = HarnessOptions::from_env();
    println!("Thread-private vs thread-shared caches (generational 45-10-45).");
    let runs = record_all(&opts);
    let mut table = TextTable::new([
        "Benchmark",
        "shared miss",
        "4T equal",
        "4T peak-prop",
        "8T peak-prop",
    ]);
    let mut penalties = Vec::new();
    for (p, r) in &runs {
        eprintln!("replaying {} ...", p.name);
        let capacity = (r.log.peak_trace_bytes / 2).max(1);
        let shared = replay_thread_shared(&r.log, capacity, ThreadCacheKind::Generational);
        let mut cells = vec![
            p.name.clone(),
            format!("{:.2}%", shared.miss_rate() * 100.0),
        ];
        for (threads, split) in [
            (4u32, BudgetSplit::Equal),
            (4, BudgetSplit::PeakProportional),
            (8, BudgetSplit::PeakProportional),
        ] {
            let private = replay_thread_private(
                &r.log,
                threads,
                capacity,
                ThreadCacheKind::Generational,
                split,
            );
            if threads == 4 && split == BudgetSplit::PeakProportional && shared.miss_rate() > 0.0 {
                penalties.push(private.miss_rate() / shared.miss_rate());
            }
            cells.push(format!("{:.2}%", private.miss_rate() * 100.0));
        }
        table.row(cells);
    }
    print!("{}", table.render());
    println!(
        "average 4-thread (peak-proportional) private/shared miss-rate ratio: {:.2}x",
        arithmetic_mean(&penalties).unwrap_or(0.0)
    );
}
