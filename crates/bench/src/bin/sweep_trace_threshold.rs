//! Sensitivity of trace formation to the trace-creation threshold
//! (Section 4.1 fixes it at DynamoRIO's default of 50; this extension
//! sweeps it). Lower thresholds create more, colder traces — inflating
//! the cache and the management load; higher thresholds delay trace-cache
//! entry and shrink coverage.

use gencache_bench::HarnessOptions;
use gencache_frontend::Engine;
use gencache_sim::report::{fmt_bytes, TextTable};
use gencache_workloads::{benchmark, ExecutionPlan};

fn main() {
    let opts = HarnessOptions::from_env();
    let mut profile = benchmark("excel").expect("built-in benchmark");
    let scale = if opts.scale > 1 { opts.scale } else { 8 };
    profile = profile.scaled_down(scale);
    let plan = ExecutionPlan::from_profile(&profile).expect("calibrated profile");

    println!("Trace-creation-threshold sweep on `excel` (1/{scale} scale).");
    let mut table = TextTable::new([
        "threshold",
        "traces",
        "trace bytes",
        "accesses",
        "trace exits",
    ]);
    for threshold in [10u32, 25, 50, 75, 100, 200] {
        eprintln!("running threshold {threshold} ...");
        let mut engine = Engine::with_threshold(plan.image().clone(), threshold);
        for ev in plan.stream() {
            engine.on_event(ev, &mut |_| {});
        }
        let s = engine.stats();
        table.row([
            threshold.to_string(),
            s.traces_created.to_string(),
            fmt_bytes(s.trace_bytes_created),
            s.trace_accesses.to_string(),
            s.trace_exits.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("\n(the paper, like DynamoRIO, uses threshold 50)");
}
