//! Defragmentation ablation (Section 4.2): the paper argues a local
//! policy "must either include a defragmentation step, or make efforts to
//! minimize the fragmentation". This extension quantifies the trade:
//! plain LRU (fragmentation → extra evictions) versus LRU with automatic
//! compaction (relocation work instead), with the relocation bill priced
//! by the Table 2 promotion formula.

use std::collections::HashMap;

use gencache_bench::{record_all, HarnessOptions};
use gencache_cache::{CodeCache, EvictionCause, LruCache, TraceId, TraceRecord};
use gencache_core::cost;
use gencache_sim::report::{arithmetic_mean, TextTable};
use gencache_sim::{AccessLog, LogRecord};

/// Replays a log directly into a bare cache, returning
/// `(accesses, misses)`.
fn replay_cache(log: &AccessLog, cache: &mut LruCache) -> (u64, u64) {
    let mut catalog: HashMap<TraceId, TraceRecord> = HashMap::new();
    let mut accesses = 0u64;
    let mut misses = 0u64;
    for record in &log.records {
        match *record {
            LogRecord::Create { record, time } => {
                catalog.insert(record.id, record);
                accesses += 1;
                misses += 1;
                let _ = cache.insert(record, time);
            }
            LogRecord::Access { id, time } => {
                accesses += 1;
                if !cache.touch(id, time) {
                    misses += 1;
                    let rec = catalog[&id];
                    let _ = cache.insert(rec, time);
                }
            }
            LogRecord::Invalidate { id, .. } => {
                cache.remove(id, EvictionCause::Unmapped);
            }
            LogRecord::Pin { id } => {
                cache.set_pinned(id, true);
            }
            LogRecord::Unpin { id } => {
                cache.set_pinned(id, false);
            }
        }
    }
    (accesses, misses)
}

fn main() {
    let opts = HarnessOptions::from_env();
    println!("Defragmentation ablation: plain LRU vs LRU with compaction (0.5 x maxCache).");
    let runs = record_all(&opts);
    let mut table = TextTable::new([
        "Benchmark",
        "LRU miss",
        "LRU+defrag miss",
        "defrag runs",
        "moved bytes",
        "relocation cost",
    ]);
    let mut plain_rates = Vec::new();
    let mut defrag_rates = Vec::new();
    for (p, r) in &runs {
        eprintln!("replaying {} ...", p.name);
        let cap = (r.log.peak_trace_bytes / 2).max(1);

        let mut plain = LruCache::new(cap);
        let (acc, plain_misses) = replay_cache(&r.log, &mut plain);

        let mut compacting = LruCache::with_defrag_threshold(cap, 0.25);
        let (_, defrag_misses) = replay_cache(&r.log, &mut compacting);

        // Price the relocations: moved bytes at the Table 2 promotion
        // formula's rate, approximating each moved trace by the median
        // trace size.
        let median = r.log.median_trace_bytes().max(1);
        let moved_traces = compacting.defrag_moved_bytes() / u64::from(median);
        let relocation_cost = moved_traces as f64 * cost::promotion(median);

        plain_rates.push(plain_misses as f64 / acc as f64);
        defrag_rates.push(defrag_misses as f64 / acc as f64);
        table.row([
            p.name.clone(),
            format!("{:.2}%", plain_misses as f64 / acc as f64 * 100.0),
            format!("{:.2}%", defrag_misses as f64 / acc as f64 * 100.0),
            compacting.defrag_runs().to_string(),
            compacting.defrag_moved_bytes().to_string(),
            format!("{relocation_cost:.2e} instr"),
        ]);
    }
    print!("{}", table.render());
    println!(
        "average miss rates: LRU {:.2}%  LRU+defrag {:.2}%",
        arithmetic_mean(&plain_rates).unwrap_or(0.0) * 100.0,
        arithmetic_mean(&defrag_rates).unwrap_or(0.0) * 100.0,
    );
}
