//! Per-thread trace duplication (extension).
//!
//! DynamoRIO's caches are thread-private: when several threads execute
//! the same hot code, each thread's frontend independently builds its own
//! copy of the shared traces. This study records representative
//! benchmarks with 1, 2, and 4 guest threads (shared long-lived regions
//! rotate across threads; phase-local code stays thread-private) and
//! reports the cache growth that privacy costs.

use gencache_bench::HarnessOptions;
use gencache_sim::record;
use gencache_sim::report::{fmt_bytes, TextTable};
use gencache_workloads::benchmark;

fn main() {
    let opts = HarnessOptions::from_env();
    let scale = if opts.scale > 1 { opts.scale } else { 4 };
    println!("Per-thread trace duplication (thread-private frontends, 1/{scale} scale).");
    let mut table = TextTable::new([
        "Benchmark",
        "threads",
        "traces",
        "trace bytes",
        "peak trace cache",
        "growth",
    ]);
    for name in ["excel", "pinball", "crafty"] {
        let base = benchmark(name).expect("built-in").scaled_down(scale);
        let mut base_bytes = 0u64;
        for threads in [1u32, 2, 4] {
            let mut profile = base.clone();
            profile.threads = threads;
            eprintln!("recording {name} with {threads} thread(s) ...");
            let run = record(&profile).expect("calibrated profile");
            if threads == 1 {
                base_bytes = run.frontend.trace_bytes_created.max(1);
            }
            table.row([
                name.to_owned(),
                threads.to_string(),
                run.summary.traces_created.to_string(),
                fmt_bytes(run.frontend.trace_bytes_created),
                fmt_bytes(run.summary.peak_trace_bytes),
                format!(
                    "{:.2}x",
                    run.frontend.trace_bytes_created as f64 / base_bytes as f64
                ),
            ]);
        }
    }
    print!("{}", table.render());
    println!("\n(growth = trace bytes relative to the single-threaded run)");
}
