//! Figure 9: cache miss-rate reduction of generational code caches over a
//! unified cache. Three layouts are compared, every cache sized so the
//! generational total equals the unified baseline (0.5 × maxCache).

use gencache_bench::{by_suite, comparison_pipeline, HarnessOptions};
use gencache_sim::report::{arithmetic_mean, fmt_pct, TextTable};
use gencache_sim::Comparison;
use gencache_workloads::WorkloadProfile;

fn render(title: &str, comparisons: &[&(WorkloadProfile, Comparison)]) {
    println!("\n({title})");
    let mut table = TextTable::new([
        "Benchmark",
        "unified miss",
        "33-33-33 @10",
        "45-10-45 @hit1",
        "25-50-25 @5",
    ]);
    let mut columns = [Vec::new(), Vec::new(), Vec::new()];
    for (p, c) in comparisons {
        for (col, i) in columns.iter_mut().zip(0..3) {
            col.push(c.miss_rate_reduction(i));
        }
        table.row([
            p.name.clone(),
            format!("{:.2}%", c.unified.miss_rate() * 100.0),
            fmt_pct(c.miss_rate_reduction(0)),
            fmt_pct(c.miss_rate_reduction(1)),
            fmt_pct(c.miss_rate_reduction(2)),
        ]);
    }
    print!("{}", table.render());
    println!(
        "average (unweighted arithmetic mean): {} / {} / {}",
        fmt_pct(arithmetic_mean(&columns[0]).unwrap_or(0.0)),
        fmt_pct(arithmetic_mean(&columns[1]).unwrap_or(0.0)),
        fmt_pct(arithmetic_mean(&columns[2]).unwrap_or(0.0)),
    );
}

fn main() {
    let opts = HarnessOptions::from_env();
    println!("Figure 9. Miss-rate reduction of generational caches over a unified cache.");
    println!("Configurations: nursery-probation-persistent proportions; @N = promotion rule.");
    let comparisons = comparison_pipeline(&opts);
    let (spec, inter) = by_suite(&comparisons);
    if !spec.is_empty() {
        render("a) SPEC2000 Benchmarks", &spec);
    }
    if !inter.is_empty() {
        render("b) Interactive Windows Benchmarks", &inter);
    }
}
