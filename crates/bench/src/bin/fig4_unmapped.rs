//! Figure 4: percentage of code traces that must be removed from the code
//! cache due to unmapped memory.

use gencache_bench::{by_suite, export_telemetry, record_all, HarnessOptions};
use gencache_sim::report::{arithmetic_mean, bar, TextTable};

fn main() {
    let opts = HarnessOptions::from_env();
    println!("Figure 4. Trace bytes deleted due to unmapped memory (%).");
    let runs = record_all(&opts);
    export_telemetry(&opts, &runs).expect("telemetry export failed");
    let (spec, inter) = by_suite(&runs);

    if !spec.is_empty() {
        let avg = arithmetic_mean(
            &spec
                .iter()
                .map(|(_, r)| r.summary.unmapped_frac * 100.0)
                .collect::<Vec<_>>(),
        )
        .unwrap_or(0.0);
        println!("\nSPEC2000: average {avg:.1}% (code is never unmapped mid-run)");
    }
    if !inter.is_empty() {
        println!("\n(Interactive Windows Benchmarks)");
        let vals: Vec<f64> = inter
            .iter()
            .map(|(_, r)| r.summary.unmapped_frac * 100.0)
            .collect();
        let max = vals.iter().copied().fold(0.0f64, f64::max);
        let mut table = TextTable::new(["Benchmark", "Unmapped", ""]);
        for ((p, _), v) in inter.iter().zip(&vals) {
            table.row([p.name.clone(), format!("{v:.1}%"), bar(*v, max, 40)]);
        }
        print!("{}", table.render());
        println!(
            "average: {:.1}% (paper: ~15%)",
            arithmetic_mean(&vals).unwrap_or(0.0)
        );
    }
}
