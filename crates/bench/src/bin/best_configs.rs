//! Per-benchmark best generational configuration (Section 6.1: "the best
//! cache configuration varied by benchmark", yet 45-10-45 with
//! promote-on-first-hit "performs best overall"). Sweeps the proportion ×
//! policy grid for every benchmark and reports each winner alongside the
//! standard configuration's result.
//!
//! Defaults to `--scale 4` because the full grid is 30 replays per
//! benchmark.

use gencache_bench::{record_all, HarnessOptions};
use gencache_sim::report::{fmt_pct, TextTable};
use gencache_sim::{best_point, sweep_with_jobs};

fn main() {
    let mut opts = HarnessOptions::from_env();
    if opts.scale == 1 {
        opts.scale = 4;
    }
    println!(
        "Best generational configuration per benchmark (scale 1/{}).",
        opts.scale
    );
    let runs = record_all(&opts);
    let mut table = TextTable::new([
        "Benchmark",
        "best layout",
        "best policy",
        "best reduction",
        "45-10-45@hit1",
    ]);
    let mut wins_for_standard = 0usize;
    for (p, r) in &runs {
        eprintln!("sweeping {} ...", p.name);
        let points = sweep_with_jobs(&r.log, opts.effective_jobs());
        let best = best_point(&points).expect("grid is nonempty");
        let standard = points
            .iter()
            .find(|pt| {
                (pt.nursery - 0.45).abs() < 1e-9
                    && matches!(
                        pt.promotion,
                        gencache_core::PromotionPolicy::OnHit { hits: 1 }
                    )
            })
            .expect("standard config is in the grid");
        if (best.miss_rate_reduction - standard.miss_rate_reduction).abs() < 1e-9 {
            wins_for_standard += 1;
        }
        table.row([
            p.name.clone(),
            format!(
                "{:.0}-{:.0}-{:.0}",
                best.nursery * 100.0,
                best.probation * 100.0,
                best.persistent * 100.0
            ),
            best.promotion.to_string(),
            fmt_pct(best.miss_rate_reduction),
            fmt_pct(standard.miss_rate_reduction),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nbenchmarks where the paper's 45-10-45 promote-on-hit(1) is already optimal: {} of {}",
        wins_for_standard,
        runs.len()
    );
}
