//! Figure 3: trace insertion rate into the code cache (KB/s).

use gencache_bench::{by_suite, record_all, HarnessOptions};
use gencache_sim::report::{bar, TextTable};
use gencache_sim::RecordedRun;
use gencache_workloads::WorkloadProfile;

fn render(title: &str, runs: &[&(WorkloadProfile, RecordedRun)]) {
    println!("\n({title})");
    let max = runs
        .iter()
        .map(|(_, r)| r.summary.insertion_rate_kbps)
        .fold(0.0f64, f64::max);
    let mut table = TextTable::new(["Benchmark", "KB/s", ""]);
    for (p, r) in runs {
        let v = r.summary.insertion_rate_kbps;
        table.row([p.name.clone(), format!("{v:.1}"), bar(v, max, 40)]);
    }
    print!("{}", table.render());
    let below5 = runs
        .iter()
        .filter(|(_, r)| r.summary.insertion_rate_kbps < 5.0)
        .count();
    println!("benchmarks below 5 KB/s: {below5} of {}", runs.len());
}

fn main() {
    let opts = HarnessOptions::from_env();
    println!("Figure 3. Trace insertion rate (KB of traces per second).");
    let runs = record_all(&opts);
    let (spec, inter) = by_suite(&runs);
    if !spec.is_empty() {
        render("a) SPEC2000 Benchmarks", &spec);
    }
    if !inter.is_empty() {
        render("b) Interactive Windows Benchmarks", &inter);
    }
}
