//! Undeletable-trace ablation (Section 4.2): sensitivity of the unified
//! pseudo-circular cache to the rate of exceptions pinning traces in the
//! cache. Pinned traces force the eviction pointer to reset past them;
//! higher pin rates mean more disturbed FIFO order and more fragmentation
//! pressure.

use gencache_bench::HarnessOptions;
use gencache_core::{CacheModel, UnifiedModel};
use gencache_sim::report::TextTable;
use gencache_sim::{record_with, replay_into, RecorderOptions};
use gencache_workloads::benchmark;

fn main() {
    let opts = HarnessOptions::from_env();
    let mut profile = benchmark("word").expect("known benchmark");
    if opts.scale > 1 {
        profile = profile.scaled_down(opts.scale);
    }
    println!("Undeletable-trace sensitivity on `word`: exception rate vs miss rate.");
    let mut table = TextTable::new(["exception rate", "pins", "miss rate", "uncachable inserts"]);
    for rate in [0.0, 1e-4, 1e-3, 1e-2] {
        eprintln!("recording at exception rate {rate} ...");
        let run = record_with(
            &profile,
            RecorderOptions {
                exception_rate: rate,
                pin_window: 64,
            },
        )
        .expect("calibrated profile");
        let pins = run
            .log
            .records
            .iter()
            .filter(|r| matches!(r, gencache_sim::LogRecord::Pin { .. }))
            .count();
        let cap = (run.log.peak_trace_bytes / 2).max(1);
        let mut model = UnifiedModel::new(cap);
        replay_into(&run.log, &mut model);
        table.row([
            format!("{rate:.0e}"),
            pins.to_string(),
            format!("{:.3}%", model.metrics().miss_rate() * 100.0),
            model.metrics().uncachable.to_string(),
        ]);
    }
    print!("{}", table.render());
}
