//! Figure 2: code expansion — final cache size over application footprint
//! (Equation 1).

use gencache_bench::{by_suite, record_all, HarnessOptions};
use gencache_sim::report::{arithmetic_mean, bar, TextTable};
use gencache_sim::RecordedRun;
use gencache_workloads::WorkloadProfile;

fn render(title: &str, runs: &[&(WorkloadProfile, RecordedRun)]) {
    println!("\n({title})");
    let vals: Vec<f64> = runs
        .iter()
        .map(|(_, r)| r.summary.code_expansion_pct)
        .collect();
    let max = vals.iter().copied().fold(0.0f64, f64::max);
    let mut table = TextTable::new(["Benchmark", "Expansion", ""]);
    for ((p, r), v) in runs.iter().zip(&vals) {
        let _ = r;
        table.row([p.name.clone(), format!("{v:.0}%"), bar(*v, max, 40)]);
    }
    print!("{}", table.render());
    let mean = arithmetic_mean(&vals).unwrap_or(0.0);
    let sd = (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt();
    println!("average: {mean:.0}%  std dev: {sd:.0}%");
}

fn main() {
    let opts = HarnessOptions::from_env();
    println!("Figure 2. Code expansion (finalCacheSize / applicationFootprint).");
    let runs = record_all(&opts);
    let (spec, inter) = by_suite(&runs);
    if !spec.is_empty() {
        render("a) SPEC2000 Benchmarks", &spec);
    }
    if !inter.is_empty() {
        render("b) Interactive Windows Benchmarks", &inter);
    }
}
