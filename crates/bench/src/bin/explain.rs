//! `explain` — a trace-grounded narrative of one benchmark's cache
//! behaviour, built from the event stream rather than the end-of-run
//! counters.
//!
//! For the chosen benchmark it records the workload, replays it through
//! the unified baseline and the best generational layout with full
//! instrumentation, and prints per-phase, per-region activity, occupancy
//! timelines, trace-lifetime histograms and the worst
//! evicted-then-remissed traces — the churn signature behind miss-rate
//! cliffs.
//!
//! ```text
//! explain --bench word --scale 16 [--top 10] [--jobs N] [--oracle]
//!         [--windows] [--events-out FILE.jsonl] [--metrics-out FILE.json]
//! explain --parse-events FILE.jsonl   # validate a JSONL export
//! explain --parse-events -            # ... read from stdin
//! ```
//!
//! `--windows` adds the windowed time-series view: per-window miss-rate
//! / churn / occupancy sparklines and the drift detector's annotations
//! (`phase_shift`, `thrash_onset`, `recovery`) with the stats of each
//! annotated window — the same series `simulate --windows` embeds in
//! the metrics document.

use std::collections::BTreeMap;
use std::io::BufRead;
use std::process::ExitCode;

use gencache_bench::ingest::open_lines;
use gencache_bench::{export_specs, export_telemetry, HarnessOptions};
use gencache_core::{SwitchKind, SwitchReport};
use gencache_obs::{
    oracle_replay, parse_stream_line, reconstruct_trace, CacheEvent, CostObserver, EventBuffer,
    Log2Histogram, MetricsObserver, MetricsReport, NextUseIndex, Observer, OracleResult, Region,
    RegretObserver, SamplingObserver, SamplingParams, StreamLine, WindowObserver, WindowReport,
};
use gencache_sim::report::{bar, fmt_bytes, sparkline, TextTable};
use gencache_sim::{
    collect_events, parse_spec, record, replay_sim_observed, simulate_switches, ModelSpec,
    ReplayResult, SimSpec,
};
use gencache_workloads::{benchmark, WorkloadProfile};

struct ExplainOptions {
    bench: String,
    top: usize,
    oracle: bool,
    windows: bool,
    window_width: Option<u64>,
    regret_top: Option<usize>,
    specs: Vec<String>,
    parse_events: Option<String>,
    harness: HarnessOptions,
}

/// Everything the regret narrative needs from the clairvoyant side: the
/// next-use index over the frontend trace and the oracle's own replay
/// (the floor the gap is measured against).
struct OracleContext {
    index: NextUseIndex,
    result: OracleResult,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> ExplainOptions {
    let mut opts = ExplainOptions {
        bench: "word".to_string(),
        top: 10,
        oracle: false,
        windows: false,
        window_width: None,
        regret_top: None,
        specs: Vec::new(),
        parse_events: None,
        harness: HarnessOptions {
            scale: 1,
            ..HarnessOptions::default()
        },
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bench" => {
                opts.bench = it.next().expect("--bench needs a benchmark name");
            }
            "--top" => {
                let v = it.next().expect("--top needs a value");
                opts.top = v.parse().expect("--top must be a non-negative integer");
            }
            "--parse-events" => {
                opts.parse_events = Some(it.next().expect("--parse-events needs a file path"));
            }
            "--oracle" => opts.oracle = true,
            "--windows" => opts.windows = true,
            "--window-width" => {
                let v = it.next().expect("--window-width needs an access count");
                let width: u64 = v.parse().expect("--window-width must be a positive integer");
                assert!(width > 0, "--window-width must be positive");
                opts.window_width = Some(width);
            }
            "--regret-top" => {
                let v = it.next().expect("--regret-top needs a count");
                let top: usize = v.parse().expect("--regret-top must be a positive integer");
                assert!(top > 0, "--regret-top must be positive");
                opts.regret_top = Some(top);
            }
            "--spec" => {
                opts.specs.push(it.next().expect("--spec needs a label"));
            }
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                opts.harness.scale = v.parse().expect("--scale must be a positive integer");
                assert!(opts.harness.scale > 0, "--scale must be positive");
            }
            "--jobs" => {
                let v = it.next().expect("--jobs needs a value");
                let jobs: usize = v.parse().expect("--jobs must be a positive integer");
                assert!(jobs > 0, "--jobs must be positive");
                opts.harness.jobs = Some(jobs);
            }
            "--events-out" => {
                opts.harness.events_out =
                    Some(it.next().expect("--events-out needs a file path"));
            }
            "--metrics-out" => {
                opts.harness.metrics_out =
                    Some(it.next().expect("--metrics-out needs a file path"));
            }
            "--sample" => {
                let v = it.next().expect("--sample needs a value");
                let n: u64 = v.parse().expect("--sample must be a positive integer");
                assert!(n > 0, "--sample must be positive");
                opts.harness.sample = Some(n);
            }
            "--sample-seed" => {
                let v = it.next().expect("--sample-seed needs a value");
                opts.harness.sample_seed =
                    v.parse().expect("--sample-seed must be an integer");
            }
            other => panic!(
                "unknown argument {other:?}; use --bench NAME / --scale N / --jobs N / \
                 --top N / --oracle / --windows / --window-width N / --regret-top N / \
                 --spec LABEL / --events-out FILE / --metrics-out FILE / \
                 --sample N / --sample-seed S / --parse-events FILE"
            ),
        }
    }
    opts
}

/// Validation mode: parse a `--events-out` JSONL file back into its
/// typed framing (schema header, per-stream run metadata, event
/// records) and summarize it, failing loudly on any bad line or on a
/// schema version this build does not understand.
fn parse_events(path: &str) -> ExitCode {
    let reader = match open_lines(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut totals: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut lines = 0u64;
    let mut metas = 0u64;
    let mut header = None;
    for (i, line) in reader.lines().enumerate() {
        let line = line.expect("readable line");
        if line.trim().is_empty() {
            continue;
        }
        match parse_stream_line(&line) {
            Ok(StreamLine::Header(h)) => {
                if let Err(e) = h.validate() {
                    eprintln!("{path}:{}: {e}", i + 1);
                    return ExitCode::FAILURE;
                }
                header = Some(h);
            }
            Ok(StreamLine::Meta(_)) => metas += 1,
            Ok(StreamLine::Event(record)) => {
                lines += 1;
                *totals.entry((record.source, record.model)).or_default() += 1;
            }
            Err(e) => {
                eprintln!("{path}:{}: {e}", i + 1);
                return ExitCode::FAILURE;
            }
        }
    }
    match &header {
        Some(h) => println!(
            "{path}: {} v{}, {lines} events and {metas} run-metadata lines parse cleanly",
            h.schema, h.version
        ),
        None => {
            eprintln!("warning: {path} has no schema header (pre-v2 export)");
            println!("{path}: {lines} events parse cleanly");
        }
    }
    let mut table = TextTable::new(["benchmark", "model", "events"]);
    for ((source, model), count) in &totals {
        table.row([source.clone(), model.clone(), count.to_string()]);
    }
    print!("{}", table.render());
    ExitCode::SUCCESS
}

/// The phase index (0-based) an event time falls into.
fn phase_of(time_us: u64, duration_us: u64, phases: u64) -> usize {
    if duration_us == 0 {
        return 0;
    }
    ((time_us.saturating_mul(phases) / duration_us).min(phases - 1)) as usize
}

fn render_phase_table(
    profile: &WorkloadProfile,
    duration_us: u64,
    events: &[CacheEvent],
    regions: &[Region],
) {
    let phases = u64::from(profile.phases.max(1));
    let mut observers: Vec<MetricsObserver> =
        (0..phases).map(|_| MetricsObserver::new()).collect();
    for event in events {
        let p = phase_of(event.time().as_micros(), duration_us, phases);
        observers[p].on_event(event);
    }
    println!("\nPer-phase activity (phase-local deltas):");
    let mut table = TextTable::new([
        "phase", "region", "hits", "inserts", "cap-evt", "flush", "unmap", "discard", "promote→",
    ]);
    for (p, observer) in observers.iter().enumerate() {
        let report = observer.report();
        let miss_rate = report.miss_rate() * 100.0;
        for (i, &region) in regions.iter().enumerate() {
            let r = report.region(region);
            let activity = r.hits
                + r.inserts
                + r.capacity_evictions
                + r.flush_evictions
                + r.unmap_evictions
                + r.discards
                + r.promotions_out;
            if activity == 0 {
                continue;
            }
            let label = if i == 0 {
                format!("{p} ({miss_rate:.1}% miss)")
            } else {
                String::new()
            };
            table.row([
                label,
                region.name().to_string(),
                r.hits.to_string(),
                r.inserts.to_string(),
                r.capacity_evictions.to_string(),
                r.flush_evictions.to_string(),
                r.unmap_evictions.to_string(),
                r.discards.to_string(),
                r.promotions_out.to_string(),
            ]);
        }
    }
    print!("{}", table.render());
}

fn render_timeline(report: &MetricsReport, regions: &[Region]) {
    if report.timeline.is_empty() {
        return;
    }
    println!("\nOccupancy timeline (resident bytes per region, run left→right):");
    for &region in regions {
        let series: Vec<u64> = report
            .timeline
            .iter()
            .map(|s| s.resident[region.index()])
            .collect();
        let peak = series.iter().copied().max().unwrap_or(0);
        if peak == 0 {
            continue;
        }
        println!(
            "  {:>10} {} peak {}",
            region.name(),
            sparkline(&series),
            fmt_bytes(peak)
        );
    }
    // Interval miss rates: differences of the cumulative sample counters.
    let mut rates = Vec::with_capacity(report.timeline.len());
    let mut prev = (0u64, 0u64);
    for s in &report.timeline {
        let accesses = (s.hits + s.misses).saturating_sub(prev.0 + prev.1);
        let misses = s.misses.saturating_sub(prev.1);
        // Sparkline buckets are coarse; per-mille keeps small rates visible.
        rates.push((misses * 1000).checked_div(accesses).unwrap_or(0));
        prev = (s.hits, s.misses);
    }
    println!("  {:>10} {} (per interval)", "miss rate", sparkline(&rates));
}

fn render_churn(report: &MetricsReport, top: usize) {
    let entries = &report.top_churn[..report.top_churn.len().min(top)];
    if entries.is_empty() {
        println!("\nNo evicted-then-remissed traces: the cache is not churning.");
        return;
    }
    println!("\nTop evicted-then-remissed traces (regeneration churn):");
    let max = entries.iter().map(|e| e.remisses).max().unwrap_or(1);
    let mut table = TextTable::new(["trace", "bytes", "evictions", "remisses", ""]);
    for e in entries {
        table.row([
            format!("t{}", e.trace),
            e.bytes.to_string(),
            e.evictions.to_string(),
            e.remisses.to_string(),
            bar(e.remisses as f64, max as f64, 30),
        ]);
    }
    print!("{}", table.render());
}

/// Prices the event stream through the Table 2 formulas and prints the
/// per-phase / per-region / per-cause attribution. The attributed total
/// is checked against the model's own ledger — same formulas charged in
/// the same order, so they must agree to the bit.
fn render_costs(
    profile: &WorkloadProfile,
    duration_us: u64,
    result: &ReplayResult,
    events: &[CacheEvent],
) {
    let mut observer = CostObserver::with_phases(profile.phases.max(1), duration_us);
    for event in events {
        observer.on_event(event);
    }
    let report = observer.into_report();
    let total = report.total.total();
    let reconciled = report.total == result.ledger;
    println!(
        "\nAttributed instruction overhead (Table 2 pricing): {:.2} Minstr{}",
        total / 1e6,
        if reconciled {
            " — reconciles exactly with the model ledger"
        } else {
            " — MISMATCH against the model ledger"
        },
    );
    for (name, instructions) in report.total.components() {
        if instructions == 0.0 {
            continue;
        }
        println!(
            "  {name:>16}: {:>10.2} Minstr ({:>4.1}%)",
            instructions / 1e6,
            100.0 * instructions / total.max(f64::MIN_POSITIVE),
        );
    }

    println!("\nPer-phase attributed overhead:");
    let peak = report
        .phases
        .iter()
        .map(|p| p.ledger.total())
        .fold(0.0, f64::max);
    let mut table = TextTable::new(["phase", "misses", "evicts", "promotes", "Minstr", ""]);
    for (p, phase) in report.phases.iter().enumerate() {
        let t = phase.ledger.total();
        if t == 0.0 {
            continue;
        }
        table.row([
            p.to_string(),
            phase.ledger.miss_events.to_string(),
            phase.ledger.eviction_events.to_string(),
            phase.ledger.promotion_events.to_string(),
            format!("{:.2}", t / 1e6),
            bar(t, peak, 30),
        ]);
    }
    print!("{}", table.render());

    let top = report.top_phases(5);
    if !top.is_empty() {
        let list: Vec<String> = top
            .iter()
            .map(|&(p, t)| format!("{p} ({:.2} Minstr)", t / 1e6))
            .collect();
        println!("Top phases by cost: {}", list.join(", "));
    }

    let attributed: f64 = report.regions.iter().map(|r| r.ledger.total()).sum();
    if attributed > 0.0 {
        println!("Per-region management overhead (evictions by cause + promotions in):");
        for region in Region::ALL {
            let rc = report.region(region);
            if rc.ledger.total() == 0.0 {
                continue;
            }
            let evict_total = rc.ledger.evictions.max(f64::MIN_POSITIVE);
            let causes: Vec<String> = rc
                .causes()
                .iter()
                .filter(|(_, c)| c.events > 0)
                .map(|(name, c)| {
                    format!("{name} {:.1}%", 100.0 * c.instructions / evict_total)
                })
                .collect();
            println!(
                "  {:>10}: {:>8.2} Minstr ({} evict / {} promote events{}{})",
                region.name(),
                rc.ledger.total() / 1e6,
                rc.ledger.eviction_events,
                rc.ledger.promotion_events,
                if causes.is_empty() { "" } else { "; evictions: " },
                causes.join(", "),
            );
        }
    }
}

/// Replays the events through a bounded-memory sampling observer and
/// prints what it kept, plus reuse-interval quantiles from the raw-value
/// reservoir.
fn render_sampling(params: SamplingParams, sample_every: u64, events: &[CacheEvent]) {
    let mut observer = SamplingObserver::with_timeline(params, sample_every);
    for event in events {
        observer.on_event(event);
    }
    let report = observer.report();
    let s = &report.summary;
    println!(
        "\nSampling (1-in-{}, seed {}): kept {} / skipped {} histogram values, \
         timeline {} samples (stride {}), churn tracked {} / skipped {} traces",
        params.stride,
        params.seed,
        s.hist_recorded,
        s.hist_skipped,
        report.metrics.timeline.len(),
        s.timeline_stride,
        s.churn_tracked,
        s.churn_skipped,
    );
    let r = &report.reuse_sample;
    if !r.values.is_empty() {
        println!(
            "  reuse interval µs from a {}-value reservoir of {} hits: \
             p50 {} / p90 {} / p99 {}",
            r.values.len(),
            r.seen,
            r.quantile(0.5).unwrap_or(0),
            r.quantile(0.9).unwrap_or(0),
            r.quantile(0.99).unwrap_or(0),
        );
    }
}

/// Compact execution-distance formatting for narratives: "211", "4.1k",
/// "2.3M".
fn fmt_execs(n: u64) -> String {
    if n < 1_000 {
        n.to_string()
    } else if n < 1_000_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        format!("{:.1}M", n as f64 / 1e6)
    }
}

/// Scores every eviction in the stream against the Belady alternative
/// and prints the decision-level account of the model's gap to the
/// oracle: the top regret contributors plus a trace-grounded narrative
/// of each one's single worst decision.
fn render_regret(
    profile: &WorkloadProfile,
    duration_us: u64,
    oracle: &OracleContext,
    result: &ReplayResult,
    events: &[CacheEvent],
    top: usize,
    contributor_cap: Option<usize>,
) {
    let mut observer = match contributor_cap {
        Some(cap) => {
            RegretObserver::with_top(&oracle.index, profile.phases.max(1), duration_us, cap)
        }
        None => RegretObserver::with_phases(&oracle.index, profile.phases.max(1), duration_us),
    };
    for event in events {
        observer.on_event(event);
    }
    let report = observer.report();
    let gap = result.metrics.misses.saturating_sub(oracle.result.misses);
    println!(
        "\nOracle regret: {} misses vs Belady floor {} — gap {}; {} of {} evictions \
         regretted, total regret {} executions, {} re-misses ({:.2} Minstr)",
        result.metrics.misses,
        oracle.result.misses,
        gap,
        report.total.regretful,
        report.total.evictions,
        report.total.regret_sum,
        report.total.remisses,
        report.total.remiss_instructions / 1e6,
    );
    if report.contributors.is_empty() {
        println!("  No regretful evictions: every victim was the furthest-reused resident.");
        return;
    }
    let entries = &report.contributors[..report.contributors.len().min(top)];
    let peak = entries.iter().map(|c| c.regret_sum).max().unwrap_or(1).max(1);
    let mut table = TextTable::new([
        "trace", "bytes", "evictions", "regret", "remisses", "Minstr", "",
    ]);
    for c in entries {
        table.row([
            format!("t{}", c.trace),
            c.bytes.to_string(),
            c.evictions.to_string(),
            c.regret_sum.to_string(),
            c.remisses.to_string(),
            format!("{:.2}", c.remiss_instructions / 1e6),
            bar(c.regret_sum as f64, peak as f64, 30),
        ]);
    }
    print!("{}", table.render());
    println!("Worst decisions:");
    for c in entries.iter().take(3.min(entries.len())) {
        let w = &c.worst;
        let reuse = if w.reused {
            format!("reused {} accesses later", fmt_execs(w.next_use))
        } else {
            "never reused again".to_string()
        };
        let alternative = if w.victim == c.trace {
            "no alternative victim existed".to_string()
        } else if w.victim_reused {
            format!("t{} was {} away", w.victim, fmt_execs(w.victim_next_use))
        } else {
            format!("t{} was never needed again", w.victim)
        };
        let share = if gap > 0 && c.remisses > 0 {
            format!(
                " — {:.0}% of the gap to oracle",
                100.0 * c.remisses as f64 / gap as f64
            )
        } else {
            String::new()
        };
        println!(
            "  phase {}, {}, {}: evicted t{} {reuse} while {alternative}{share}",
            w.phase, w.region, w.cause, c.trace,
        );
    }
}

/// The windowed time-series view: miss-rate / churn / occupancy
/// sparklines over the window series, a table of the drift-annotated
/// windows, and a one-line narrative per annotation. The report is the
/// same deterministic series `simulate --windows` embeds in the metrics
/// document, so a cliff diagnosed here is findable in any archived doc.
fn render_windows(sample_every: u64, events: &[CacheEvent]) {
    let mut observer = WindowObserver::new(sample_every);
    for event in events {
        observer.on_event(event);
    }
    let report: WindowReport = observer.report();
    if report.windows.is_empty() {
        return;
    }
    println!(
        "\nWindowed series ({} windows of {} accesses{}):",
        report.windows.len(),
        report.window_accesses,
        if report.doublings > 0 {
            format!(", width doubled {}x", report.doublings)
        } else {
            String::new()
        },
    );
    // Per-mille keeps small rates visible in coarse sparkline buckets.
    let rates: Vec<u64> = report
        .windows
        .iter()
        .map(|w| (w.miss_rate() * 1000.0) as u64)
        .collect();
    let churn: Vec<u64> = report.windows.iter().map(|w| w.remisses).collect();
    let resident: Vec<u64> = report.windows.iter().map(|w| w.resident_bytes).collect();
    println!("  {:>10} {} (per window)", "miss rate", sparkline(&rates));
    println!("  {:>10} {} (re-misses)", "churn", sparkline(&churn));
    println!(
        "  {:>10} {} peak {}",
        "occupancy",
        sparkline(&resident),
        fmt_bytes(resident.iter().copied().max().unwrap_or(0)),
    );
    if report.annotations.is_empty() {
        println!("  No drift detected: the windowed miss rate is stationary.");
        return;
    }
    let mut table = TextTable::new([
        "window", "drift", "miss%", "base%", "remiss", "cap-evt", "resident",
    ]);
    for a in &report.annotations {
        let w = &report.windows[a.window as usize];
        table.row([
            a.window.to_string(),
            a.kind.to_string(),
            format!("{:.1}", a.miss_rate * 100.0),
            format!("{:.1}", a.baseline * 100.0),
            w.remisses.to_string(),
            w.capacity_evictions.to_string(),
            fmt_bytes(w.resident_bytes),
        ]);
    }
    print!("{}", table.render());
    for a in &report.annotations {
        let w = &report.windows[a.window as usize];
        let detail = match a.kind {
            gencache_obs::DriftKind::ThrashOnset => format!(
                "{} of {} misses are re-misses of evicted traces with {} capacity \
                 evictions — regeneration churn, not new code",
                w.remisses, w.misses, w.capacity_evictions,
            ),
            gencache_obs::DriftKind::PhaseShift => format!(
                "{} inserts ({}) in the detection window — a working-set change",
                w.inserts,
                fmt_bytes(w.insert_bytes),
            ),
            gencache_obs::DriftKind::Recovery => {
                "the miss rate stepped back toward the earlier baseline".to_string()
            }
        };
        println!(
            "  window {}: {} — miss rate {:.1}% (baseline {:.1}%); {detail}",
            a.window,
            a.kind,
            a.miss_rate * 100.0,
            a.baseline * 100.0,
        );
    }
}

/// Narrates the adaptive policy controller's run: the epoch cadence,
/// the drift detections, and every probe/commit decision in epoch
/// order — the event-level account behind a `switches` section of the
/// metrics document.
fn render_switches(report: &SwitchReport) {
    println!(
        "\nAdaptive controller ({} epochs of {} accesses): {} drift detections, \
         {} probe installs, {} committed switches, {} temperature promotions",
        report.epochs,
        report.epoch_accesses,
        report.drifts,
        report.probes,
        report.switches,
        report.hot_promotions,
    );
    if report.records.is_empty() {
        println!("  No drift detected: the initial configuration served the whole run.");
        return;
    }
    for r in &report.records {
        match r.kind {
            SwitchKind::Probe => println!(
                "  epoch {:>4} @ {:>9}µs: probe  {} -> {} (miss rate {:.2}% vs baseline {:.2}%)",
                r.epoch,
                r.time_us,
                r.from,
                r.to,
                r.miss_rate * 100.0,
                r.baseline * 100.0,
            ),
            SwitchKind::Commit => println!(
                "  epoch {:>4} @ {:>9}µs: commit {} -> {} (winning audition miss rate {:.2}%)",
                r.epoch,
                r.time_us,
                r.from,
                r.to,
                r.miss_rate * 100.0,
            ),
        }
    }
}

fn render_histogram(label: &str, hist: &Log2Histogram) {
    if hist.is_empty() {
        return;
    }
    println!("\n{label} (log2 buckets, µs):");
    let peak = hist.counts().iter().copied().max().unwrap_or(1);
    for (b, &count) in hist.counts().iter().enumerate() {
        if count == 0 {
            continue;
        }
        let (lo, hi) = Log2Histogram::bucket_range(b);
        println!(
            "  [{lo:>10}, {hi:>10}] {count:>8} {}",
            bar(count as f64, peak as f64, 30)
        );
    }
}

/// Run-level inputs shared by every model's narrative: the workload,
/// its wall-clock span, the timeline sampling stride, and (with
/// `--oracle`) the clairvoyant context all models are scored against.
#[derive(Clone, Copy)]
struct RunContext<'a> {
    profile: &'a WorkloadProfile,
    duration_us: u64,
    sample_every: u64,
    oracle: Option<&'a OracleContext>,
}

fn explain_model(
    ctx: &RunContext<'_>,
    label: &str,
    result: &ReplayResult,
    events: &[CacheEvent],
    opts: &ExplainOptions,
) {
    let RunContext {
        profile,
        duration_us,
        sample_every,
        oracle,
    } = *ctx;
    let top = opts.top;
    let mut observer = MetricsObserver::with_timeline(sample_every);
    for event in events {
        observer.on_event(event);
    }
    let report = observer.report();

    println!("\n=== {label}: {} ===", result.model);
    println!(
        "{} accesses, {} hits, {} misses ({:.2}% miss rate), {} events",
        report.accesses,
        report.hits,
        report.misses,
        report.miss_rate() * 100.0,
        events.len(),
    );
    let regions: Vec<Region> = Region::ALL
        .into_iter()
        .filter(|r| {
            let m = report.region(*r);
            m.inserts + m.hits + m.promotions_in > 0
        })
        .collect();
    for &region in &regions {
        let r = report.region(region);
        println!(
            "  {:>10}: {} inserted / {} hits / {} cap + {} flush + {} unmap + {} discard \
             evictions / peak {}",
            region.name(),
            r.inserts,
            r.hits,
            r.capacity_evictions,
            r.flush_evictions,
            r.unmap_evictions,
            r.discards,
            fmt_bytes(r.peak_resident_bytes),
        );
    }

    render_phase_table(profile, duration_us, events, &regions);
    render_costs(profile, duration_us, result, events);
    if let Some(params) = opts.harness.sampling_params() {
        render_sampling(params, sample_every, events);
    }
    render_timeline(&report, &regions);
    if opts.windows {
        render_windows(opts.window_width.unwrap_or(sample_every), events);
    }
    render_churn(&report, top);
    if let Some(oracle) = oracle {
        render_regret(
            profile,
            duration_us,
            oracle,
            result,
            events,
            top,
            opts.regret_top,
        );
    }
    for &region in &regions {
        let r = report.region(region);
        render_histogram(
            &format!("{} trace lifetime at eviction", region.name()),
            &r.lifetime_us,
        );
    }
}

fn main() -> ExitCode {
    let opts = parse_args(std::env::args().skip(1));
    if let Some(path) = &opts.parse_events {
        return parse_events(path);
    }

    let extra_specs: Vec<(String, SimSpec)> = opts
        .specs
        .iter()
        .map(|label| {
            let spec = parse_spec(label).unwrap_or_else(|e| panic!("{e}"));
            (label.clone(), spec)
        })
        .collect();
    let mut profile = benchmark(&opts.bench)
        .unwrap_or_else(|| panic!("unknown benchmark {:?}", opts.bench));
    if opts.harness.scale > 1 {
        profile = profile.scaled_down(opts.harness.scale);
    }
    eprintln!("recording {} ...", profile.name);
    let run = record(&profile).expect("calibrated profiles always plan");
    let capacity = (run.log.peak_trace_bytes / 2).max(1);
    let duration_us = run.log.duration.as_micros();
    let sample_every = (run.log.access_count() / 64).max(1);

    println!(
        "explain {}: {} log records, {} accesses, budget {} (0.5 × maxCache {}), {} phases",
        profile.name,
        run.log.records.len(),
        run.log.access_count(),
        fmt_bytes(capacity),
        fmt_bytes(run.log.peak_trace_bytes),
        profile.phases,
    );

    // The clairvoyant side is model-independent: every instrumented
    // replay of this log reconstructs the identical frontend trace, so
    // one next-use index and one Belady floor serve all models.
    let oracle = opts.oracle.then(|| {
        let (_, events) = collect_events(&run.log, ModelSpec::Unified);
        let trace = reconstruct_trace(&events).expect("instrumented streams invert");
        let index = NextUseIndex::build(&trace);
        let result = oracle_replay(&trace, capacity);
        OracleContext { index, result }
    });

    let ctx = RunContext {
        profile: &profile,
        duration_us,
        sample_every,
        oracle: oracle.as_ref(),
    };
    for (label, spec) in export_specs() {
        let (result, events) = collect_events(&run.log, spec);
        explain_model(&ctx, label, &result, &events, &opts);
    }
    // Extra --spec models ride the same narrative path; adaptive specs
    // additionally get their controller's decision log narrated.
    for (label, spec) in &extra_specs {
        let (result, buffer) = replay_sim_observed(&run.log, *spec, capacity, EventBuffer::new());
        explain_model(&ctx, label, &result, &buffer.events, &opts);
        if let Some(report) = simulate_switches(&run.log, *spec, capacity) {
            render_switches(&report);
        }
    }

    let runs = vec![(profile, run)];
    export_telemetry(&opts.harness, &runs).expect("telemetry export failed");
    ExitCode::SUCCESS
}
