//! Local-policy ablation (Section 4): pseudo-circular (the paper's
//! choice) versus LRU and Dynamo-style flush-on-full, each as the single
//! unified trace cache at 0.5 × maxCache.
//!
//! Expected shape (prior work, INTERACT 2002): pseudo-circular matches or beats LRU
//! at far lower bookkeeping cost and with zero placement-induced
//! fragmentation; preemptive flushing trails both.

use gencache_bench::{record_all, HarnessOptions};
use gencache_cache::{ClockCache, CodeCache, FlushCache, LruCache, PseudoCircularCache};
use gencache_core::{CacheModel, UnifiedModel};
use gencache_sim::replay_into;
use gencache_sim::report::{arithmetic_mean, TextTable};

fn main() {
    let opts = HarnessOptions::from_env();
    println!("Local-policy ablation: unified cache at 0.5 x maxCache per policy.");
    let runs = record_all(&opts);
    let mut table = TextTable::new([
        "Benchmark",
        "pseudo-circ miss",
        "LRU miss",
        "clock miss",
        "flush miss",
        "LRU frag",
        "pc frag",
    ]);
    let mut pc_rates = Vec::new();
    let mut lru_rates = Vec::new();
    let mut clock_rates = Vec::new();
    let mut flush_rates = Vec::new();
    for (p, r) in &runs {
        eprintln!("replaying {} ...", p.name);
        let cap = (r.log.peak_trace_bytes / 2).max(1);
        let caches: [(&str, Box<dyn CodeCache>); 4] = [
            ("pseudo-circular", Box::new(PseudoCircularCache::new(cap))),
            ("lru", Box::new(LruCache::new(cap))),
            ("clock", Box::new(ClockCache::new(cap))),
            ("flush", Box::new(FlushCache::new(cap))),
        ];
        let mut results = Vec::new();
        for (name, cache) in caches {
            let mut model = UnifiedModel::with_cache(name, cache);
            replay_into(&r.log, &mut model);
            results.push((model.metrics().miss_rate(), model.cache().fragmentation()));
        }
        pc_rates.push(results[0].0);
        lru_rates.push(results[1].0);
        clock_rates.push(results[2].0);
        flush_rates.push(results[3].0);
        table.row([
            p.name.clone(),
            format!("{:.2}%", results[0].0 * 100.0),
            format!("{:.2}%", results[1].0 * 100.0),
            format!("{:.2}%", results[2].0 * 100.0),
            format!("{:.2}%", results[3].0 * 100.0),
            format!("{:.2}", results[1].1.fragmentation_ratio()),
            format!("{:.2}", results[0].1.fragmentation_ratio()),
        ]);
    }
    print!("{}", table.render());
    println!(
        "average miss rates: pseudo-circular {:.2}%  LRU {:.2}%  clock {:.2}%  flush {:.2}%",
        arithmetic_mean(&pc_rates).unwrap_or(0.0) * 100.0,
        arithmetic_mean(&lru_rates).unwrap_or(0.0) * 100.0,
        arithmetic_mean(&clock_rates).unwrap_or(0.0) * 100.0,
        arithmetic_mean(&flush_rates).unwrap_or(0.0) * 100.0,
    );
}
