//! Section 6 configuration sweep: generational cache proportions versus
//! promotion policy, reproducing the paper's two observations — no
//! universal win from unbalanced nursery/persistent sizing, and the link
//! between probation-cache size and promotion threshold.

use std::time::Instant;

use gencache_bench::{export_telemetry, HarnessOptions, Run};
use gencache_sim::report::{fmt_pct, TextTable};
use gencache_sim::{best_point, record, sweep_with_jobs};
use gencache_workloads::benchmark;

fn main() {
    // The sweep is per-benchmark; pick a representative mid-size one by
    // default and let `--suite`/`--scale` narrow the cost.
    let opts = HarnessOptions::from_env();
    let mut runs: Vec<Run> = Vec::new();
    let names = ["crafty", "word"];
    for name in names {
        let mut profile = benchmark(name).expect("known benchmark");
        if opts.scale > 1 {
            profile = profile.scaled_down(opts.scale);
        }
        eprintln!("recording {name} ...");
        let run = record(&profile).expect("calibrated profile");
        let jobs = opts.effective_jobs();
        let started = Instant::now();
        let points = sweep_with_jobs(&run.log, jobs);
        eprintln!(
            "swept {} grid points over {name} in {:.3}s ({jobs} jobs)",
            points.len(),
            started.elapsed().as_secs_f64()
        );
        println!("\nSweep over {name}: miss-rate reduction / overhead ratio vs unified");
        let mut table =
            TextTable::new(["proportions", "policy", "miss reduction", "overhead ratio"]);
        for pt in &points {
            table.row([
                format!(
                    "{:.0}-{:.0}-{:.0}",
                    pt.nursery * 100.0,
                    pt.probation * 100.0,
                    pt.persistent * 100.0
                ),
                pt.promotion.to_string(),
                fmt_pct(pt.miss_rate_reduction),
                format!("{:.1}%", pt.overhead_ratio * 100.0),
            ]);
        }
        print!("{}", table.render());
        if let Some(best) = best_point(&points) {
            println!(
                "best: {:.0}-{:.0}-{:.0} {} ({} miss reduction)",
                best.nursery * 100.0,
                best.probation * 100.0,
                best.persistent * 100.0,
                best.promotion,
                fmt_pct(best.miss_rate_reduction),
            );
        }
        runs.push((profile, run));
    }
    export_telemetry(&opts, &runs).expect("telemetry export failed");
}
