//! Figure 10: total number of cache misses eliminated by generational
//! code caches compared to a unified cache (the paper plots this on a
//! logarithmic axis; we print the raw counts).

use gencache_bench::{comparison_pipeline, HarnessOptions};
use gencache_sim::report::TextTable;

fn main() {
    let opts = HarnessOptions::from_env();
    println!("Figure 10. Cache misses eliminated vs a unified cache (log-scale in the paper).");
    let mut table = TextTable::new([
        "Benchmark",
        "33-33-33 @10",
        "45-10-45 @hit1",
        "25-50-25 @5",
        "log10|best|",
    ]);
    for (p, c) in &comparison_pipeline(&opts) {
        let best = (0..3).map(|i| c.misses_eliminated(i)).max().unwrap_or(0);
        let log = if best > 0 { (best as f64).log10() } else { 0.0 };
        table.row([
            p.name.clone(),
            c.misses_eliminated(0).to_string(),
            c.misses_eliminated(1).to_string(),
            c.misses_eliminated(2).to_string(),
            format!("{log:.1}"),
        ]);
    }
    print!("{}", table.render());
}
