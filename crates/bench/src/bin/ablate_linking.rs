//! Trace-linking analysis (extension).
//!
//! Dynamic optimizers link traces so inter-trace transitions bypass the
//! dispatcher; an eviction severs every link into the victim. This study
//! replays each benchmark while tracking the link graph, comparing how
//! many transitions run linked under the unified baseline versus the
//! generational hierarchy — cache organizations that keep long-lived
//! traces resident also keep their links warm.

use gencache_bench::{record_all, HarnessOptions};
use gencache_core::{GenerationalConfig, GenerationalModel, UnifiedModel};
use gencache_sim::replay_with_linking;
use gencache_sim::report::{arithmetic_mean, TextTable};

fn main() {
    let opts = HarnessOptions::from_env();
    println!("Trace-linking analysis: linked-transition fraction and dispatcher switches.");
    let runs = record_all(&opts);
    let mut table = TextTable::new([
        "Benchmark",
        "unified linked",
        "gen linked",
        "unified ctx-sw",
        "gen ctx-sw",
        "severed (uni/gen)",
    ]);
    let mut uni_fracs = Vec::new();
    let mut gen_fracs = Vec::new();
    for (p, r) in &runs {
        eprintln!("replaying {} ...", p.name);
        let cap = (r.log.peak_trace_bytes / 2).max(1);
        let mut unified = UnifiedModel::new(cap);
        let uni = replay_with_linking(&r.log, &mut unified);
        let mut gen = GenerationalModel::new(GenerationalConfig::figure9_configs(cap)[1]);
        let g = replay_with_linking(&r.log, &mut gen);
        uni_fracs.push(uni.linked_fraction());
        gen_fracs.push(g.linked_fraction());
        table.row([
            p.name.clone(),
            format!("{:.1}%", uni.linked_fraction() * 100.0),
            format!("{:.1}%", g.linked_fraction() * 100.0),
            uni.context_switches().to_string(),
            g.context_switches().to_string(),
            format!("{}/{}", uni.links_severed, g.links_severed),
        ]);
    }
    print!("{}", table.render());
    println!(
        "average linked-transition fraction: unified {:.1}%  generational {:.1}%",
        arithmetic_mean(&uni_fracs).unwrap_or(0.0) * 100.0,
        arithmetic_mean(&gen_fracs).unwrap_or(0.0) * 100.0,
    );
}
