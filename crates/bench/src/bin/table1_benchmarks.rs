//! Table 1: the interactive Windows benchmarks used in the evaluation.

use gencache_sim::report::TextTable;
use gencache_workloads::interactive;

fn main() {
    println!("Table 1. Interactive Windows benchmarks used in our evaluation.\n");
    let mut table = TextTable::new(["Name", "Seconds", "Description"]);
    for p in interactive() {
        table.row([
            p.name.clone(),
            format!("{:.0}", p.duration_secs),
            p.description.clone(),
        ]);
    }
    print!("{}", table.render());
}
