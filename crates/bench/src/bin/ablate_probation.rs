//! Probation-cache ablation (Section 5.3): the full three-generation
//! hierarchy versus a two-generation variant with no probation cache
//! (every nursery evictee is promoted straight to the persistent cache).
//!
//! Expected shape: without the probation filter, short-lived traces flood
//! the persistent cache and evict long-lived tenants, giving up much of
//! the generational win.

use gencache_bench::{record_all, HarnessOptions};
use gencache_core::{
    overhead_ratio, CacheModel, GenerationalConfig, GenerationalModel, PromotionPolicy,
    Proportions, UnifiedModel,
};
use gencache_sim::replay_into;
use gencache_sim::report::{arithmetic_mean, fmt_pct, TextTable};

fn main() {
    let opts = HarnessOptions::from_env();
    println!("Probation ablation: 45-10-45 promote-on-hit(1) vs 50-0-50 (no probation).");
    let runs = record_all(&opts);
    let mut table = TextTable::new([
        "Benchmark",
        "with probation",
        "no probation",
        "ratio w/",
        "ratio w/o",
    ]);
    let mut with = Vec::new();
    let mut without = Vec::new();
    for (p, r) in &runs {
        eprintln!("replaying {} ...", p.name);
        let cap = (r.log.peak_trace_bytes / 2).max(1);
        let mut unified = UnifiedModel::new(cap);
        replay_into(&r.log, &mut unified);
        let u = unified.metrics().miss_rate();

        let mut three = GenerationalModel::new(GenerationalConfig::new(
            cap,
            Proportions::best_overall(),
            PromotionPolicy::OnHit { hits: 1 },
        ));
        replay_into(&r.log, &mut three);
        let mut two = GenerationalModel::new(GenerationalConfig::new(
            cap,
            Proportions::new(0.5, 0.0, 0.5),
            PromotionPolicy::OnHit { hits: 1 },
        ));
        replay_into(&r.log, &mut two);

        let red = |m: &GenerationalModel| {
            if u == 0.0 {
                0.0
            } else {
                (u - m.metrics().miss_rate()) / u
            }
        };
        with.push(red(&three));
        without.push(red(&two));
        table.row([
            p.name.clone(),
            fmt_pct(red(&three)),
            fmt_pct(red(&two)),
            format!(
                "{:.1}%",
                overhead_ratio(three.ledger(), unified.ledger()) * 100.0
            ),
            format!(
                "{:.1}%",
                overhead_ratio(two.ledger(), unified.ledger()) * 100.0
            ),
        ]);
    }
    print!("{}", table.render());
    println!(
        "average miss-rate reduction: with probation {}  without {}",
        fmt_pct(arithmetic_mean(&with).unwrap_or(0.0)),
        fmt_pct(arithmetic_mean(&without).unwrap_or(0.0)),
    );
}
