//! The regret scorer's calibration property: the Belady oracle's own
//! decision sequence carries zero regret.
//!
//! [`oracle_replay_events`] materializes the clairvoyant replay as the
//! same event stream shape the instrumented models emit. Every capacity
//! victim it picks *is* the furthest-next-use resident, so a
//! [`RegretObserver`] walking that stream against the matching
//! [`NextUseIndex`] must score zero regret on every eviction — for any
//! frontend trace, any capacity, with unmaps and pin windows in play.
//! If this ever fails, either the oracle and the scorer disagree about
//! eviction order (tie-breaks included) or the execution-position
//! alignment between trace and stream has drifted.

use std::collections::HashSet;

use gencache_cache::TraceId;
use gencache_obs::{
    oracle_replay_events, reconstruct_trace, NextUseIndex, Observer, RegretObserver, SimTrace,
    TraceOp,
};
use gencache_program::Time;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Execute { id: u64, size: u32 },
    Unmap { id: u64 },
    PinToggle { id: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0u64..40, 50u32..400).prop_map(|(id, size)| Op::Execute { id, size }),
        1 => (0u64..40).prop_map(|id| Op::Unmap { id }),
        1 => (0u64..40).prop_map(|id| Op::PinToggle { id }),
    ]
}

/// Lowers raw ops into a well-formed [`SimTrace`]: the first execution
/// of a live id is a `Create`, unmaps kill the id (a later execution
/// re-creates it), pin toggles only touch live ids.
fn build_trace(ops: &[Op]) -> SimTrace {
    let mut trace = SimTrace::default();
    let mut live: HashSet<u64> = HashSet::new();
    let mut pinned: HashSet<u64> = HashSet::new();
    for (step, op) in ops.iter().enumerate() {
        let time = Time::from_micros(step as u64);
        match *op {
            Op::Execute { id, size } => {
                let tid = TraceId::new(id);
                if live.insert(id) {
                    trace.ops.push(TraceOp::Create {
                        id: tid,
                        bytes: size,
                        time,
                    });
                } else {
                    trace.ops.push(TraceOp::Access { id: tid, time });
                }
            }
            Op::Unmap { id } => {
                if live.remove(&id) {
                    pinned.remove(&id);
                    trace.ops.push(TraceOp::Invalidate {
                        id: TraceId::new(id),
                        time,
                    });
                }
            }
            Op::PinToggle { id } => {
                if live.contains(&id) {
                    let tid = TraceId::new(id);
                    if pinned.insert(id) {
                        trace.ops.push(TraceOp::Pin { id: tid });
                    } else {
                        pinned.remove(&id);
                        trace.ops.push(TraceOp::Unpin { id: tid });
                    }
                }
            }
        }
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Scoring the oracle's own stream yields zero regret, and the
    /// stream round-trips back to the frontend trace that drove it.
    #[test]
    fn oracle_decisions_carry_zero_regret(
        ops in proptest::collection::vec(op_strategy(), 1..250),
        capacity in 300u64..4000,
    ) {
        let trace = build_trace(&ops);
        let (result, events) = oracle_replay_events(&trace, capacity);

        prop_assert_eq!(
            &reconstruct_trace(&events).expect("oracle stream inverts"),
            &trace,
            "oracle event stream must invert to its input trace"
        );

        let index = NextUseIndex::build(&trace);
        let mut scorer = RegretObserver::new(&index);
        for event in &events {
            scorer.on_event(event);
        }
        let report = scorer.report();

        prop_assert_eq!(report.accesses, result.accesses, "alignment drift");
        prop_assert_eq!(
            report.total.regret_sum, 0,
            "oracle scored nonzero regret: {:?}",
            report.total
        );
        prop_assert_eq!(report.total.regretful, 0);
        for phase in &report.phases {
            prop_assert_eq!(phase.total.regret_sum, 0);
        }
        for c in &report.contributors {
            prop_assert_eq!(c.regret_sum, 0, "contributor t{} regretted", c.trace);
        }
    }
}
