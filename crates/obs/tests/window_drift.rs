//! Drift-detector calibration properties: the windowed Page–Hinkley
//! test must *find* a planted miss-rate step quickly and must *not*
//! fire on a stationary stream.
//!
//! Both properties drive a [`WindowObserver`] with synthetic hit/miss
//! streams whose per-window miss counts are exact (misses are planted
//! per window, not per stream, so quantization cannot smear the rate
//! across windows). The step property checks the first annotation is an
//! upward detection within `DETECTION_SLACK` windows of the step; the
//! stationarity property checks zero annotations for any constant rate.

use gencache_cache::TraceId;
use gencache_obs::{CacheEvent, DriftKind, Observer, Region, WindowObserver};
use gencache_program::Time;
use proptest::prelude::*;

/// Accesses per window in every generated stream.
const WINDOW: u64 = 100;
/// An upward step must be flagged within this many windows of onset.
const DETECTION_SLACK: u64 = 3;

fn hit(trace: u64) -> CacheEvent {
    CacheEvent::Hit {
        region: Region::Unified,
        trace: TraceId::new(trace),
        reuse_us: 1,
        time: Time::ZERO,
    }
}

fn miss(trace: u64) -> CacheEvent {
    CacheEvent::Miss {
        trace: TraceId::new(trace),
        bytes: 100,
        time: Time::ZERO,
    }
}

/// `windows` windows of exactly `WINDOW` accesses, each containing
/// exactly `round(rate * WINDOW)` misses spread through the window.
/// Misses use fresh trace ids, so nothing classifies as churn.
fn planted_stream(events: &mut Vec<CacheEvent>, windows: u64, rate: f64) {
    let misses = ((rate * WINDOW as f64).round() as u64).min(WINDOW);
    for w in 0..windows {
        for i in 0..WINDOW {
            let is_miss = misses > 0 && i * misses / WINDOW != (i + 1) * misses / WINDOW;
            if is_miss {
                events.push(miss(1_000_000 + w * WINDOW + i));
            } else {
                events.push(hit(0));
            }
        }
    }
}

fn report_of(events: &[CacheEvent]) -> gencache_obs::WindowReport {
    let mut observer = WindowObserver::new(WINDOW);
    for event in events {
        observer.on_event(event);
    }
    observer.report()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A planted step from a quiet baseline to a loud regime is flagged
    /// as an upward detection within `DETECTION_SLACK` windows of its
    /// onset, and never before it.
    #[test]
    fn planted_step_is_flagged_within_slack(
        pre in 4u64..24,
        post in 4u64..16,
        base in 0.0f64..0.03,
        step in 0.15f64..0.60,
    ) {
        let mut events = Vec::new();
        planted_stream(&mut events, pre, base);
        planted_stream(&mut events, post, step);
        let report = report_of(&events);
        let first = report.annotations.first().expect("step never detected");
        prop_assert!(
            first.window >= pre,
            "detection at window {} precedes the step at {pre}",
            first.window
        );
        prop_assert!(
            first.window < pre + DETECTION_SLACK,
            "detection at window {} lags the step at {pre} by more than {DETECTION_SLACK}",
            first.window
        );
        prop_assert!(
            matches!(first.kind, DriftKind::PhaseShift | DriftKind::ThrashOnset),
            "first detection after an upward step must be upward: {:?}",
            first
        );
        prop_assert!(
            first.miss_rate > first.baseline,
            "upward detection with rate {} at or below baseline {}",
            first.miss_rate,
            first.baseline
        );
    }

    /// A stationary stream — any constant per-window miss rate — never
    /// produces an annotation.
    #[test]
    fn stationary_streams_stay_silent(
        windows in 2u64..48,
        rate in 0.0f64..0.6,
    ) {
        let mut events = Vec::new();
        planted_stream(&mut events, windows, rate);
        let report = report_of(&events);
        prop_assert!(
            report.annotations.is_empty(),
            "detector fired on a stationary stream: {:?}",
            report.annotations
        );
    }
}
