//! Rebuilding the *frontend trace* from an event stream.
//!
//! [`reconstruct_stats`](crate::reconstruct_stats) replays a stream
//! forward into the counters the cache kept — proof the stream fully
//! describes what the cache *did*. This module inverts the other half:
//! it recovers what the frontend *asked for*. The paper's methodology
//! (Section 6) rests on the frontend request stream — creations,
//! re-executions, unmaps, pin windows — being independent of cache
//! management, so the trace recovered from one export can drive a model
//! with any capacity, layout or policy: the offline what-if simulator.
//!
//! The inversion is exact because instrumented models emit exactly one
//! identifying event per frontend request: every access starts with a
//! [`Hit`](CacheEvent::Hit) or [`Miss`](CacheEvent::Miss), every unmap
//! emits an [`Evict`](CacheEvent::Evict) with
//! [`EvictionCause::Unmapped`] or a [`Noop`](CacheEvent::Noop), and
//! every pin toggle emits a [`Pin`](CacheEvent::Pin) /
//! [`Unpin`](CacheEvent::Unpin) or a [`Noop`](CacheEvent::Noop).
//! Everything else in the stream (insertions, capacity evictions,
//! promotions, pointer resets) is a cache-side *effect* and is skipped.

use std::collections::HashMap;

use gencache_cache::{EvictionCause, TraceId};
use gencache_program::Time;
use serde::{Deserialize, Serialize};

use crate::event::{CacheEvent, FrontendOp};

/// One frontend request recovered from an event stream.
///
/// Mirrors the shape of the recorder's access-log records, minus the
/// code addresses (which never influence cache management and are
/// re-synthesized deterministically by the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceOp {
    /// A trace was generated (its first execution) with this body size.
    Create {
        /// The new trace.
        id: TraceId,
        /// Body size in bytes.
        bytes: u32,
        /// When the generating execution happened.
        time: Time,
    },
    /// A subsequent execution of an already-generated trace.
    Access {
        /// The executed trace.
        id: TraceId,
        /// When the execution happened.
        time: Time,
    },
    /// The trace's source memory was unmapped.
    Invalidate {
        /// The unmapped trace.
        id: TraceId,
        /// When the unmap happened.
        time: Time,
    },
    /// The trace became undeletable. Pin requests carry no timestamp in
    /// the recorder's log, so none is recovered here; replay clocks them
    /// with the preceding timed op, exactly as the live path does.
    Pin {
        /// The pinned trace.
        id: TraceId,
    },
    /// The trace became deletable again.
    Unpin {
        /// The unpinned trace.
        id: TraceId,
    },
}

/// A frontend request trace recovered from one exported event stream,
/// ready to drive any hypothetical cache configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimTrace {
    /// Recovered requests, in stream order.
    pub ops: Vec<TraceOp>,
}

impl SimTrace {
    /// Number of executions (creates + accesses) in the trace.
    pub fn access_count(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::Create { .. } | TraceOp::Access { .. }))
            .count() as u64
    }

    /// Number of distinct trace creations.
    pub fn create_count(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::Create { .. }))
            .count() as u64
    }
}

/// Incremental event → frontend-request inversion.
///
/// Holds only the per-trace size map (O(resident trace set)), so a
/// consumer can feed events one at a time — from a file, a pipe, or a
/// bounded channel — and never materialize the event stream. This is the
/// core `reconstruct_trace` loops over, and what the serve daemon's
/// streaming ingest drives directly.
#[derive(Debug, Clone, Default)]
pub struct TraceRebuilder {
    sizes: HashMap<TraceId, u32>,
}

impl TraceRebuilder {
    /// A rebuilder with no traces seen yet.
    pub fn new() -> Self {
        TraceRebuilder::default()
    }

    /// Inverts one cache event into at most one frontend request.
    ///
    /// The first [`Miss`](CacheEvent::Miss) of a trace id (or a later
    /// miss presenting a *different* body size, i.e. the source was
    /// regenerated differently) becomes a [`TraceOp::Create`]; every
    /// other hit or miss becomes a [`TraceOp::Access`]. Whether a given
    /// re-execution hit or missed is a property of the recorded
    /// configuration and deliberately discarded — the simulator
    /// re-derives it under the hypothetical one. Cache-side effects
    /// (insertions, capacity evictions, promotions, pointer resets)
    /// yield `None`.
    ///
    /// # Errors
    ///
    /// Errors if the stream opens a trace's history with a hit
    /// (impossible for a model that starts empty — the stream is
    /// truncated or mixes models).
    pub fn push(&mut self, event: &CacheEvent) -> Result<Option<TraceOp>, String> {
        Ok(Some(match *event {
            CacheEvent::Miss { trace, bytes, time } => {
                if self.sizes.get(&trace) == Some(&bytes) {
                    TraceOp::Access { id: trace, time }
                } else {
                    self.sizes.insert(trace, bytes);
                    TraceOp::Create {
                        id: trace,
                        bytes,
                        time,
                    }
                }
            }
            CacheEvent::Hit { trace, time, .. } => {
                if !self.sizes.contains_key(&trace) {
                    return Err(format!(
                        "hit on trace {trace} before any miss: stream is \
                         truncated or mixes models"
                    ));
                }
                TraceOp::Access { id: trace, time }
            }
            CacheEvent::Evict {
                trace,
                cause: EvictionCause::Unmapped,
                time,
                ..
            } => TraceOp::Invalidate { id: trace, time },
            CacheEvent::Noop { op, trace, time } => match op {
                FrontendOp::Unmap => TraceOp::Invalidate { id: trace, time },
                FrontendOp::Pin => TraceOp::Pin { id: trace },
                FrontendOp::Unpin => TraceOp::Unpin { id: trace },
            },
            CacheEvent::Pin { trace, .. } => TraceOp::Pin { id: trace },
            CacheEvent::Unpin { trace, .. } => TraceOp::Unpin { id: trace },
            // Cache-side effects: insertions, capacity/flush/discard
            // evictions, promotions and pointer resets all depend on the
            // recorded layout and are re-derived by the simulator.
            CacheEvent::Insert { .. }
            | CacheEvent::Evict { .. }
            | CacheEvent::Promote { .. }
            | CacheEvent::PromotedIn { .. }
            | CacheEvent::PointerReset { .. }
            | CacheEvent::PolicySwap { .. } => return Ok(None),
        }))
    }
}

/// Recovers the frontend request trace from one model's event stream: a
/// [`TraceRebuilder`] loop that materializes the ops.
///
/// # Errors
///
/// Errors if the stream opens a trace's history with a hit (impossible
/// for a model that starts empty — the stream is truncated or mixes
/// models).
pub fn reconstruct_trace(events: &[CacheEvent]) -> Result<SimTrace, String> {
    let mut rebuilder = TraceRebuilder::new();
    let mut ops = Vec::new();
    for event in events {
        if let Some(op) = rebuilder.push(event)? {
            ops.push(op);
        }
    }
    Ok(SimTrace { ops })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Region;

    fn miss(id: u64, bytes: u32, t: u64) -> CacheEvent {
        CacheEvent::Miss {
            trace: TraceId::new(id),
            bytes,
            time: Time::from_micros(t),
        }
    }

    fn hit(id: u64, t: u64) -> CacheEvent {
        CacheEvent::Hit {
            region: Region::Unified,
            trace: TraceId::new(id),
            reuse_us: 0,
            time: Time::from_micros(t),
        }
    }

    #[test]
    fn first_miss_creates_then_accesses() {
        let events = vec![
            miss(1, 100, 0),
            hit(1, 1),
            miss(2, 50, 2),
            // Conflict miss of trace 1 at its recorded size: an access,
            // not a new creation.
            miss(1, 100, 3),
        ];
        let trace = reconstruct_trace(&events).unwrap();
        assert_eq!(
            trace.ops,
            vec![
                TraceOp::Create {
                    id: TraceId::new(1),
                    bytes: 100,
                    time: Time::ZERO,
                },
                TraceOp::Access {
                    id: TraceId::new(1),
                    time: Time::from_micros(1),
                },
                TraceOp::Create {
                    id: TraceId::new(2),
                    bytes: 50,
                    time: Time::from_micros(2),
                },
                TraceOp::Access {
                    id: TraceId::new(1),
                    time: Time::from_micros(3),
                },
            ]
        );
        assert_eq!(trace.access_count(), 4);
        assert_eq!(trace.create_count(), 2);
    }

    #[test]
    fn unmap_and_noop_both_invalidate() {
        let events = vec![
            miss(1, 100, 0),
            CacheEvent::Evict {
                region: Region::Unified,
                trace: TraceId::new(1),
                bytes: 100,
                cause: EvictionCause::Unmapped,
                age_us: 5,
                idle_us: 5,
                time: Time::from_micros(5),
            },
            CacheEvent::Noop {
                op: FrontendOp::Unmap,
                trace: TraceId::new(2),
                time: Time::from_micros(6),
            },
        ];
        let trace = reconstruct_trace(&events).unwrap();
        assert_eq!(
            &trace.ops[1..],
            &[
                TraceOp::Invalidate {
                    id: TraceId::new(1),
                    time: Time::from_micros(5),
                },
                TraceOp::Invalidate {
                    id: TraceId::new(2),
                    time: Time::from_micros(6),
                },
            ]
        );
    }

    #[test]
    fn capacity_evictions_are_ignored() {
        let events = vec![
            miss(1, 100, 0),
            CacheEvent::Evict {
                region: Region::Unified,
                trace: TraceId::new(1),
                bytes: 100,
                cause: EvictionCause::Capacity,
                age_us: 1,
                idle_us: 1,
                time: Time::from_micros(1),
            },
        ];
        let trace = reconstruct_trace(&events).unwrap();
        assert_eq!(trace.ops.len(), 1);
    }

    #[test]
    fn leading_hit_errors() {
        assert!(reconstruct_trace(&[hit(1, 0)]).is_err());
    }

    #[test]
    fn pins_roundtrip_without_timestamps() {
        let events = vec![
            miss(1, 100, 0),
            CacheEvent::Pin {
                region: Region::Unified,
                trace: TraceId::new(1),
                time: Time::ZERO,
            },
            CacheEvent::Noop {
                op: FrontendOp::Unpin,
                trace: TraceId::new(2),
                time: Time::ZERO,
            },
        ];
        let trace = reconstruct_trace(&events).unwrap();
        assert_eq!(
            &trace.ops[1..],
            &[
                TraceOp::Pin {
                    id: TraceId::new(1)
                },
                TraceOp::Unpin {
                    id: TraceId::new(2)
                },
            ]
        );
    }
}
