//! # gencache-obs
//!
//! Event-sourced telemetry for the `gencache` reproduction of
//! *Generational Cache Management of Code Traces in Dynamic
//! Optimization Systems* (Hazelwood & Smith, MICRO 2003).
//!
//! The simulators in `gencache-core` are generic over an [`Observer`]
//! that receives a typed [`CacheEvent`] for every state change: insert,
//! hit, miss, cause-tagged eviction, promotion, pin/unpin and
//! replacement-pointer resets. The default [`NullObserver`] reports
//! `enabled() == false` and every emission site is guarded on it, so
//! monomorphization deletes the instrumentation entirely — the
//! uninstrumented replay path costs nothing.
//!
//! On top of the raw stream sit three consumers:
//!
//! * [`MetricsObserver`] — mergeable aggregation: monotonic counters,
//!   log2-bucketed histograms ([`Log2Histogram`]) of trace lifetime,
//!   reuse interval, trace size and eviction idle time, plus a
//!   deterministic occupancy/miss-rate timeline. Shard reports merged
//!   in input-index order are byte-identical for any worker count.
//! * [`JsonlSink`] — streaming JSONL export of every event, one
//!   [`EventRecord`] per line.
//! * [`reconstruct_stats`] — replays an event stream back into
//!   [`CacheStats`](gencache_cache::CacheStats), the executable
//!   statement that the stream is a complete account of the run.
//!
//! ```
//! use gencache_obs::{CacheEvent, EventBuffer, MetricsObserver, Observer, Region};
//! use gencache_cache::TraceId;
//! use gencache_program::Time;
//!
//! let mut metrics = MetricsObserver::new();
//! let mut tee = (EventBuffer::new(), &mut metrics);
//! tee.on_event(&CacheEvent::Miss {
//!     trace: TraceId::new(1),
//!     bytes: 128,
//!     time: Time::ZERO,
//! });
//! assert_eq!(tee.0.events.len(), 1);
//! assert_eq!(metrics.report().misses, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
mod event;
mod hist;
mod metrics;
mod observer;
mod oracle;
mod reconstruct;
mod regret;
mod sample;
mod schema;
mod simstream;
mod window;

pub use cost::{
    overhead_ratio, CauseCost, CostLedger, CostObserver, CostReport, PhaseCost, RegionCost,
};
pub use event::{CacheEvent, FrontendOp, Region};
pub use hist::Log2Histogram;
pub use metrics::{
    ChurnEntry, MetricsObserver, MetricsReport, RegionMetrics, TimelineSample, TOP_CHURN,
};
pub use observer::{EventBuffer, EventRecord, JsonlSink, NullObserver, Observer};
pub use oracle::{oracle_replay, oracle_replay_events, NextUseIndex, OracleResult};
pub use reconstruct::reconstruct_stats;
pub use regret::{
    PhaseRegret, RegionRegret, RegretCell, RegretContributor, RegretObserver, RegretReport,
    WorstEviction, TOP_REGRET,
};
pub use schema::{
    parse_stream_line, RunMeta, StreamHeader, StreamLine, EVENTS_SCHEMA, EVENTS_VERSION,
    METRICS_SCHEMA, METRICS_VERSION,
};
pub use simstream::{reconstruct_trace, SimTrace, TraceOp, TraceRebuilder};
pub use sample::{ReservoirSnapshot, SampledReport, SamplingObserver, SamplingParams, SamplingSummary};
pub use window::{
    detect_drift, DriftAnnotation, DriftKind, Window, WindowObserver, WindowReport,
    CHURN_BURST_FACTOR, CHURN_MIN_REMISSES, DEFAULT_WINDOW_CAP, EWMA_ALPHA, PH_DELTA, PH_LAMBDA,
    THRASH_MISS_RATE,
};
